"""Batched wavefront execution: align whole batches in one compiled sweep.

``compiled_align_batch`` packs B independent alignments into padded 3D
working arrays ``(n_layers, B, Q+1, R+1)`` and sweeps all B DP matrices'
anti-diagonals in lockstep: each diagonal of each layer is a single
NumPy expression over a ``(B, wavefront)`` operand block, so the
per-diagonal Python/NumPy dispatch overhead that dominates single-pair
``compiled_align`` at service-sized lengths is amortized over the whole
batch.  The generated ``_pe`` from :mod:`repro.backend.compiler` is
purely elementwise (``np.where``/``maximum``/arithmetic/table gathers),
so the batch axis folds in by reshaping operands — no compiler change.

This is the inter-sequence parallelism of the DP-HLS PE-array packing,
applied one level up: instead of many PEs per pair, many pairs per
sweep.

Bit-identity contract (enforced by ``repro.verify_fuzz``'s batched leg
and ``tests/test_backend_batch.py``): for every pair, the returned
:class:`~repro.core.result.AlignmentResult` — score *and its Python
type*, start/end cells, traceback moves, :class:`CycleReport`, collected
matrix — equals running :func:`repro.backend.wavefront.compiled_align`
on that pair alone.  The argument is:

* pairs are bucketed by ``(params identity, padded lengths)``; lengths
  are padded up to :data:`PAD_QUANTUM` multiples so mixed-length batches
  share buckets with bounded waste (recorded via ``engine.batch.*``
  counters and the ``engine.batch.waste_frac`` gauge);
* within a bucket, the padded band range at diagonal ``d`` intersected
  with the per-pair validity mask ``(i <= len_q) & (j <= len_r)`` is
  *exactly* the pair's own active set: padding only relaxes the
  ``i >= d - n_cols`` / ``i <= n_rows`` limits, and the mask restores
  them, while the banding clip depends on ``d`` alone;
* valid cells' neighbour reads never leave the pair's own region
  (indices only decrease), and every cell there holds the per-pair
  value: init row/column are written per pair, out-of-band cells are
  sentinel-pinned exactly as in the single-pair path, and masked writes
  never touch cells outside a pair's active set;
* lanes that are masked out on a diagonal (shorter pairs retiring
  early, padding) still flow through ``_pe`` — on zeroed garbage that
  is discarded by the masked write, so quantization never sees values
  a real pair could not produce;
* the start-cell argmax runs on each pair's own ``(len_q+1, len_r+1)``
  slice, where row-major order is the same (i, j)-lexicographic order
  as the single-pair matrix, preserving the smallest-(i, j) tie break;
* traceback walks each pair's own pointer slice; the cycle model is
  closed-form per pair (``n_pe``/``ii`` may vary across the batch).

When does single-pair still win?  A batch of one pays the bucketing and
masking overhead for no amortization, and wildly heterogeneous lengths
fragment into single-pair buckets — see ``docs/backends.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.compiler import lower, runtime_params
from repro.backend.wavefront import (
    _DensePointerStore,
    assemble_matrix,
    cycle_report,
    select_start,
)
from repro.core.result import AlignmentResult
from repro.core.spec import KernelSpec
from repro.obs.recorder import Recorder, get_recorder
from repro.systolic.engine import (
    TRACEBACK_SETUP_CYCLES,
    check_corner,
    validate_pair,
)
from repro.systolic.traceback import walk_traceback

#: Pair lengths are padded up to the next multiple of this before
#: bucketing, so a mixed-length batch lands in few buckets.  8 keeps the
#: worst-case padding waste per axis under one quantum (< 7 cells) while
#: collapsing the service's near-uniform length distributions into one
#: bucket per kernel.
PAD_QUANTUM = 8


def _padded(n: int) -> int:
    """``n`` rounded up to the bucket quantum (minimum one quantum)."""
    return max(PAD_QUANTUM, -(-n // PAD_QUANTUM) * PAD_QUANTUM)


def _per_pair(value: Any, n: int, name: str) -> List[int]:
    """Normalize an int-or-sequence knob to one int per pair."""
    if isinstance(value, (int, np.integer)):
        return [int(value)] * n
    values = [int(v) for v in value]
    if len(values) != n:
        raise ValueError(
            f"{name} sequence has {len(values)} entries for {n} pairs"
        )
    return values


def _batch_symbols(
    spec: KernelSpec, sequences: Sequence[Sequence[Any]], pad_len: int
) -> Any:
    """Stack per-pair symbol operands into (B, pad_len) arrays.

    Padding lanes hold 0 — a valid gather index for sized alphabets, so
    table lookups on masked-out lanes stay in range.
    """
    alphabet = spec.alphabet
    if alphabet.is_struct:
        fields = []
        for k in range(len(alphabet.fields)):
            arr = np.zeros((len(sequences), pad_len), dtype=np.float64)
            for b, seq in enumerate(sequences):
                arr[b, : len(seq)] = [symbol[k] for symbol in seq]
            fields.append(arr)
        return tuple(fields)
    dtype = np.intp if alphabet.size else np.float64
    arr = np.zeros((len(sequences), pad_len), dtype=dtype)
    for b, seq in enumerate(sequences):
        arr[b, : len(seq)] = np.asarray(seq, dtype=dtype)
    return arr


def _take_batch(symbols: Any, idx: np.ndarray) -> Any:
    if isinstance(symbols, tuple):
        return tuple(field[:, idx] for field in symbols)
    return symbols[:, idx]


@dataclasses.dataclass
class _Pair:
    """One validated batch member plus its bucket coordinates."""

    query: Sequence[Any]
    reference: Sequence[Any]
    n_rows: int
    n_cols: int
    row0: np.ndarray
    col0: np.ndarray
    params: Any
    bucket: Optional["_Bucket"] = None
    lane: int = -1


@dataclasses.dataclass
class _Bucket:
    """All pairs sharing (params identity, padded shape): one sweep."""

    padded_q: int
    padded_r: int
    params: Any
    pairs: List[_Pair] = dataclasses.field(default_factory=list)
    work: Optional[np.ndarray] = None
    ptrs: Optional[np.ndarray] = None
    computed: Optional[np.ndarray] = None
    lane_cells: int = 0
    padded_cells: int = 0


def _sweep_bucket(spec: KernelSpec, bucket: _Bucket) -> None:
    """Run one lockstep anti-diagonal sweep over a bucket's pairs.

    Fills ``bucket.work`` / ``bucket.ptrs`` / ``bucket.computed`` with
    per-pair-identical contents; never raises for a well-formed bucket
    (per-pair failures surface later, in submission order, during
    finishing).
    """
    n_lanes = len(bucket.pairs)
    n_layers = spec.n_layers
    sentinel = float(spec.sentinel())
    banding = spec.banding
    padded_q, padded_r = bucket.padded_q, bucket.padded_r

    work = np.full(
        (n_layers, n_lanes, padded_q + 1, padded_r + 1),
        sentinel,
        dtype=np.float64,
    )
    for b, pair in enumerate(bucket.pairs):
        work[:, b, 0, : pair.n_cols + 1] = pair.row0.T
        work[:, b, : pair.n_rows + 1, 0] = pair.col0.T
        if banding is not None:
            cols = np.arange(pair.n_cols + 1)
            rows = np.arange(pair.n_rows + 1)
            work[:, b, 0, cols[cols > banding]] = sentinel
            work[:, b, rows[rows > banding], 0] = sentinel

    ptrs: Optional[np.ndarray] = None
    if spec.has_traceback:
        ptrs = np.zeros(
            (n_lanes, padded_q + 1, padded_r + 1), dtype=np.int64
        )
    computed = np.zeros(
        (n_lanes, padded_q + 1, padded_r + 1), dtype=bool
    )

    compiled = lower(spec, bucket.params)
    scalars, tables = runtime_params(bucket.params)
    q_syms = _batch_symbols(
        spec, [pair.query for pair in bucket.pairs], padded_q
    )
    r_syms = _batch_symbols(
        spec, [pair.reference for pair in bucket.pairs], padded_r
    )
    nq = np.asarray([pair.n_rows for pair in bucket.pairs])[:, None]
    nr = np.asarray([pair.n_cols for pair in bucket.pairs])[:, None]
    quantize_array = spec.score_type.quantize_array
    pe = compiled.fn

    lane_cells = 0
    padded_cells = 0
    for d in range(2, padded_q + padded_r + 1):
        ilo = max(1, d - padded_r)
        ihi = min(padded_q, d - 1)
        if banding is not None:
            # |i - (d - i)| <= W  <=>  (d - W) / 2 <= i <= (d + W) / 2
            ilo = max(ilo, (d - banding + 1) // 2)
            ihi = min(ihi, (d + banding) // 2)
        if ilo > ihi:
            continue
        i = np.arange(ilo, ihi + 1)
        j = d - i
        # mask restores the per-pair  i >= d - n_cols  and  i <= n_rows
        # limits padding relaxed; masked lanes are retired pairs/padding
        mask = (i[None, :] <= nq) & (j[None, :] <= nr)
        if not mask.any():
            continue
        up = tuple(work[k][:, i - 1, j] for k in range(n_layers))
        diag = tuple(work[k][:, i - 1, j - 1] for k in range(n_layers))
        left = tuple(work[k][:, i, j - 1] for k in range(n_layers))
        scores, ptr = pe(
            up, diag, left,
            _take_batch(q_syms, i - 1), _take_batch(r_syms, j - 1),
            scalars, tables,
        )
        shape = (n_lanes, len(i))
        for k in range(n_layers):
            out_k = np.broadcast_to(
                np.asarray(scores[k], dtype=np.float64), shape
            )
            # zero the discarded lanes *before* quantizing so wrap-mode
            # int conversion never sees values a real pair cannot reach
            quantized = quantize_array(np.where(mask, out_k, 0.0))
            work[k][:, i, j] = np.where(mask, quantized, work[k][:, i, j])
        if ptrs is not None:
            ptr_b = np.broadcast_to(np.asarray(ptr), shape)
            ptrs[:, i, j] = np.where(mask, ptr_b, ptrs[:, i, j])
        computed[:, i, j] |= mask
        lane_cells += int(np.count_nonzero(mask))
        padded_cells += mask.size

    bucket.work = work
    bucket.ptrs = ptrs
    bucket.computed = computed
    bucket.lane_cells = lane_cells
    bucket.padded_cells = padded_cells


def compiled_align_batch(
    spec: KernelSpec,
    pairs: Sequence[Tuple[Sequence[Any], Sequence[Any]]],
    params: Any = None,
    n_pe: Any = 32,
    ii: Any = 1,
    max_query_len: Optional[int] = None,
    max_ref_len: Optional[int] = None,
    collect_matrix: bool = False,
    model_interface: bool = True,
) -> List[AlignmentResult]:
    """Align a whole batch with one compiled sweep per bucket.

    ``params`` is a single ScoringParams instance for the whole batch
    (or ``None`` for the spec default) or one instance per pair;
    ``n_pe``/``ii`` likewise accept a single int or one per pair (they
    only shape the reported cycle model).  Returns results index-aligned
    with ``pairs``; validation and finishing errors raise exactly the
    exception the per-pair path would raise for the first failing pair
    in submission order.
    """
    recorder = get_recorder()
    pairs = list(pairs)
    if not pairs:
        return []
    if not recorder.enabled:
        return _batch_impl(
            spec, pairs, params, n_pe, ii, max_query_len, max_ref_len,
            collect_matrix, model_interface, recorder,
        )
    with recorder.span(
        "engine.align_batch", kernel=spec.name, pairs=len(pairs),
        backend="compiled",
    ):
        return _batch_impl(
            spec, pairs, params, n_pe, ii, max_query_len, max_ref_len,
            collect_matrix, model_interface, recorder,
        )


def _batch_impl(
    spec: KernelSpec,
    pairs: List[Tuple[Sequence[Any], Sequence[Any]]],
    params: Any,
    n_pe: Any,
    ii: Any,
    max_query_len: Optional[int],
    max_ref_len: Optional[int],
    collect_matrix: bool,
    model_interface: bool,
    recorder: Recorder,
) -> List[AlignmentResult]:
    n_pairs = len(pairs)
    if params is None:
        params_list: List[Any] = [spec.default_params] * n_pairs
    elif dataclasses.is_dataclass(params):
        params_list = [params] * n_pairs
    else:
        params_list = list(params)
        if len(params_list) != n_pairs:
            raise ValueError(
                f"params sequence has {len(params_list)} entries for "
                f"{n_pairs} pairs"
            )
    n_pe_list = _per_pair(n_pe, n_pairs, "n_pe")
    ii_list = _per_pair(ii, n_pairs, "ii")

    # Validate in submission order so the first bad pair raises exactly
    # what per-pair compiled_align would have raised first.
    members: List[_Pair] = []
    for (query, reference), pair_params in zip(pairs, params_list):
        n_rows, n_cols = len(query), len(reference)
        max_q = max_query_len if max_query_len is not None else n_rows
        max_r = max_ref_len if max_ref_len is not None else n_cols
        validate_pair(spec, query, reference, max_q, max_r)
        row0 = spec.init_row_scores(pair_params, n_cols + 1)
        col0 = spec.init_col_scores(pair_params, n_rows + 1)
        check_corner(spec, row0, col0)
        members.append(_Pair(
            query=query, reference=reference,
            n_rows=n_rows, n_cols=n_cols,
            row0=row0, col0=col0, params=pair_params,
        ))

    # Bucket by (params identity, padded shape); insertion order keeps
    # the sweep sequence deterministic.
    param_slots: Dict[int, int] = {}
    buckets: Dict[Tuple[int, int, int], _Bucket] = {}
    for member in members:
        slot = param_slots.setdefault(id(member.params), len(param_slots))
        key = (slot, _padded(member.n_rows), _padded(member.n_cols))
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = _Bucket(
                padded_q=key[1], padded_r=key[2], params=member.params
            )
        member.bucket = bucket
        member.lane = len(bucket.pairs)
        bucket.pairs.append(member)

    for bucket in buckets.values():
        _sweep_bucket(spec, bucket)

    # Per-pair finishing in submission order (start rule, traceback,
    # cycle model, optional matrix) on each pair's own slice.
    results: List[AlignmentResult] = []
    total_wavefronts = 0
    for index, member in enumerate(members):
        bucket = member.bucket
        lane = member.lane
        n_rows, n_cols = member.n_rows, member.n_cols
        layer = bucket.work[spec.score_layer, lane, : n_rows + 1, : n_cols + 1]
        computed = bucket.computed[lane, : n_rows + 1, : n_cols + 1]
        raw_score, start = select_start(spec, layer, computed, n_rows, n_cols)
        score = spec.quantize(float(raw_score))
        alignment = None
        traceback_cycles = 0
        if bucket.ptrs is not None:
            alignment = walk_traceback(
                spec,
                _DensePointerStore(
                    bucket.ptrs[lane, : n_rows + 1, : n_cols + 1]
                ),
                start,
            )
            traceback_cycles = (
                alignment.aligned_length + TRACEBACK_SETUP_CYCLES
            )
        cycles = cycle_report(
            spec, n_rows, n_cols, n_pe_list[index], ii_list[index],
            traceback_cycles, model_interface,
        )
        total_wavefronts += cycles.wavefronts
        matrix: Optional[np.ndarray] = None
        if collect_matrix:
            matrix = assemble_matrix(
                spec, member.row0, member.col0,
                bucket.work[:, lane, : n_rows + 1, : n_cols + 1],
                computed,
            )
        if alignment is not None:
            end = (alignment.query_start, alignment.ref_start)
        else:
            end = (0, 0)
        results.append(AlignmentResult(
            score=score, start=start, end=end,
            alignment=alignment, cycles=cycles, matrix=matrix,
        ))

    # Break the _Pair <-> _Bucket reference cycles so each sweep's dense
    # matrices free on refcount rather than waiting for a gc pass; the
    # streaming pipeline's bounded-memory guarantee depends on wavefront
    # buffers dying before the next chunk allocates its own.
    for member in members:
        member.bucket = None
    for bucket in buckets.values():
        bucket.pairs.clear()
        bucket.work = bucket.ptrs = bucket.computed = None

    if recorder.enabled:
        lane_cells = sum(b.lane_cells for b in buckets.values())
        padded_cells = sum(b.padded_cells for b in buckets.values())
        recorder.count("engine.alignments", n_pairs)
        recorder.count("engine.wavefronts", total_wavefronts)
        recorder.count("engine.cells", lane_cells)
        recorder.count("engine.cells_total{backend=compiled}", lane_cells)
        recorder.count("engine.batch.sweeps", len(buckets))
        recorder.count("engine.batch.pairs", n_pairs)
        recorder.count("engine.batch.lane_cells", lane_cells)
        recorder.count("engine.batch.padded_cells", padded_cells)
        if padded_cells:
            recorder.gauge(
                "engine.batch.waste_frac",
                1.0 - lane_cells / padded_cells,
            )
    return results
