"""Compiled wavefront backend: ``KernelSpec`` -> vectorized NumPy kernel.

This package is the repo's spec-to-implementation *lowering* step — the
same move DP-HLS makes from its front-end spec to generated RTL, applied
to the Python model: :mod:`repro.backend.compiler` traces ``pe_func``
once through :mod:`repro.core.expr` and emits a NumPy function over
whole anti-diagonals; :mod:`repro.backend.wavefront` sweeps it across
the matrix and reconstructs the engine's cycle report in closed form.

``compiled_align`` is bit-identical to :func:`repro.systolic.engine.align`
(scores, start cells, tracebacks, cycle totals, collected matrices) on
every registered kernel — the contract ``repro.verify_fuzz`` enforces as
a three-way differential against the DP oracle.  Select a backend by
name via :func:`get_backend`; the ``backend=`` knob on
:class:`repro.host.runtime.DeviceRuntime`, :class:`repro.service.pool.DevicePool`
and the ``repro serve``/``loadgen``/``campaign`` CLIs routes through it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.backend.batch import compiled_align_batch
from repro.backend.compiler import (
    CompiledKernel,
    UnsupportedSpecError,
    lower,
    prewarm,
)
from repro.backend.wavefront import compiled_align


def _systolic_align(*args: Any, **kwargs: Any):
    from repro.systolic.engine import align

    return align(*args, **kwargs)


#: Backend name -> align callable with the engine's signature.
BACKENDS: Dict[str, Callable[..., Any]] = {
    "systolic": _systolic_align,
    "compiled": compiled_align,
}

#: Backend name -> whole-batch align callable (one call, B results),
#: for backends that amortize dispatch across pairs.  Absence means the
#: backend has no batched fast path and callers fall back to per-pair.
BATCH_BACKENDS: Dict[str, Callable[..., Any]] = {
    "compiled": compiled_align_batch,
}


def get_batch_backend(name: str) -> Optional[Callable[..., Any]]:
    """Resolve a backend name to its batched align callable, if any."""
    return BATCH_BACKENDS.get(name)


def get_backend(name: str) -> Callable[..., Any]:
    """Resolve a backend name to its align callable."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from "
            f"{sorted(BACKENDS)}"
        ) from None


__all__ = [
    "BACKENDS",
    "BATCH_BACKENDS",
    "CompiledKernel",
    "UnsupportedSpecError",
    "compiled_align",
    "compiled_align_batch",
    "get_backend",
    "get_batch_backend",
    "lower",
    "prewarm",
]
