"""Lower a ``KernelSpec``'s PE function to a vectorized NumPy kernel.

The compiler runs ``pe_func`` exactly once in expression-tracing mode
(:mod:`repro.core.expr`): every PE input — neighbour scores, query and
reference symbols, scoring parameters — is an :class:`~repro.core.expr.ExprValue`
leaf, so the single call returns the complete dataflow DAG of the
recurrence, per-layer scores and packed traceback pointer included.
The DAG is then emitted as Python source for one function

    def _pe(up, diag, left, qry, ref, p, t): ...

whose operands are whole *anti-diagonals* (NumPy arrays) instead of
scalars; ``exec`` turns it into the callable
:mod:`repro.backend.wavefront` sweeps over the matrix.  Because the
emitted expression tree has exactly the shape the scalar engine
evaluates (same operator order, same float64 arithmetic, same
``np.where`` tie behaviour as ``select``), the results are bit-identical
— the contract ``repro.verify_fuzz`` enforces as a three-way
differential.

Specs outside the supported surface (non-dataclass params, table
lookups indexed by *computed* values rather than symbols or constants)
raise :class:`UnsupportedSpecError` at compile time; see
``docs/backends.md``.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.expr import ExprError, ExprTable, ExprValue, Node
from repro.core.spec import KernelSpec, PEInput


class UnsupportedSpecError(TypeError):
    """The spec uses a construct the compiled backend cannot lower."""


@dataclasses.dataclass(frozen=True)
class CompiledKernel:
    """One lowered PE function plus its generated source (for inspection)."""

    name: str
    fn: Any
    source: str
    param_signature: Tuple[Tuple[Any, ...], ...]


#: (pe_func, n_layers, alphabet identity, param signature) -> CompiledKernel.
_CACHE: Dict[Tuple, CompiledKernel] = {}


def param_signature(params: Any) -> Tuple[Tuple[Any, ...], ...]:
    """Classify parameter fields the way :func:`repro.core.spec.wrap_params`
    does: scalars become runtime dictionary entries, sequences become
    gather tables."""
    if not dataclasses.is_dataclass(params):
        raise UnsupportedSpecError(
            f"ScoringParams must be a dataclass instance, got {type(params)!r}"
        )
    signature: List[Tuple[Any, ...]] = []
    for f in dataclasses.fields(params):
        value = getattr(params, f.name)
        if isinstance(value, (int, float)):
            signature.append((f.name, "scalar"))
        elif isinstance(value, (list, tuple, np.ndarray)):
            signature.append((f.name, "table", np.asarray(value).shape))
        else:
            raise UnsupportedSpecError(
                f"unsupported ScoringParams field {f.name!r} of type "
                f"{type(value)!r}"
            )
    return tuple(signature)


def _expr_params(signature: Tuple[Tuple[Any, ...], ...]) -> SimpleNamespace:
    mirror: Dict[str, Any] = {}
    for entry in signature:
        name, kind = entry[0], entry[1]
        if kind == "scalar":
            mirror[name] = ExprValue.input(f"p[{name!r}]")
        else:
            mirror[name] = ExprTable(name, entry[2])
    return SimpleNamespace(**mirror)


def _expr_symbol(spec: KernelSpec, prefix: str) -> Any:
    alphabet = spec.alphabet
    if not alphabet.is_struct:
        return ExprValue.input(prefix)
    return tuple(
        ExprValue.input(f"{prefix}[{k}]")
        for k in range(len(alphabet.fields))
    )


_BINARY = {
    "add": "({} + {})",
    "sub": "({} - {})",
    "mul": "({} * {})",
    "lt": "({} < {})",
    "le": "({} <= {})",
    "gt": "({} > {})",
    "ge": "({} >= {})",
    "eq": "({} == {})",
    "maximum": "np.maximum({}, {})",
    "minimum": "np.minimum({}, {})",
}
_UNARY = {"abs": "np.abs({})", "neg": "(-{})"}


class _Emitter:
    """Post-order DAG walk assigning one statement per distinct node.

    The memo is keyed by node identity, so shared subexpressions — the
    running ``best`` of a compare-select cascade, a squared difference
    used twice — are computed once, exactly like the scalar evaluation
    that built the DAG.
    """

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._names: Dict[int, str] = {}
        self._alive: List[Node] = []  # pin nodes so id() keys stay unique
        self._counter = 0

    def _assign(self, node: Node, text: str) -> str:
        name = f"v{self._counter}"
        self._counter += 1
        self.lines.append(f"    {name} = {text}")
        self._names[id(node)] = name
        return name

    def emit(self, node: Node) -> str:
        memo = self._names.get(id(node))
        if memo is not None:
            return memo
        self._alive.append(node)
        if node.op == "in":
            self._names[id(node)] = node.source
            return node.source
        if node.op == "const":
            text = repr(node.args[0])
            self._names[id(node)] = text
            return text
        if node.op == "gather":
            idx = ", ".join(self.emit(arg) for arg in node.args)
            return self._assign(node, f"t[{node.source!r}][{idx}]")
        if node.op == "where":
            cond, a, b = (self.emit(arg) for arg in node.args)
            return self._assign(node, f"np.where({cond}, {a}, {b})")
        if node.op in _BINARY:
            a, b = (self.emit(arg) for arg in node.args)
            return self._assign(node, _BINARY[node.op].format(a, b))
        if node.op in _UNARY:
            (a,) = (self.emit(arg) for arg in node.args)
            return self._assign(node, _UNARY[node.op].format(a))
        raise UnsupportedSpecError(f"cannot lower node op {node.op!r}")


def _operand_text(emitter: _Emitter, value: Any) -> str:
    if isinstance(value, ExprValue):
        return emitter.emit(value.node)
    if isinstance(value, (int, float, bool)):
        return repr(value)
    raise UnsupportedSpecError(
        f"PE function produced an output of type {type(value).__name__!r}"
    )


def lower(spec: KernelSpec, params: Any = None) -> CompiledKernel:
    """Trace ``spec.pe_func`` and emit its vectorized NumPy form."""
    if params is None:
        params = spec.default_params
    signature = param_signature(params)
    key = (spec.pe_func, spec.n_layers, spec.alphabet.name,
           spec.alphabet.fields, signature)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    def layer_inputs(prefix: str) -> Tuple[ExprValue, ...]:
        return tuple(
            ExprValue.input(f"{prefix}[{k}]") for k in range(spec.n_layers)
        )

    cell = PEInput(
        up=layer_inputs("up"),
        diag=layer_inputs("diag"),
        left=layer_inputs("left"),
        qry=_expr_symbol(spec, "qry"),
        ref=_expr_symbol(spec, "ref"),
        params=_expr_params(signature),
    )
    try:
        scores, ptr = spec.pe_func(cell)
    except ExprError as exc:
        raise UnsupportedSpecError(
            f"{spec.name}: PE function is outside the compiled backend's "
            f"supported surface: {exc}"
        ) from exc
    if len(scores) != spec.n_layers:
        raise UnsupportedSpecError(
            f"{spec.name}: pe_func produced {len(scores)} layers, "
            f"expected {spec.n_layers}"
        )

    emitter = _Emitter()
    score_texts = [_operand_text(emitter, s) for s in scores]
    ptr_text = _operand_text(emitter, ptr)
    source = "\n".join(
        [
            "def _pe(up, diag, left, qry, ref, p, t):",
            *emitter.lines,
            f"    return ({', '.join(score_texts)},), {ptr_text}",
        ]
    )
    namespace: Dict[str, Any] = {"np": np}
    exec(compile(source, f"<compiled:{spec.name}>", "exec"), namespace)
    compiled = CompiledKernel(
        name=spec.name,
        fn=namespace["_pe"],
        source=source,
        param_signature=signature,
    )
    _CACHE[key] = compiled
    return compiled


def prewarm(spec: KernelSpec, params: Any = None) -> bool:
    """Compile ``spec`` now so the first request doesn't pay for lowering.

    Returns ``True`` when the spec lowered (or was already cached) and
    ``False`` when it is outside the compiled surface — callers on the
    serving ready path treat that as "this kernel stays on the systolic
    backend", not as an error.
    """
    try:
        lower(spec, params)
    except UnsupportedSpecError:
        return False
    return True


def runtime_params(params: Any) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a ScoringParams instance into (scalar dict, table dict)."""
    scalars: Dict[str, Any] = {}
    tables: Dict[str, Any] = {}
    for f in dataclasses.fields(params):
        value = getattr(params, f.name)
        if isinstance(value, (int, float)):
            scalars[f.name] = value
        else:
            tables[f.name] = np.asarray(value, dtype=np.float64)
    return scalars, tables
