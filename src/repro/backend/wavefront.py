"""Anti-diagonal sweep driving a compiled PE function.

``compiled_align`` is a drop-in replacement for
:func:`repro.systolic.engine.align`: same signature, same validation
errors, same :class:`~repro.core.result.AlignmentResult` — including a
bit-identical :class:`~repro.core.result.CycleReport`, reconstructed
from the closed-form chunk schedule instead of simulated cycle by
cycle.  The only difference is speed: every anti-diagonal of the DP
matrix is evaluated as one NumPy expression over the whole wavefront
(the idiom of :mod:`repro.reference.vectorized`, generated from the
spec by :mod:`repro.backend.compiler`).

Bit-identity notes (enforced by ``repro.verify_fuzz``'s three-way
differential and ``tests/test_backend_equivalence.py``):

* cell (i, j) on diagonal ``d = i + j`` depends only on diagonals
  ``d-1`` (up/left) and ``d-2`` (diag), so a single working matrix
  written in ``d`` order always reads finished values;
* banding is applied by *storage* masking: out-of-band cells — and
  init row/column cells beyond the band — hold the sentinel, which is
  exactly what the engine's boundary muxes and the oracle's
  ``neighbour()`` return for out-of-band coordinate reads;
* the start-cell search restricts ``argmax``/``argmin`` to a computed
  mask; NumPy's first-occurrence tie rule on the row-major flattened
  matrix equals the engine's smallest-(i, j) tie break;
* quantization uses the score type's ``quantize_array``, bit-identical
  to the scalar ``quantize`` applied per cell.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backend.compiler import lower, runtime_params
from repro.core.result import AlignmentResult, CycleReport
from repro.core.spec import KernelSpec, Objective, StartRule
from repro.obs.recorder import Recorder, get_recorder
from repro.systolic.engine import (
    INTERFACE_CYCLES_PER_BASE,
    TRACEBACK_SETUP_CYCLES,
    SystolicAlignmentError,
    check_corner,
    validate_pair,
)
from repro.systolic.schedule import chunk_schedules
from repro.systolic.traceback import TracebackError, walk_traceback


class _DensePointerStore:
    """Dense pointer matrix behind the traceback walker's read API.

    Unwritten cells read as 0, matching both the oracle's zero-filled
    pointer matrix and the engine's zero-initialised banked memory.
    """

    def __init__(self, ptrs: np.ndarray):
        self._ptrs = ptrs

    def read(self, i: int, j: int) -> int:
        return int(self._ptrs[i, j])


def _symbol_operands(spec: KernelSpec, sequence: Sequence[Any]) -> Any:
    alphabet = spec.alphabet
    if alphabet.is_struct:
        return tuple(
            np.asarray([symbol[k] for symbol in sequence], dtype=np.float64)
            for k in range(len(alphabet.fields))
        )
    if alphabet.size:
        return np.asarray(sequence, dtype=np.intp)
    return np.asarray(sequence, dtype=np.float64)


def _take(symbols: Any, idx: np.ndarray) -> Any:
    if isinstance(symbols, tuple):
        return tuple(field[idx] for field in symbols)
    return symbols[idx]


def select_start(
    spec: KernelSpec,
    layer: np.ndarray,
    computed: np.ndarray,
    n_rows: int,
    n_cols: int,
) -> Tuple[float, Tuple[int, int]]:
    """Locate the reported score / traceback start cell of one matrix.

    ``layer`` and ``computed`` are the score layer and computed-cell mask
    of one (n_rows+1, n_cols+1) DP matrix.  NumPy's first-occurrence tie
    rule over the row-major flattened matrix equals the engine's
    smallest-(i, j) tie break; the batched driver reuses this on per-pair
    slices, where row-major order is likewise (i, j)-lexicographic.
    """
    if spec.start_rule is StartRule.BOTTOM_RIGHT:
        if not computed[n_rows, n_cols]:
            raise SystolicAlignmentError(
                f"{spec.name}: bottom-right cell was never computed"
            )
        return layer[n_rows, n_cols], (n_rows, n_cols)
    eligible = computed.copy()
    if spec.start_rule is StartRule.LAST_ROW_MAX:
        eligible[:n_rows, :] = False
    elif spec.start_rule is StartRule.LAST_ROW_OR_COL_MAX:
        edge = np.zeros_like(eligible)
        edge[n_rows, :] = True
        edge[:, n_cols] = True
        eligible &= edge
    if not eligible.any():
        raise TracebackError(
            f"{spec.name}: no cell satisfied start rule "
            f"{spec.start_rule.value}"
        )
    if spec.objective is Objective.MAXIMIZE:
        flat = int(np.argmax(np.where(eligible, layer, -np.inf)))
    else:
        flat = int(np.argmin(np.where(eligible, layer, np.inf)))
    si, sj = divmod(flat, n_cols + 1)
    return layer[si, sj], (si, sj)


def cycle_report(
    spec: KernelSpec,
    n_rows: int,
    n_cols: int,
    n_pe: int,
    ii: int,
    traceback_cycles: int,
    model_interface: bool,
) -> CycleReport:
    """Closed-form :class:`CycleReport` of one pair on the modelled array.

    The same arithmetic the systolic engine accumulates while running,
    reconstructed from the chunk schedule.
    """
    chunks = chunk_schedules(n_rows, n_cols, n_pe, spec.banding)
    total_wavefronts = sum(len(chunk.wavefronts) for chunk in chunks)
    if spec.start_rule is StartRule.BOTTOM_RIGHT:
        reduction_cycles = 0
    else:
        reduction_cycles = max(1, math.ceil(math.log2(max(2, n_pe)))) + 2
    return CycleReport(
        init_cycles=(n_cols + 1) + (n_rows + 1),
        load_cycles=n_rows,
        compute_cycles=total_wavefronts * ii,
        reduction_cycles=reduction_cycles,
        traceback_cycles=traceback_cycles,
        interface_cycles=(
            INTERFACE_CYCLES_PER_BASE * (n_rows + n_cols)
            if model_interface else 0
        ),
        wavefronts=total_wavefronts,
        ii=ii,
    )


def assemble_matrix(
    spec: KernelSpec,
    row0: np.ndarray,
    col0: np.ndarray,
    work: np.ndarray,
    computed: np.ndarray,
) -> np.ndarray:
    """Collected DP matrix: dtype inferred from the sentinel (int64 for
    ap_int kernels), init row/col *unmasked* — same construction as the
    engine and oracle."""
    sentinel = spec.sentinel()
    matrix = np.full(work.shape, sentinel)
    matrix[:, 0, :] = row0.T
    matrix[:, :, 0] = col0.T
    for k in range(spec.n_layers):
        matrix[k][computed] = work[k][computed].astype(matrix.dtype)
    return matrix


def compiled_align(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    params: Any = None,
    n_pe: int = 32,
    ii: int = 1,
    max_query_len: Optional[int] = None,
    max_ref_len: Optional[int] = None,
    collect_matrix: bool = False,
    model_interface: bool = True,
) -> AlignmentResult:
    """Align one pair with the compiled wavefront backend.

    Accepts exactly the arguments of :func:`repro.systolic.engine.align`
    (``n_pe``/``ii`` only shape the reported cycle model here — the
    NumPy sweep has no PEs) and returns a bit-identical result.
    """
    recorder = get_recorder()
    if not recorder.enabled:
        return _align_impl(
            spec, query, reference, params, n_pe, ii, max_query_len,
            max_ref_len, collect_matrix, model_interface, recorder,
        )
    with recorder.span(
        "engine.align", kernel=spec.name, query_len=len(query),
        ref_len=len(reference), n_pe=n_pe, ii=ii, backend="compiled",
    ):
        return _align_impl(
            spec, query, reference, params, n_pe, ii, max_query_len,
            max_ref_len, collect_matrix, model_interface, recorder,
        )


def _align_impl(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    params: Any,
    n_pe: int,
    ii: int,
    max_query_len: Optional[int],
    max_ref_len: Optional[int],
    collect_matrix: bool,
    model_interface: bool,
    recorder: Recorder,
) -> AlignmentResult:
    n_rows, n_cols = len(query), len(reference)
    max_q = max_query_len if max_query_len is not None else n_rows
    max_r = max_ref_len if max_ref_len is not None else n_cols
    validate_pair(spec, query, reference, max_q, max_r)
    if params is None:
        params = spec.default_params

    n_layers = spec.n_layers
    sentinel = spec.sentinel()
    banding = spec.banding
    score_layer = spec.score_layer

    row0 = spec.init_row_scores(params, n_cols + 1)
    col0 = spec.init_col_scores(params, n_rows + 1)
    check_corner(spec, row0, col0)

    compiled = lower(spec, params)
    scalars, tables = runtime_params(params)
    q_syms = _symbol_operands(spec, query)
    r_syms = _symbol_operands(spec, reference)
    quantize_array = spec.score_type.quantize_array

    # Working matrices: float64 everywhere (exact for the <= 32-bit score
    # types), out-of-band cells pinned at the sentinel so neighbour reads
    # need no masking of their own.
    work = np.full(
        (n_layers, n_rows + 1, n_cols + 1), float(sentinel), dtype=np.float64
    )
    work[:, 0, :] = row0.T
    work[:, :, 0] = col0.T
    if banding is not None:
        cols = np.arange(n_cols + 1)
        rows = np.arange(n_rows + 1)
        work[:, 0, cols > banding] = float(sentinel)
        work[:, rows > banding, 0] = float(sentinel)

    ptrs: Optional[np.ndarray] = None
    if spec.has_traceback:
        ptrs = np.zeros((n_rows + 1, n_cols + 1), dtype=np.int64)
    computed = np.zeros((n_rows + 1, n_cols + 1), dtype=bool)

    pe = compiled.fn
    cells_evaluated = 0
    for d in range(2, n_rows + n_cols + 1):
        ilo = max(1, d - n_cols)
        ihi = min(n_rows, d - 1)
        if banding is not None:
            # |i - (d - i)| <= W  <=>  (d - W) / 2 <= i <= (d + W) / 2
            ilo = max(ilo, (d - banding + 1) // 2)
            ihi = min(ihi, (d + banding) // 2)
        if ilo > ihi:
            continue
        i = np.arange(ilo, ihi + 1)
        j = d - i
        up = tuple(work[k, i - 1, j] for k in range(n_layers))
        diag = tuple(work[k, i - 1, j - 1] for k in range(n_layers))
        left = tuple(work[k, i, j - 1] for k in range(n_layers))
        scores, ptr = pe(
            up, diag, left, _take(q_syms, i - 1), _take(r_syms, j - 1),
            scalars, tables,
        )
        for k in range(n_layers):
            out_k = np.broadcast_to(
                np.asarray(scores[k], dtype=np.float64), i.shape
            )
            work[k, i, j] = quantize_array(out_k)
        if ptrs is not None:
            ptrs[i, j] = np.broadcast_to(np.asarray(ptr), i.shape)
        computed[i, j] = True
        cells_evaluated += len(i)

    # ------------------------------------------------------------------
    # locate the reported score / traceback start cell
    # ------------------------------------------------------------------
    raw_score, start = select_start(
        spec, work[score_layer], computed, n_rows, n_cols
    )
    # Restore the scalar engine's score type (Python int for ap_int
    # kernels, float for ap_fixed) — quantize is idempotent on already
    # quantized values.
    score = spec.quantize(float(raw_score))

    alignment = None
    traceback_cycles = 0
    if ptrs is not None:
        if recorder.enabled:
            with recorder.span(
                "engine.traceback", start_row=start[0], start_col=start[1]
            ):
                alignment = walk_traceback(spec, _DensePointerStore(ptrs), start)
        else:
            alignment = walk_traceback(spec, _DensePointerStore(ptrs), start)
        traceback_cycles = alignment.aligned_length + TRACEBACK_SETUP_CYCLES

    # ------------------------------------------------------------------
    # cycle model: reconstructed from the chunk schedule in closed form —
    # the same arithmetic the systolic engine accumulates while running.
    # ------------------------------------------------------------------
    cycles = cycle_report(
        spec, n_rows, n_cols, n_pe, ii, traceback_cycles, model_interface
    )

    if recorder.enabled:
        recorder.count("engine.alignments")
        recorder.count("engine.wavefronts", cycles.wavefronts)
        recorder.count("engine.cells", cells_evaluated)
        recorder.count("engine.cells_total{backend=compiled}", cells_evaluated)

    matrix: Optional[np.ndarray] = None
    if collect_matrix:
        matrix = assemble_matrix(spec, row0, col0, work, computed)

    if alignment is not None:
        end = (alignment.query_start, alignment.ref_start)
    else:
        end = (0, 0)
    return AlignmentResult(
        score=score,
        start=start,
        end=end,
        alignment=alignment,
        cycles=cycles,
        matrix=matrix,
    )
