"""Process-pool batch execution layer (the host analogue of N_K channels).

The paper gets its throughput by replicating the kernel ``N_K`` times and
letting the host drain a batch of alignments across the copies.  This
module is the software twin of that host program: a batch of work items is
fanned out across CPU cores, chunked to amortize dispatch overhead (the
``DISPATCH_CYCLES`` of :mod:`repro.host.scheduler`, but for processes),
and reassembled in submission order.

Three properties the rest of the system relies on:

* **Determinism** — every item gets a seed derived only from
  ``(base_seed, index)`` via :func:`derive_seed`, and outcomes are returned
  in index order, so a run with ``workers=4`` is indistinguishable from a
  run with ``workers=1``.
* **Failure isolation** — a worker exception (or per-item timeout) becomes
  a structured :class:`WorkError` record on that item; the rest of the
  batch completes normally.
* **Serial transparency** — ``workers=1`` executes in-process through the
  exact same chunk runner the pool uses, so the serial path stays
  bit-identical and debuggable.

Work functions must be module-level callables taking ``(item, seed)``:
they cross process boundaries by reference, and items must be picklable
(pass ``kernel_id`` instead of a :class:`~repro.core.spec.KernelSpec`,
whose closures do not pickle).
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.recorder import get_recorder

__all__ = [
    "BatchError",
    "BatchResult",
    "ItemOutcome",
    "ParallelExecutor",
    "WorkError",
    "derive_seed",
    "run_batch",
]


def derive_seed(base_seed: int, index: int) -> int:
    """Stable per-item seed: a 63-bit digest of ``(base_seed, index)``.

    Hash-based (not ``base_seed + index``) so neighbouring items never get
    correlated RNG streams, and stable across platforms and Python
    versions so recorded reproducers stay valid.

    >>> derive_seed(0, 0) == derive_seed(0, 0)
    True
    >>> derive_seed(0, 1) != derive_seed(1, 0)
    True
    """
    payload = f"{base_seed}:{index}".encode("ascii")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True)
class WorkError:
    """Structured record of one failed work item."""

    index: int
    error_type: str
    message: str
    #: Formatted traceback — diagnostic only, excluded from equality so
    #: serial and pooled runs compare equal.
    traceback: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"item {self.index}: {self.error_type}: {self.message}"


@dataclass(frozen=True)
class ItemOutcome:
    """Result slot for one work item, ordered by submission index."""

    index: int
    ok: bool
    value: Any = None
    error: Optional[WorkError] = None


class BatchError(RuntimeError):
    """Raised by :meth:`BatchResult.values` when any item failed.

    The message carries the first failure's *worker-side* traceback (when
    one was captured) so the original raise site survives the process
    boundary — without it, only the exception repr reaches the caller
    and the actual failing line in the work function is lost.
    """

    def __init__(self, errors: Sequence[WorkError]):
        self.errors = list(errors)
        preview = "; ".join(str(e) for e in self.errors[:3])
        more = f" (+{len(self.errors) - 3} more)" if len(self.errors) > 3 else ""
        message = f"{len(self.errors)} work item(s) failed: {preview}{more}"
        traced = next((e for e in self.errors if e.traceback), None)
        if traced is not None:
            message += (
                f"\nworker traceback of item "
                f"{traced.index}:\n{traced.traceback.rstrip()}"
            )
        super().__init__(message)


@dataclass
class BatchResult:
    """Outcomes of one batch, in submission order, plus wall-clock cost."""

    outcomes: List[ItemOutcome]
    workers: int
    elapsed_s: float = field(default=0.0, compare=False)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def errors(self) -> List[WorkError]:
        """Structured records of every failed item."""
        return [o.error for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        """Whether every item completed."""
        return not self.errors

    def values(self, strict: bool = True) -> List[Any]:
        """Item values in submission order.

        With ``strict`` (default) any failure raises :class:`BatchError`;
        otherwise failed slots hold ``None`` so callers can zip outcomes
        against inputs.
        """
        if strict and not self.ok:
            raise BatchError(self.errors)
        return [o.value if o.ok else None for o in self.outcomes]


class _ItemTimeout(Exception):
    """Internal marker raised by the SIGALRM handler."""


def _call_with_timeout(fn: Callable[..., Any], args: tuple, timeout: Optional[float]):
    """Run ``fn(*args)``, raising :class:`_ItemTimeout` after ``timeout`` s.

    Uses a real (SIGALRM) interval timer, so it bounds genuine runtime,
    not just cooperative checkpoints.  Only armed when a timeout is set;
    the previous handler/timer are restored either way.

    Signal handlers can only be installed from the process's main thread.
    When the in-process (``workers=1``) path runs on a worker thread —
    the service's batcher dispatch threads do exactly that —
    ``signal.signal`` would raise ``ValueError``, so the call falls back
    to a documented no-timeout path: the item runs unbounded rather than
    failing spuriously.  Pool workers are unaffected (chunks always run
    on each worker process's main thread).
    """
    if not timeout:
        return fn(*args)
    if threading.current_thread() is not threading.main_thread():
        return fn(*args)

    def on_alarm(_signum, _frame):
        raise _ItemTimeout(f"work item exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(*args)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_chunk(
    fn: Callable[[Any, int], Any],
    entries: Sequence[Tuple[int, int, Any]],
    timeout: Optional[float],
) -> List[ItemOutcome]:
    """Execute one chunk of ``(index, seed, item)`` entries.

    Shared by the pool workers and the in-process serial path, which is
    what keeps ``workers=1`` bit-identical to ``workers=N``.
    """
    import traceback as tb_module

    outcomes: List[ItemOutcome] = []
    for index, seed, item in entries:
        try:
            value = _call_with_timeout(fn, (item, seed), timeout)
        except _ItemTimeout as exc:
            outcomes.append(ItemOutcome(
                index=index, ok=False,
                error=WorkError(index, "TimeoutError", str(exc)),
            ))
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            outcomes.append(ItemOutcome(
                index=index, ok=False,
                error=WorkError(
                    index, type(exc).__name__, str(exc),
                    traceback=tb_module.format_exc(),
                ),
            ))
        else:
            outcomes.append(ItemOutcome(index=index, ok=True, value=value))
    return outcomes


def default_workers() -> int:
    """Worker count used when none is requested: the usable core count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class ParallelExecutor:
    """Chunked, order-preserving, failure-isolating process-pool mapper.

    Parameters
    ----------
    workers:
        Process count.  ``None`` uses :func:`default_workers`; ``1`` runs
        in-process (no pool, no pickling).
    chunk_size:
        Items per dispatched chunk.  ``None`` splits the batch into about
        four chunks per worker — large enough to amortize process dispatch,
        small enough to load-balance uneven item costs.
    timeout:
        Per-item wall-clock budget in seconds; an overrunning item becomes
        a ``TimeoutError`` :class:`WorkError` without killing its worker.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.workers = workers if workers is not None else default_workers()
        self.chunk_size = chunk_size
        self.timeout = timeout

    def _chunks(
        self, entries: List[Tuple[int, int, Any]]
    ) -> List[List[Tuple[int, int, Any]]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(entries) // (self.workers * 4)))
        return [entries[k:k + size] for k in range(0, len(entries), size)]

    def map(
        self,
        fn: Callable[[Any, int], Any],
        items: Sequence[Any],
        seed: int = 0,
    ) -> BatchResult:
        """Apply ``fn(item, derived_seed)`` to every item.

        Returns a :class:`BatchResult` whose outcomes are in submission
        order regardless of worker scheduling.  Elapsed time (and the
        ``parallel.map`` span) are measured with ``time.monotonic`` so
        they survive wall-clock adjustments mid-batch.
        """
        recorder = get_recorder()
        started = time.monotonic()
        entries = [
            (index, derive_seed(seed, index), item)
            for index, item in enumerate(items)
        ]
        if not entries:
            return BatchResult(outcomes=[], workers=self.workers, elapsed_s=0.0)
        if self.workers == 1:
            with recorder.span("parallel.map", workers=1, items=len(entries),
                               chunks=1):
                outcomes = _run_chunk(fn, entries, self.timeout)
            self._record(recorder, outcomes, chunks=1)
            return BatchResult(
                outcomes=outcomes, workers=1,
                elapsed_s=time.monotonic() - started,
            )
        chunks = self._chunks(entries)
        outcomes = []
        with recorder.span("parallel.map", workers=self.workers,
                           items=len(entries), chunks=len(chunks)):
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks))
            ) as pool:
                with recorder.span("parallel.dispatch", chunks=len(chunks)):
                    futures = [
                        pool.submit(_run_chunk, fn, chunk, self.timeout)
                        for chunk in chunks
                    ]
                with recorder.span("parallel.drain", chunks=len(chunks)):
                    for future in futures:
                        outcomes.extend(future.result())
        outcomes.sort(key=lambda o: o.index)
        self._record(recorder, outcomes, chunks=len(chunks))
        return BatchResult(
            outcomes=outcomes, workers=self.workers,
            elapsed_s=time.monotonic() - started,
        )

    @staticmethod
    def _record(recorder, outcomes: List[ItemOutcome], chunks: int) -> None:
        """Report batch counters to the current recorder (cheap if null)."""
        if not recorder.enabled:
            return
        recorder.count("parallel.items", len(outcomes))
        recorder.count("parallel.chunks", chunks)
        timeouts = sum(
            1 for o in outcomes
            if not o.ok and o.error is not None
            and o.error.error_type == "TimeoutError"
        )
        failures = sum(1 for o in outcomes if not o.ok)
        if timeouts:
            recorder.count("parallel.item_timeouts", timeouts)
        if failures:
            recorder.count("parallel.item_failures", failures)


def run_batch(
    fn: Callable[[Any, int], Any],
    items: Sequence[Any],
    workers: int = 1,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    executor = ParallelExecutor(
        workers=workers, chunk_size=chunk_size, timeout=timeout
    )
    return executor.map(fn, items, seed=seed)
