"""CPU software baseline models: SeqAn3, Minimap2, EMBOSS Water.

Each model exposes ``align`` (the actual algorithm, via
:mod:`repro.reference.classic`) and ``throughput_alignments_per_sec`` (the
performance model).  Throughput derives from a cells-per-second budget on
the paper's c4.8xlarge instance (36 cores, ~2.9 GHz, AVX2):

* **SeqAn3** — one vectorised implementation shared across alignment
  variants, so its throughput is nearly flat across kernels (exactly the
  "minor variability" Section 7.4 observes).  Budget: 36 cores x 2.9 GHz
  x 16 SIMD lanes (16-bit) at 7.7 % end-to-end efficiency ~ 1.28e11
  cells/s.
* **Minimap2** — the two-piece ksw2 kernel: 5 layers of 16-bit SSE with
  heavy per-cell work, ~5.8e9 cells/s.
* **EMBOSS Water** — scalar C, parallelised only by running 32 jobs
  (GNU parallel), ~100 M cells/s/core ~ 3.6e9 cells/s.

Constants are calibrated so the headline ratios of Fig. 6 (1.5-2.7x,
12x, 32x) are reproduced at the DP-HLS model's throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.reference import classic


@dataclass(frozen=True)
class CpuInstance:
    """The paper's CPU baseline host (AWS c4.8xlarge)."""

    cores: int = 36
    frequency_ghz: float = 2.9
    simd_lanes_16bit: int = 16


class SeqAn3Model:
    """SeqAn3 (v3.3.0), 32 threads — baseline for kernels #1-4, #6-7, #11-12."""

    #: Effective DP-cell throughput of the whole instance.
    CELLS_PER_SEC = 1.28e11

    #: Mild per-kernel adjustments: banding shrinks the matrix SeqAn must
    #: fill but breaks its SIMD-friendly full-rectangle layout.
    KERNEL_FACTOR: Dict[int, float] = {
        2: 0.95, 4: 0.95,      # affine: one extra vector op per cell
        11: 0.75,              # banded global: band logic, partial vectors
        12: 1.30,              # banded local affine: skips most of the matrix
    }

    SUPPORTED_KERNELS = (1, 2, 3, 4, 6, 7, 11, 12)

    def throughput_alignments_per_sec(
        self, kernel_id: int, query_len: int, ref_len: int
    ) -> float:
        """Raw (not iso-cost-adjusted) alignments per second."""
        if kernel_id not in self.SUPPORTED_KERNELS:
            raise ValueError(f"SeqAn3 baseline does not cover kernel #{kernel_id}")
        factor = self.KERNEL_FACTOR.get(kernel_id, 1.0)
        return self.CELLS_PER_SEC * factor / (query_len * ref_len)

    @staticmethod
    def align(kernel_id: int, query: Sequence[int], reference: Sequence[int]) -> float:
        """Run the corresponding algorithm (functional half of the model)."""
        dispatch = {
            1: classic.nw_linear,
            2: classic.gotoh_global,
            3: classic.sw_linear,
            4: classic.gotoh_local,
            6: classic.overlap_score,
            7: classic.semiglobal_score,
        }
        if kernel_id in dispatch:
            return dispatch[kernel_id](query, reference)
        if kernel_id == 11:
            return classic.banded_nw_linear(query, reference, band=32)
        if kernel_id == 12:
            return classic.banded_gotoh_local(query, reference, band=32)
        raise ValueError(f"SeqAn3 baseline does not cover kernel #{kernel_id}")


class Minimap2Model:
    """Minimap2 (v2.28) ksw2 two-piece kernel — baseline for kernel #5."""

    CELLS_PER_SEC = 5.8e9

    def throughput_alignments_per_sec(self, query_len: int, ref_len: int) -> float:
        """Raw alignments per second for global two-piece alignment."""
        return self.CELLS_PER_SEC / (query_len * ref_len)

    @staticmethod
    def align(query: Sequence[int], reference: Sequence[int]) -> float:
        """Two-piece global score (functional half)."""
        return classic.two_piece_global(query, reference)


class EmbossWaterModel:
    """EMBOSS Water (v6.6.0), 32 GNU-parallel jobs — baseline for kernel #15."""

    CELLS_PER_SEC = 3.6e9

    def throughput_alignments_per_sec(self, query_len: int, ref_len: int) -> float:
        """Raw alignments per second for protein Smith-Waterman."""
        return self.CELLS_PER_SEC / (query_len * ref_len)

    @staticmethod
    def align(query: Sequence[int], reference: Sequence[int], matrix=None) -> float:
        """Protein local alignment score (functional half)."""
        from repro.data.blosum import BLOSUM62

        return classic.matrix_local(query, reference, matrix or BLOSUM62)
