"""GPU software baseline models: GASAL2 and CUDASW++ 4.0 on a V100.

Performance follows published GCUPS (giga cell updates per second)
figures for the NVIDIA Tesla V100 of the paper's p3.2xlarge instance;
Fig. 6 additionally applies the iso-cost factor (the V100 instance costs
1.85x the F1 instance).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.baselines.costmodel import P3_2XLARGE_USD_HR, iso_cost_factor
from repro.reference import classic


class Gasal2Model:
    """GASAL2 — baseline for kernels #2 (GLOBAL), #4 (LOCAL), #12 (BSW).

    GASAL2 predates modern tensor-era GPU optimisations (Section 7.4 notes
    its codebase has not been updated recently), hence the modest GCUPS.
    """

    #: Effective V100 GCUPS per alignment type.
    GCUPS: Dict[str, float] = {
        "global": 60.0,   # kernel #2
        "local": 36.0,    # kernel #4 (with traceback)
        "bsw": 9.0,       # kernel #12 (banded; counted over band cells)
    }

    KERNEL_MODE = {2: "global", 4: "local", 12: "bsw"}

    def throughput_alignments_per_sec(
        self, kernel_id: int, query_len: int, ref_len: int, band: int = 32
    ) -> float:
        """Raw alignments per second on the V100."""
        try:
            mode = self.KERNEL_MODE[kernel_id]
        except KeyError:
            raise ValueError(
                f"GASAL2 baseline does not cover kernel #{kernel_id}"
            ) from None
        if mode == "bsw":
            cells = min(query_len, ref_len) * (2 * band + 1)
        else:
            cells = query_len * ref_len
        return self.GCUPS[mode] * 1e9 / cells

    def iso_cost_throughput(
        self, kernel_id: int, query_len: int, ref_len: int
    ) -> float:
        """Throughput credit after iso-cost normalisation against F1."""
        raw = self.throughput_alignments_per_sec(kernel_id, query_len, ref_len)
        return raw * iso_cost_factor(P3_2XLARGE_USD_HR)

    @staticmethod
    def align(kernel_id: int, query: Sequence[int], reference: Sequence[int]) -> float:
        """Functional half: the same scores as the CPU references."""
        if kernel_id == 2:
            return classic.gotoh_global(query, reference)
        if kernel_id == 4:
            return classic.gotoh_local(query, reference)
        if kernel_id == 12:
            return classic.banded_gotoh_local(query, reference, band=32)
        raise ValueError(f"GASAL2 baseline does not cover kernel #{kernel_id}")


class CudaSW4Model:
    """CUDASW++ 4.0 — baseline for kernel #15 (protein SW, score only)."""

    #: Effective V100 GCUPS for score-only protein Smith-Waterman.
    GCUPS = 160.0

    def throughput_alignments_per_sec(self, query_len: int, ref_len: int) -> float:
        """Raw alignments per second on the V100."""
        return self.GCUPS * 1e9 / (query_len * ref_len)

    def iso_cost_throughput(self, query_len: int, ref_len: int) -> float:
        """Throughput credit after iso-cost normalisation against F1."""
        raw = self.throughput_alignments_per_sec(query_len, ref_len)
        return raw * iso_cost_factor(P3_2XLARGE_USD_HR)

    @staticmethod
    def align(query: Sequence[int], reference: Sequence[int]) -> float:
        """Functional half: BLOSUM62 local alignment score."""
        from repro.data.blosum import BLOSUM62

        return classic.matrix_local(query, reference, BLOSUM62)
