"""Previous-HLS baseline: the AMD Vitis Genomics Library's Smith-Waterman.

Section 7.5 compares DP-HLS kernel #3 against the Vitis library kernel
(N_PE=32, N_B=32, N_K=1) and measures 32.6 % higher DP-HLS throughput,
attributing the gap to (a) the library's host<->device *streaming*
transfers where DP-HLS uses device memory, and (b) DP-HLS's more
aggressive compiler hints.  The model charges exactly those two costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels import get_kernel
from repro.synth.throughput import cycles_per_alignment
from repro.systolic import engine as _engine


@dataclass(frozen=True)
class VitisGenomicsSWModel:
    """The Vitis Genomics Library Smith-Waterman kernel (2021.2 branch)."""

    #: Streaming interfaces nearly double the per-base transfer cost.
    stream_interface_factor: float = 1.85
    #: Fewer pipelining hints: a small stall fraction on the wavefront loop.
    pipeline_slack: float = 0.03

    n_pe: int = 32
    n_b: int = 32
    n_k: int = 1

    def cycles(self, query_len: int, ref_len: int) -> int:
        """Per-alignment cycles of the library kernel."""
        spec = get_kernel(3)  # Smith-Waterman (local linear)
        base = cycles_per_alignment(spec, self.n_pe, query_len, ref_len)
        extra_stream = int(
            (self.stream_interface_factor - 1.0)
            * _engine.INTERFACE_CYCLES_PER_BASE
            * (query_len + ref_len)
        )
        compute, _load = _compute_cycles(spec, self.n_pe, query_len, ref_len)
        extra_stall = int(self.pipeline_slack * compute)
        return base + extra_stream + extra_stall

    def throughput_alignments_per_sec(
        self, query_len: int, ref_len: int, fmax_mhz: float = 250.0
    ) -> float:
        """Device throughput of the library configuration."""
        cycles = self.cycles(query_len, ref_len)
        return self.n_b * self.n_k * fmax_mhz * 1e6 / cycles


def _compute_cycles(spec, n_pe: int, query_len: int, ref_len: int):
    from repro.systolic.schedule import count_cycles

    return count_cycles(query_len, ref_len, n_pe, 1, spec.banding)
