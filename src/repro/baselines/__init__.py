"""Baseline comparators (Section 6.3).

The paper compares DP-HLS against software libraries on CPU/GPU cloud
instances and against hand-written RTL accelerators.  None of those can
run here, so each baseline is a *model* with two halves:

* **functional** — the algorithms themselves are executed by
  :mod:`repro.reference.classic` (they are our correctness oracles);
* **performance** — documented throughput models: cells-per-second
  constants for the software libraries (with the iso-cost normalisation
  of :mod:`repro.baselines.costmodel`) and cycle models for the RTL
  accelerators, which overlap query loading and matrix initialization
  with compute — exactly the optimization the paper says DP-HLS forgoes
  (Section 7.3) and the mechanism behind its 7.7-16.8 % throughput gap.
"""

from repro.baselines.costmodel import (
    C4_8XLARGE_USD_HR,
    F1_2XLARGE_USD_HR,
    P3_2XLARGE_USD_HR,
    iso_cost_factor,
)
from repro.baselines.cpu import EmbossWaterModel, Minimap2Model, SeqAn3Model
from repro.baselines.gpu import CudaSW4Model, Gasal2Model
from repro.baselines.hls import VitisGenomicsSWModel
from repro.baselines.rtl import BSW, GACT, SQUIGGLEFILTER, RtlBaseline

__all__ = [
    "iso_cost_factor",
    "F1_2XLARGE_USD_HR",
    "C4_8XLARGE_USD_HR",
    "P3_2XLARGE_USD_HR",
    "SeqAn3Model",
    "Minimap2Model",
    "EmbossWaterModel",
    "Gasal2Model",
    "CudaSW4Model",
    "VitisGenomicsSWModel",
    "RtlBaseline",
    "GACT",
    "BSW",
    "SQUIGGLEFILTER",
]
