"""Hand-optimised RTL accelerator models: GACT, BSW, SquiggleFilter.

All three baselines are linear systolic arrays like DP-HLS (Section 6.3),
so their cycle model is the DP-HLS model *minus* the overheads the RTL
designers optimised away: query loading and DP-matrix initialization are
overlapped with computation (Section 7.3 names exactly this as the source
of DP-HLS's 7.7-16.8 % throughput gap).  Resources track the DP-HLS block
closely, except the RTL designs spend no DSPs on traceback-address
pre-computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.spec import KernelSpec
from repro.kernels import get_kernel
from repro.synth.resources import ResourceEstimate, estimate_resources
from repro.synth.throughput import cycles_per_alignment


@dataclass(frozen=True)
class RtlBaseline:
    """One published RTL accelerator and the DP-HLS kernel it matches."""

    name: str
    kernel_id: int
    #: fraction of the (init + load) overhead the RTL overlaps with compute
    overlap_fraction: float = 1.0
    #: RTL logic relative to the DP-HLS block (hand RTL is slightly leaner)
    lut_factor: float = 0.95
    ff_factor: float = 1.0

    def spec(self) -> KernelSpec:
        """The DP-HLS kernel this baseline is compared against."""
        return get_kernel(self.kernel_id)

    def cycles(
        self,
        n_pe: int,
        query_len: int,
        ref_len: int,
        ii: int = 1,
        dp_hls_cycles: Optional[int] = None,
    ) -> int:
        """Per-alignment cycles of the RTL design.

        ``dp_hls_cycles`` may be passed to keep both sides of a comparison
        on the identical workload assumptions.
        """
        spec = self.spec()
        total = dp_hls_cycles
        if total is None:
            total = cycles_per_alignment(spec, n_pe, query_len, ref_len, ii=ii)
        overlapped = (ref_len + 1) + (query_len + 1) + query_len  # init + load
        saved = int(self.overlap_fraction * overlapped)
        return max(1, total - saved)

    def resources(
        self, n_pe: int, max_query_len: int = 256, max_ref_len: int = 256
    ) -> ResourceEstimate:
        """Estimated RTL block resources (same memory geometry as DP-HLS)."""
        block = estimate_resources(
            self.spec(), n_pe, max_query_len=max_query_len, max_ref_len=max_ref_len
        )
        return ResourceEstimate(
            luts=block.luts * self.lut_factor,
            ffs=block.ffs * self.ff_factor,
            bram36=block.bram36,
            dsps=max(0.0, block.dsps - 2 * 1.0),  # no TB-address DSPs
            n_pe=n_pe,
        )


# The overlap fractions are calibrated so the modelled margins match the
# published ones (7.7 % / 16.8 % / 8.16 %); the *mechanism* — hiding init
# and query loading behind compute — is the structural claim being
# reproduced.  BSW overlaps nearly all of it (with no traceback to
# amortise the overhead, Section 7.3 notes its gap is largest).

#: Darwin's GACT array [11] vs kernel #2 (Global Affine).
GACT = RtlBaseline(name="GACT", kernel_id=2, overlap_fraction=0.55)

#: Darwin-WGA's Banded Smith-Waterman array [12] vs kernel #12.
BSW = RtlBaseline(name="BSW", kernel_id=12, overlap_fraction=0.82)

#: SquiggleFilter's sDTW array [57] (match bonus removed) vs kernel #14.
SQUIGGLEFILTER = RtlBaseline(name="SquiggleFilter", kernel_id=14, overlap_fraction=0.54)
