"""Iso-cost normalisation across AWS instance types (Section 6.3).

The paper compares throughput per dollar: baseline throughputs measured on
CPU/GPU instances are scaled by the price ratio to the F1 FPGA instance
before computing speedups.
"""

from __future__ import annotations

#: AWS on-demand prices the paper quotes (USD per hour).
F1_2XLARGE_USD_HR = 1.650   # FPGA (DP-HLS)
C4_8XLARGE_USD_HR = 1.591   # 36-core CPU (SeqAn3 / Minimap2 / EMBOSS)
P3_2XLARGE_USD_HR = 3.060   # NVIDIA V100 GPU (GASAL2 / CUDASW++)


def iso_cost_factor(baseline_usd_hr: float, fpga_usd_hr: float = F1_2XLARGE_USD_HR) -> float:
    """Multiplier applied to a baseline's raw throughput for iso-cost compare.

    A baseline running on hardware twice as expensive gets half credit.
    """
    if baseline_usd_hr <= 0 or fpga_usd_hr <= 0:
        raise ValueError("instance prices must be positive")
    return fpga_usd_hr / baseline_usd_hr
