"""Greedy overlap-layout-consensus assembly on the overlap kernel (#6).

The CANU/Flye shape (Table 1's application for kernel #6): all read pairs
are scored with overlap alignment (suffix of one read against the prefix
of another), and the highest-scoring overlaps are greedily merged until
no overlap clears the threshold.  Error-free reads reconstruct their
source region exactly (a tested invariant); noisy reads yield contigs of
approximately the right length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api.stage import Stage
from repro.kernels import get_kernel
from repro.systolic import align


@dataclass(frozen=True)
class Overlap:
    """A suffix(a) -> prefix(b) overlap candidate."""

    a: int
    b: int
    score: float
    a_start: int   # offset in read a where the overlap begins
    b_end: int     # offset in read b where the overlap ends


def best_overlap(
    read_a: Sequence[int], read_b: Sequence[int], n_pe: int = 16
) -> Optional[Tuple[float, int, int]]:
    """Best suffix(a)/prefix(b) overlap via kernel #6.

    Returns ``(score, a_start, b_end)`` or ``None`` when the optimal
    overlap path is not a suffix->prefix join (e.g. b contained in a).
    """
    kernel = get_kernel(6)
    result = align(kernel, read_a, read_b, n_pe=n_pe)
    # A suffix->prefix join: the path must start at a's last row and end
    # at b's first column.
    start_i, _start_j = result.start
    end_i, end_j = result.end
    if start_i != len(read_a) or end_j != 0:
        return None
    return result.score, end_i, result.start[1]


def _merge(read_a, read_b, b_end: int):
    """Concatenate a with b's unaligned tail."""
    return tuple(read_a) + tuple(read_b[b_end:])


def greedy_assemble(
    reads: Sequence[Sequence[int]],
    min_overlap_score: float = 20.0,
    n_pe: int = 16,
) -> List[Tuple[int, ...]]:
    """Assemble reads into contigs by repeated best-overlap merging."""
    if not reads:
        return []
    contigs: List[Optional[Tuple[int, ...]]] = [tuple(r) for r in reads]
    while True:
        best: Optional[Overlap] = None
        for a, read_a in enumerate(contigs):
            if read_a is None:
                continue
            for b, read_b in enumerate(contigs):
                if a == b or read_b is None:
                    continue
                found = best_overlap(read_a, read_b, n_pe=n_pe)
                if found is None:
                    continue
                score, a_start, b_end = found
                if score < min_overlap_score:
                    continue
                if best is None or score > best.score:
                    best = Overlap(a, b, score, a_start, b_end)
        if best is None:
            break
        contigs[best.a] = _merge(contigs[best.a], contigs[best.b], best.b_end)
        contigs[best.b] = None
    return [c for c in contigs if c is not None]


class AssemblerStage(Stage):
    """Greedy assembly as a pipeline :class:`~repro.api.Stage`.

    Assembly is inherently all-to-all, so this stage *accumulates* the
    reads it sees and emits the assembled contigs as a single chunk at
    drain time (:meth:`finish`) — the Stage shape for reductions.
    """

    def __init__(self, min_overlap_score: float = 20.0, n_pe: int = 16) -> None:
        self.min_overlap_score = min_overlap_score
        self.n_pe = n_pe
        self._reads: List[Tuple[int, ...]] = []

    @property
    def name(self) -> str:
        """Metric prefix component (``pipeline.assemble.*``)."""
        return "assemble"

    def process(self, chunk):
        """Accumulate one chunk of reads; nothing flows until drain."""
        self._reads.extend(tuple(read) for read in chunk)
        return ()

    def finish(self):
        """Assemble everything accumulated and emit the contig list."""
        return [greedy_assemble(
            self._reads,
            min_overlap_score=self.min_overlap_score,
            n_pe=self.n_pe,
        )]
