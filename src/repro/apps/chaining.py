"""Anchor chaining — the 1-D DP between seeding and extension.

Minimap2 (the source of kernels #5/#12/#13) sits a chaining DP between
k-mer seeding and DP extension: co-linear seed hits ("anchors") are
chained by a 1-D recurrence that rewards covered bases and penalises
diagonal drift, and the best chain selects the region the 2-D kernel then
aligns.  This is the same DP that dedicated accelerators target (the
paper cites Liyanage et al.'s chaining accelerator), implemented here as
the host-side companion of :class:`repro.apps.read_mapper.ReadMapper`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api.stage import Stage


@dataclass(frozen=True)
class Anchor:
    """One exact seed match: read[read_pos : read_pos+length] ==
    reference[ref_pos : ref_pos+length]."""

    read_pos: int
    ref_pos: int
    length: int

    @property
    def diagonal(self) -> int:
        """The alignment diagonal this anchor supports."""
        return self.ref_pos - self.read_pos


@dataclass(frozen=True)
class Chain:
    """A scored co-linear chain of anchors."""

    anchors: Tuple[Anchor, ...]
    score: float

    @property
    def read_span(self) -> Tuple[int, int]:
        """[start, end) interval covered on the read."""
        first, last = self.anchors[0], self.anchors[-1]
        return first.read_pos, last.read_pos + last.length

    @property
    def ref_span(self) -> Tuple[int, int]:
        """[start, end) interval covered on the reference."""
        first, last = self.anchors[0], self.anchors[-1]
        return first.ref_pos, last.ref_pos + last.length


def chain_anchors(
    anchors: Sequence[Anchor],
    max_gap: int = 128,
    gap_weight: float = 0.5,
) -> Optional[Chain]:
    """Best chain under the minimap2-style recurrence.

    ``f(i) = length(i) + max(0, max_{j<i} f(j) - cost(j, i))`` where a
    predecessor must precede the anchor on both axes within ``max_gap``,
    and ``cost`` charges ``gap_weight`` per base of diagonal drift plus a
    small distance term.
    """
    if not anchors:
        return None
    if max_gap < 1:
        raise ValueError(f"max_gap must be >= 1, got {max_gap}")
    order = sorted(anchors, key=lambda a: (a.read_pos, a.ref_pos))
    n = len(order)
    best_score = [float(a.length) for a in order]
    parent: List[Optional[int]] = [None] * n
    for i in range(n):
        ai = order[i]
        for j in range(i - 1, -1, -1):
            aj = order[j]
            dx = ai.read_pos - (aj.read_pos + aj.length)
            dy = ai.ref_pos - (aj.ref_pos + aj.length)
            if dx < 0 or dy < 0:
                continue  # overlapping or out of order
            if dx > max_gap or dy > max_gap:
                continue
            drift = abs(ai.diagonal - aj.diagonal)
            cost = gap_weight * drift + 0.01 * min(dx, dy)
            candidate = best_score[j] + ai.length - cost
            if candidate > best_score[i]:
                best_score[i] = candidate
                parent[i] = j
    end = max(range(n), key=lambda i: best_score[i])
    chain: List[Anchor] = []
    cursor: Optional[int] = end
    while cursor is not None:
        chain.append(order[cursor])
        cursor = parent[cursor]
    chain.reverse()
    return Chain(anchors=tuple(chain), score=best_score[end])


def anchors_from_index(
    read: Sequence[int],
    index,
    k: int,
) -> List[Anchor]:
    """Collect anchors from a {k-mer: positions} index (mapper helper)."""
    anchors: List[Anchor] = []
    for offset in range(0, len(read) - k + 1):
        for pos in index.get(tuple(read[offset:offset + k]), ()):
            anchors.append(Anchor(read_pos=offset, ref_pos=pos, length=k))
    return anchors


class ChainStage(Stage):
    """Anchor chaining as a pipeline :class:`~repro.api.Stage`.

    Consumes chunks of ``(name, read)`` records, seeds each read against
    the given ``{k-mer: positions}`` index, and emits one chunk of
    ``(name, Chain | None)`` per input chunk.
    """

    def __init__(self, index, k: int, max_gap: int = 128) -> None:
        self.index = index
        self.k = k
        self.max_gap = max_gap

    @property
    def name(self) -> str:
        """Metric prefix component (``pipeline.chain.*``)."""
        return "chain"

    def process(self, chunk):
        """Chain the seed anchors of every read in one chunk."""
        out = []
        for read_name, read in chunk:
            anchors = anchors_from_index(read, self.index, self.k)
            chain = chain_anchors(anchors, max_gap=self.max_gap)
            out.append((read_name, chain))
        return [out]
