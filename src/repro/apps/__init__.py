"""Applications built on top of the DP-HLS kernels.

Table 1 motivates each kernel with a bioinformatics application; this
package builds three of those applications end-to-end from the library's
public API, demonstrating how a deployed DP-HLS device would actually be
driven:

* :mod:`repro.apps.msa` — progressive multiple sequence alignment
  (CLUSTALW-style) on the profile-alignment kernel (#8);
* :mod:`repro.apps.read_mapper` — seed-and-extend short-read mapping
  (BWA-MEM-style) on the semi-global kernel (#7);
* :mod:`repro.apps.assembler` — greedy overlap-layout-consensus assembly
  (CANU-style) on the overlap kernel (#6).
"""

from repro.apps.assembler import greedy_assemble
from repro.apps.msa import progressive_msa
from repro.apps.read_mapper import ReadMapper

__all__ = ["progressive_msa", "ReadMapper", "greedy_assemble"]
