"""Seed-and-extend short-read mapping on the semi-global kernel (#7).

The BWA-MEM shape (Table 1's application for kernel #7): exact k-mer
seeds vote for genome diagonals, the best candidate window is verified by
a semi-global alignment of the read against that window (on both
strands), and hits below a score threshold are rejected.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.stage import Stage
from repro.data.genome import reverse_complement
from repro.kernels import get_kernel
from repro.systolic import align


@dataclass(frozen=True)
class MappedRead:
    """One mapping decision."""

    position: int          # 0-based genome offset of the alignment window start
    strand: str            # '+' or '-'
    score: float
    cigar: str
    window_offset: int     # alignment start within the window


class ReadMapper:
    """A k-mer-indexed genome plus the device kernel that verifies hits."""

    def __init__(
        self,
        genome: Sequence[int],
        k: int = 12,
        window_padding: int = 16,
        min_score_fraction: float = 0.5,
        n_pe: int = 16,
    ) -> None:
        if k < 4:
            raise ValueError(f"k must be >= 4, got {k}")
        if len(genome) < k:
            raise ValueError("genome shorter than k")
        self.genome = tuple(genome)
        self.k = k
        self.window_padding = window_padding
        self.min_score_fraction = min_score_fraction
        self.n_pe = n_pe
        self._kernel = get_kernel(7)  # semi-global: read end-to-end
        self._index: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
        for pos in range(len(genome) - k + 1):
            self._index[self.genome[pos:pos + k]].append(pos)

    # ------------------------------------------------------------------
    def _seed_votes(self, read: Sequence[int]) -> Counter:
        """Diagonal votes: genome_pos - read_pos for every seed hit."""
        votes: Counter = Counter()
        for offset in range(0, len(read) - self.k + 1):
            for pos in self._index.get(tuple(read[offset:offset + self.k]), ()):
                votes[pos - offset] += 1
        return votes

    def chain(self, read: Sequence[int]):
        """Best seed chain for a read (the minimap2-style pre-filter)."""
        from repro.apps.chaining import anchors_from_index, chain_anchors

        anchors = anchors_from_index(read, self._index, self.k)
        return chain_anchors(anchors)

    def _verify(self, read: Sequence[int], diagonal: int) -> Optional[MappedRead]:
        start = max(0, diagonal - self.window_padding)
        end = min(len(self.genome), diagonal + len(read) + self.window_padding)
        window = self.genome[start:end]
        if len(window) < len(read):
            return None
        result = align(self._kernel, read, window, n_pe=self.n_pe)
        return MappedRead(
            position=start,
            strand="+",
            score=result.score,
            cigar=result.cigar,
            window_offset=result.end[1],
        )

    def _map_strand(self, read: Sequence[int]) -> Optional[MappedRead]:
        votes = self._seed_votes(read)
        if not votes:
            return None
        best: Optional[MappedRead] = None
        for diagonal, _count in votes.most_common(3):
            hit = self._verify(read, diagonal)
            if hit and (best is None or hit.score > best.score):
                best = hit
        return best

    def map(self, read: Sequence[int]) -> Optional[MappedRead]:
        """Map one read (both strands); None when no confident placement."""
        if len(read) < self.k:
            raise ValueError(
                f"read of length {len(read)} shorter than k={self.k}"
            )
        forward = self._map_strand(read)
        rc = self._map_strand(reverse_complement(tuple(read)))
        best = forward
        if rc is not None and (best is None or rc.score > best.score):
            best = MappedRead(
                position=rc.position, strand="-", score=rc.score,
                cigar=rc.cigar, window_offset=rc.window_offset,
            )
        threshold = (
            self.min_score_fraction
            * self._kernel.default_params.match
            * len(read)
        )
        if best is None or best.score < threshold:
            return None
        return best

    def mapped_start(self, hit: MappedRead) -> int:
        """Genome coordinate where the read alignment begins."""
        return hit.position + hit.window_offset


class ReadMapperStage(Stage):
    """:class:`ReadMapper` as a pipeline :class:`~repro.api.Stage`.

    Consumes chunks of ``(name, read)`` records and emits one chunk of
    ``(name, read, MappedRead | None)`` decisions per input chunk, so a
    flowcell streams through in bounded memory.
    """

    def __init__(self, mapper: ReadMapper) -> None:
        self.mapper = mapper

    @property
    def name(self) -> str:
        """Metric prefix component (``pipeline.map.*``)."""
        return "map"

    def process(self, chunk):
        """Map every read of one chunk; unmappable reads carry ``None``."""
        out = []
        for read_name, read in chunk:
            hit = self.mapper.map(read) if len(read) >= self.mapper.k else None
            out.append((read_name, read, hit))
        return [out]
