"""Progressive multiple sequence alignment on the profile kernel (#8).

The CLUSTALW recipe (Table 1's application for profile alignment):

1. pairwise distances from global alignment scores (kernel #1),
2. a UPGMA guide tree over the distance matrix,
3. progressive merging up the tree — each merge aligns the two groups'
   frequency profiles with the profile-alignment kernel (#8) and threads
   the resulting gap pattern back into every member sequence.

The result is a proper MSA: equal-length gapped rows whose ungapped
content reproduces the inputs exactly (a tested invariant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.result import Move
from repro.kernels import get_kernel
from repro.systolic import align

#: Gap code inside MSA rows (sequences use 0..3).
GAP = -1


@dataclass
class MsaResult:
    """A finished multiple alignment."""

    rows: List[List[int]]          # gapped sequences (GAP = -1)
    order: List[int]               # input index of each row
    guide_tree: object             # nested tuples of input indices

    @property
    def n_columns(self) -> int:
        """Alignment length."""
        return len(self.rows[0]) if self.rows else 0

    def identity(self) -> float:
        """Mean pairwise identity over aligned columns."""
        if len(self.rows) < 2 or self.n_columns == 0:
            return 1.0
        matches = comparisons = 0
        arr = np.asarray(self.rows)
        for a in range(len(self.rows)):
            for b in range(a + 1, len(self.rows)):
                both = (arr[a] != GAP) & (arr[b] != GAP)
                comparisons += int(both.sum())
                matches += int((arr[a][both] == arr[b][both]).sum())
        return matches / comparisons if comparisons else 1.0

    def pretty(self, letters: str = "ACGT") -> str:
        """Render rows with '-' gaps, in input order."""
        by_input = sorted(zip(self.order, self.rows))
        return "\n".join(
            "".join("-" if v == GAP else letters[v] for v in row)
            for _idx, row in by_input
        )


def pairwise_distance_matrix(sequences: Sequence[Sequence[int]]) -> np.ndarray:
    """Distances from kernel #1 scores (higher score -> smaller distance)."""
    nw = get_kernel(1)
    n = len(sequences)
    scores = np.zeros((n, n))
    for a in range(n):
        for b in range(a + 1, n):
            result = align(nw, sequences[a], sequences[b], n_pe=8)
            scores[a, b] = scores[b, a] = result.score
    # Normalise into distances: best possible score is match * min length.
    match = nw.default_params.match
    dist = np.zeros((n, n))
    for a in range(n):
        for b in range(a + 1, n):
            best = match * min(len(sequences[a]), len(sequences[b]))
            dist[a, b] = dist[b, a] = max(0.0, 1.0 - scores[a, b] / best)
    return dist


def upgma(distances: np.ndarray):
    """UPGMA clustering; returns a nested-tuple guide tree of leaf indices."""
    n = len(distances)
    if n == 0:
        raise ValueError("cannot build a guide tree over zero sequences")
    active = {i: (i, 1) for i in range(n)}  # id -> (tree, size)
    dist = {
        (a, b): float(distances[a, b])
        for a in range(n) for b in range(a + 1, n)
    }
    next_id = n
    while len(active) > 1:
        (a, b), _d = min(dist.items(), key=lambda kv: (kv[1], kv[0]))
        tree_a, size_a = active.pop(a)
        tree_b, size_b = active.pop(b)
        merged = (tree_a, tree_b)
        for other in list(active):
            da = dist.pop(tuple(sorted((a, other))))
            db = dist.pop(tuple(sorted((b, other))))
            dist[tuple(sorted((next_id, other)))] = (
                (da * size_a + db * size_b) / (size_a + size_b)
            )
        dist.pop((a, b), None)
        active[next_id] = (merged, size_a + size_b)
        next_id += 1
    (_id, (tree, _size)), = active.items()
    return tree


def _group_profile(rows: List[List[int]]) -> Tuple[Tuple[float, ...], ...]:
    """Column {A,C,G,T,gap} frequencies of a gapped group."""
    arr = np.asarray(rows)
    n_rows, n_cols = arr.shape
    columns = []
    for col in range(n_cols):
        counts = np.zeros(5)
        for v in arr[:, col]:
            counts[4 if v == GAP else int(v)] += 1
        columns.append(tuple(counts / n_rows))
    return tuple(columns)


def _apply_gaps(rows: List[List[int]], keep_mask: List[bool]) -> List[List[int]]:
    """Insert GAP columns wherever ``keep_mask`` is False."""
    out = []
    for row in rows:
        it = iter(row)
        out.append([next(it) if keep else GAP for keep in keep_mask])
    return out


def _merge_groups(
    rows_a: List[List[int]], rows_b: List[List[int]], n_pe: int
) -> List[List[int]]:
    """Align two groups' profiles (#8) and thread the gaps into members."""
    profile_kernel = get_kernel(8)
    pa = _group_profile(rows_a)
    pb = _group_profile(rows_b)
    result = align(profile_kernel, pa, pb, n_pe=n_pe)
    mask_a: List[bool] = []
    mask_b: List[bool] = []
    for move in result.alignment.moves:
        if move is Move.MATCH:
            mask_a.append(True)
            mask_b.append(True)
        elif move is Move.DEL:     # consumes a column of group A only
            mask_a.append(True)
            mask_b.append(False)
        elif move is Move.INS:     # consumes a column of group B only
            mask_a.append(False)
            mask_b.append(True)
    return _apply_gaps(rows_a, mask_a) + _apply_gaps(rows_b, mask_b)


def progressive_msa(
    sequences: Sequence[Sequence[int]], n_pe: int = 8
) -> MsaResult:
    """Align ``sequences`` progressively along a UPGMA guide tree."""
    if not sequences:
        raise ValueError("need at least one sequence")
    if len(sequences) == 1:
        return MsaResult(rows=[list(sequences[0])], order=[0], guide_tree=0)
    tree = upgma(pairwise_distance_matrix(sequences))

    def build(node) -> Tuple[List[List[int]], List[int]]:
        if isinstance(node, int):
            return [list(sequences[node])], [node]
        rows_a, order_a = build(node[0])
        rows_b, order_b = build(node[1])
        return _merge_groups(rows_a, rows_b, n_pe), order_a + order_b

    rows, order = build(tree)
    return MsaResult(rows=rows, order=order, guide_tree=tree)
