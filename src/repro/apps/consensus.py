"""Consensus polishing — the "C" of overlap-layout-consensus assembly.

Noisy long reads covering the same locus vote on every position: the
reads are multiple-aligned (progressive MSA over kernels #1/#8) and each
alignment column takes its majority symbol, with gap-majority columns
dropped.  With enough coverage the consensus recovers the true sequence
even when every individual read is error-ridden — the property long-read
assemblers like CANU (Table 1, kernel #6) depend on.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.apps.msa import GAP, progressive_msa


def consensus(
    reads: Sequence[Sequence[int]], n_pe: int = 8
) -> Tuple[int, ...]:
    """Majority-vote consensus of reads covering the same locus.

    Ties at a column go to the smallest symbol code (deterministic); a
    column where gaps hold the strict majority is dropped entirely.
    """
    if not reads:
        raise ValueError("consensus needs at least one read")
    if len(reads) == 1:
        return tuple(reads[0])
    msa = progressive_msa(list(reads), n_pe=n_pe)
    out: List[int] = []
    n_rows = len(msa.rows)
    for col in range(msa.n_columns):
        counts = Counter(row[col] for row in msa.rows)
        gaps = counts.pop(GAP, 0)
        if not counts or gaps > n_rows / 2:
            continue
        best = max(sorted(counts), key=lambda sym: counts[sym])
        out.append(best)
    return tuple(out)


def polish_contig(
    contig: Sequence[int],
    reads: Sequence[Sequence[int]],
    n_pe: int = 8,
) -> Tuple[int, ...]:
    """Polish an assembled contig with its supporting reads.

    The contig itself participates in the vote (it is one more observation
    of the locus), which is how assemblers seed the consensus.
    """
    return consensus([tuple(contig)] + [tuple(r) for r in reads], n_pe=n_pe)
