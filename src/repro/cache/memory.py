"""The in-memory cache tier: a bytes-bounded, thread-safe LRU.

Keys are fingerprint strings, values are opaque Python objects whose
*charged* size the caller supplies (the facade charges the encoded-entry
byte length, so the budget tracks what the disk tier would hold, not
Python object overhead).  Eviction is strict LRU over both hits and
inserts: a :meth:`MemoryCache.get` refreshes recency, and a
:meth:`MemoryCache.put` that pushes the total over ``max_bytes`` evicts
from the cold end until the budget holds again.

Every mutation is accounted — hits, misses, insertions, evictions,
oversize rejections and the live byte total — so the facade's counters
and the ``repro cache stats`` command read real numbers rather than
estimates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class MemoryStats:
    """Counter snapshot of one :class:`MemoryCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    oversize_rejections: int = 0
    entries: int = 0
    bytes_used: int = 0
    max_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (the ``cache stats`` wire form)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "oversize_rejections": self.oversize_rejections,
            "entries": self.entries,
            "bytes_used": self.bytes_used,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
        }


class MemoryCache:
    """Bytes-bounded LRU mapping fingerprint keys to cached values."""

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._oversize = 0

    def get(self, key: str) -> Optional[Any]:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: str, value: Any, nbytes: int) -> bool:
        """Insert ``value`` charged at ``nbytes``; evict LRU as needed.

        An entry larger than the whole budget is rejected (and counted)
        rather than flushing the entire cache for one unstorable value.
        Re-putting an existing key replaces its value and charge and
        refreshes recency.  Returns whether the entry was stored.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            if nbytes > self.max_bytes:
                self._oversize += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            self._puts += 1
            while self._bytes > self.max_bytes:
                _evicted_key, (_value, charged) = self._entries.popitem(
                    last=False
                )
                self._bytes -= charged
                self._evictions += 1
            return True

    def delete(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> None:
        """Drop every entry (counters persist)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def keys(self) -> List[str]:
        """Keys in eviction order: coldest first, hottest last."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        """Number of live entries."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership check *without* touching recency or counters."""
        with self._lock:
            return key in self._entries

    @property
    def bytes_used(self) -> int:
        """Total charged bytes of the live entries."""
        with self._lock:
            return self._bytes

    def stats(self) -> MemoryStats:
        """Counter snapshot (consistent under the cache lock)."""
        with self._lock:
            return MemoryStats(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                oversize_rejections=self._oversize,
                entries=len(self._entries),
                bytes_used=self._bytes,
                max_bytes=self.max_bytes,
            )
