"""Single-flight deduplication: concurrent identical work runs once.

When several serving threads miss the cache on the same fingerprint at
the same time, racing the engine N times wastes exactly the work the
cache exists to save.  :class:`SingleFlight` coalesces them: the first
caller to open a flight for a key becomes the *leader* and runs the
computation; every concurrent caller with the same key becomes a
*follower* that blocks until the leader finishes and then shares the
leader's result (or re-raises the leader's exception).

Two API levels:

* :meth:`SingleFlight.do` — the closure form: lead-or-follow around one
  ``fn()`` call;
* :meth:`SingleFlight.begin` / :meth:`SingleFlight.finish` /
  :meth:`SingleFlight.fail` / :meth:`SingleFlight.wait` — the split form
  the batch runtime uses, where one thread leads *many* flights, runs
  them through the engine as a single batch, and settles each flight
  individually.

The flight table only holds keys with a computation in progress —
results are never retained here (that is the cache tiers' job), so a
later call with the same key starts a fresh flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple


class Flight:
    """One in-progress computation and its rendezvous point."""

    __slots__ = ("key", "done", "value", "error", "followers")

    def __init__(self, key: str) -> None:
        self.key = key
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


@dataclass
class SingleFlightStats:
    """Counter snapshot of one :class:`SingleFlight`."""

    flights: int = 0
    coalesced: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-safe snapshot."""
        return {"flights": self.flights, "coalesced": self.coalesced}


class SingleFlight:
    """Per-key coalescing of concurrent identical computations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[str, Flight] = {}
        self._started = 0
        self._coalesced = 0

    # -- split API (the batch runtime's form) --------------------------

    def begin(self, key: str) -> Tuple[Flight, bool]:
        """Open or join the flight for ``key``.

        Returns ``(flight, leader)``.  A leader *must* eventually call
        :meth:`finish` or :meth:`fail` on the flight; a follower calls
        :meth:`wait`.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                self._coalesced += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            self._started += 1
            return flight, True

    def finish(self, flight: Flight, value: Any) -> None:
        """Settle a led flight with its value and release the followers."""
        with self._lock:
            self._flights.pop(flight.key, None)
        flight.value = value
        flight.done.set()

    def fail(self, flight: Flight, error: BaseException) -> None:
        """Settle a led flight with an exception every waiter re-raises."""
        with self._lock:
            self._flights.pop(flight.key, None)
        flight.error = error
        flight.done.set()

    def wait(self, flight: Flight, timeout: Optional[float] = None) -> Any:
        """Block until a flight settles; return or re-raise its outcome."""
        if not flight.done.wait(timeout):
            raise TimeoutError(
                f"flight {flight.key!r} unsettled after {timeout}s"
            )
        if flight.error is not None:
            raise flight.error
        return flight.value

    # -- closure API ---------------------------------------------------

    def do(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent ``key``; followers share the result.

        Returns ``(value, coalesced)`` where ``coalesced`` tells whether
        this caller waited on another thread's computation instead of
        running ``fn`` itself.  If the leader's ``fn`` raises, every
        caller of that flight sees the same exception.
        """
        flight, leader = self.begin(key)
        if not leader:
            return self.wait(flight), True
        try:
            value = fn()
        except BaseException as exc:
            self.fail(flight, exc)
            raise
        self.finish(flight, value)
        return value, False

    # -- introspection -------------------------------------------------

    def in_flight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._flights)

    def stats(self) -> SingleFlightStats:
        """Counter snapshot."""
        with self._lock:
            return SingleFlightStats(
                flights=self._started, coalesced=self._coalesced
            )
