"""Canonical content-addressed fingerprints for alignment work.

A fingerprint is a SHA-256 hex digest over a *canonical encoding* of
everything the engine's output depends on: the kernel's spec surface
(id, name, score type and overflow mode, layer count, objective,
banding, traceback rules), the scoring parameters, the launch sizing
that shows up in results (``n_pe``/``ii`` move cycle counts,
``max_query_len``/``max_ref_len`` bound admission) and the raw sequence
symbols.  Two processes — today or after a restart — computing the
fingerprint of the same logical request always produce the same hex
string; the determinism test pins that across a subprocess boundary.

Stability contract
------------------
The fingerprint covers the declared *spec surface*, not the Python code
behind it: editing a ``pe_func`` body without changing any declared
field produces the same key.  :data:`FINGERPRINT_VERSION` exists for
exactly that case — bump it whenever engine semantics change so every
previously persisted entry is invalidated at once.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Sequence

import numpy as np

#: Bumped whenever engine semantics change in a way the spec surface
#: cannot see; invalidates every previously persisted cache entry.
FINGERPRINT_VERSION = 1


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-safe canonical form.

    Handles the types that appear in kernel specs and scoring params:
    dataclasses (type name + field map), enums (``Type.NAME``), numpy
    arrays and scalars, tuples/lists, dicts and plain scalars.  The
    mapping is injective over those types, so distinct params never
    collide onto one canonical form.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; float(int) stays distinct
        # from the int because of the "f:" tag.  The float() call strips
        # np.float64 (a float subclass) down to the plain-float repr.
        return f"f:{float(value)!r}"
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": str(value.dtype), "data": value.tolist()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return canonical(float(value))
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical(val) for key, val in sorted(value.items())}
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting"
    )


def canonical_json(value: Any) -> str:
    """Deterministic compact JSON of :func:`canonical` (sorted keys)."""
    return json.dumps(
        canonical(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def sequence_blob(sequence: Sequence[Any]) -> str:
    """Canonical text of one symbol sequence.

    Integer symbol codes (the engine's native alphabet representation)
    encode as a comma-joined decimal run; anything else falls back to
    the canonical JSON of the symbol list, so struct-symbol kernels
    still key deterministically.
    """
    symbols = list(sequence)
    if all(isinstance(s, (int, np.integer)) and not isinstance(s, bool)
           for s in symbols):
        return ",".join(str(int(s)) for s in symbols)
    return canonical_json(symbols)


def runtime_fingerprint(
    spec: Any,
    params: Any,
    n_pe: int,
    ii: int,
    max_query_len: int,
    max_ref_len: int,
) -> str:
    """Fingerprint of a deployed runtime configuration.

    Covers every declared input the engine's output depends on — the
    spec surface, the scoring parameters and the launch sizing — but
    not the sequences; :func:`pair_fingerprint` folds those in per
    request.
    """
    traceback = None
    if spec.traceback is not None:
        traceback = {
            "end": canonical(spec.traceback.end),
            "initial_state": spec.traceback.initial_state,
        }
    surface = {
        "version": FINGERPRINT_VERSION,
        "kernel_id": spec.kernel_id,
        "name": spec.name,
        "score_type": canonical(spec.score_type),
        "n_layers": spec.n_layers,
        "objective": canonical(spec.objective),
        "start_rule": canonical(spec.start_rule),
        "traceback": traceback,
        "tb_ptr_bits": spec.tb_ptr_bits,
        "score_layer": spec.score_layer,
        "banding": spec.banding,
        "params": canonical(params),
        "n_pe": n_pe,
        "ii": ii,
        "max_query_len": max_query_len,
        "max_ref_len": max_ref_len,
    }
    return fingerprint(surface)


def pair_fingerprint(
    runtime_key: str,
    query: Sequence[Any],
    reference: Sequence[Any],
) -> str:
    """Content-addressed key of one (runtime, query, reference) request.

    ``runtime_key`` is a :func:`runtime_fingerprint`; the sequences are
    folded in through :func:`sequence_blob`, with an explicit separator
    so (query="AB", ref="C") never collides with (query="A", ref="BC").
    """
    blob = hashlib.sha256()
    blob.update(runtime_key.encode("ascii"))
    blob.update(b"|q|")
    blob.update(sequence_blob(query).encode("utf-8"))
    blob.update(b"|r|")
    blob.update(sequence_blob(reference).encode("utf-8"))
    return blob.hexdigest()
