"""The cache stack and its opt-in decorator around the device runtime.

:class:`CacheStack` layers the tiers: an in-memory LRU
(:mod:`repro.cache.memory`) in front of an optional persistent shard
store (:mod:`repro.cache.disk`), with single-flight deduplication
(:mod:`repro.cache.singleflight`) guarding the compute path.  A lookup
walks memory → disk → compute; a disk hit is promoted into memory, and
a computed result is written through to both tiers.  Every hit, miss,
promotion, eviction and coalesce reports through the current
:mod:`repro.obs` recorder (``cache.*`` counters) in addition to the
stack's own stats.

:class:`CachedRuntime` is the decorator that makes the stack invisible
to callers: it wraps a :class:`~repro.host.runtime.DeviceRuntime`,
exposes the same ``run`` batch API, and serves each pair from the
tiers when possible — only the misses reach the wrapped runtime (as
one *deduped* batch, so host-side parallelism still applies and the
compiled backend's whole-batch lockstep sweep covers every distinct
miss in one call), and concurrent identical pairs across threads
coalesce onto one engine execution.
Its outcome is a :class:`CachedBatchOutcome` carrying the per-pair
fingerprints and hit flags the serving layer forwards to clients.

Cached values cross the disk boundary through a deterministic JSON
codec (:func:`encode_result` / :func:`decode_result`) covering score,
cells, alignment path and cycle report — everything a served response
is built from (the optional debug ``matrix`` is deliberately dropped).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cache.disk import DiskStore
from repro.cache.fingerprint import pair_fingerprint, runtime_fingerprint
from repro.cache.memory import MemoryCache
from repro.cache.singleflight import SingleFlight
from repro.core.result import Alignment, AlignmentResult, CycleReport, Move
from repro.host.runtime import (
    BatchOutcome,
    DeviceRuntime,
    RunOptions,
    resolve_run_options,
)
from repro.obs.recorder import get_recorder
from repro.parallel import WorkError

#: Codec revision; bumped on incompatible entry-encoding changes.
CODEC_VERSION = 1


def encode_result(result: AlignmentResult) -> bytes:
    """Serialize an :class:`AlignmentResult` to deterministic JSON bytes.

    The encoding is content-stable (sorted keys, compact separators) so
    identical results always persist as identical bytes — the property
    the warm-restart byte-identity test leans on.
    """
    alignment = None
    if result.alignment is not None:
        alignment = {
            "moves": "".join(m.value for m in result.alignment.moves),
            "query_start": result.alignment.query_start,
            "query_end": result.alignment.query_end,
            "ref_start": result.alignment.ref_start,
            "ref_end": result.alignment.ref_end,
        }
    cycles = None
    if result.cycles is not None:
        cycles = {
            "init_cycles": result.cycles.init_cycles,
            "load_cycles": result.cycles.load_cycles,
            "compute_cycles": result.cycles.compute_cycles,
            "reduction_cycles": result.cycles.reduction_cycles,
            "traceback_cycles": result.cycles.traceback_cycles,
            "interface_cycles": result.cycles.interface_cycles,
            "wavefronts": result.cycles.wavefronts,
            "ii": result.cycles.ii,
        }
    payload = {
        "v": CODEC_VERSION,
        "score": float(result.score),
        "start": [int(result.start[0]), int(result.start[1])],
        "end": [int(result.end[0]), int(result.end[1])],
        "alignment": alignment,
        "cycles": cycles,
    }
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def decode_result(payload: bytes) -> AlignmentResult:
    """Rebuild an :class:`AlignmentResult` from :func:`encode_result` bytes."""
    doc = json.loads(payload.decode("utf-8"))
    if doc.get("v") != CODEC_VERSION:
        raise ValueError(f"unsupported cache entry version {doc.get('v')!r}")
    alignment = None
    if doc["alignment"] is not None:
        a = doc["alignment"]
        alignment = Alignment(
            moves=tuple(Move(ch) for ch in a["moves"]),
            query_start=a["query_start"],
            query_end=a["query_end"],
            ref_start=a["ref_start"],
            ref_end=a["ref_end"],
        )
    cycles = None
    if doc["cycles"] is not None:
        cycles = CycleReport(**doc["cycles"])
    return AlignmentResult(
        score=doc["score"],
        start=(doc["start"][0], doc["start"][1]),
        end=(doc["end"][0], doc["end"][1]),
        alignment=alignment,
        cycles=cycles,
    )


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and placement knobs of one :class:`CacheStack`.

    ``directory=None`` keeps the stack memory-only (no persistence);
    pointing it at a directory adds the disk tier, which a restarted
    process warm-starts from.
    """

    memory_bytes: int = 64 * 1024 * 1024
    directory: Optional[str] = None
    shard_bytes: int = 16 * 1024 * 1024
    fsync: bool = False


class CacheComputeError(RuntimeError):
    """A coalesced engine failure, re-raised to every waiting follower."""

    def __init__(self, error_type: str, message: str, traceback: str = ""):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.traceback = traceback


class CacheStack:
    """Two-tier cache (memory over optional disk) with single-flight."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self.memory = MemoryCache(max_bytes=self.config.memory_bytes)
        self.disk: Optional[DiskStore] = None
        if self.config.directory is not None:
            self.disk = DiskStore(
                self.config.directory,
                shard_bytes=self.config.shard_bytes,
                fsync=self.config.fsync,
            )
        self.flights = SingleFlight()

    # -- tier walk -----------------------------------------------------

    def probe(self, key: str) -> Tuple[Optional[AlignmentResult], Optional[str]]:
        """Look ``key`` up in memory then disk (promoting a disk hit).

        Returns ``(result, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"`` or ``None`` on a full miss.
        """
        recorder = get_recorder()
        value = self.memory.get(key)
        if value is not None:
            recorder.count("cache.memory_hits")
            return value, "memory"
        if self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                result = decode_result(payload)
                self.memory.put(key, result, len(payload))
                recorder.count("cache.disk_hits")
                return result, "disk"
        recorder.count("cache.misses")
        return None, None

    def store(self, key: str, result: AlignmentResult) -> None:
        """Write a computed result through to both tiers."""
        recorder = get_recorder()
        payload = encode_result(result)
        before = self.memory.stats().evictions
        self.memory.put(key, result, len(payload))
        evicted = self.memory.stats().evictions - before
        if evicted:
            recorder.count("cache.evictions", evicted)
        if self.disk is not None:
            self.disk.put(key, payload)

    def get_or_compute(self, key: str, compute) -> Tuple[AlignmentResult, str]:
        """Serve ``key`` from a tier or compute it exactly once.

        ``compute`` is a zero-argument callable producing the
        :class:`AlignmentResult`.  Returns ``(result, source)`` where
        ``source`` is ``"memory"``, ``"disk"``, ``"coalesced"`` or
        ``"engine"``.
        """
        result, tier = self.probe(key)
        if result is not None:
            return result, tier

        def lead() -> AlignmentResult:
            # Double-check under the flight: a concurrent leader may have
            # stored the entry between our probe and winning the flight.
            again, _tier = self.probe(key)
            if again is not None:
                return again
            value = compute()
            self.store(key, value)
            return value

        value, coalesced = self.flights.do(key, lead)
        if coalesced:
            get_recorder().count("cache.coalesced")
            return value, "coalesced"
        return value, "engine"

    # -- maintenance / introspection -----------------------------------

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed."""
        self.memory.clear()
        return self.disk.clear() if self.disk is not None else 0

    def close(self) -> None:
        """Release the disk tier's append handle."""
        if self.disk is not None:
            self.disk.close()

    def stats(self) -> Dict[str, Any]:
        """JSON-safe combined snapshot of every tier."""
        return {
            "memory": self.memory.stats().to_dict(),
            "disk": self.disk.stats().to_dict() if self.disk else None,
            "singleflight": self.flights.stats().to_dict(),
        }


@dataclass
class CachedBatchOutcome(BatchOutcome):
    """A :class:`BatchOutcome` plus per-pair cache attribution.

    ``fingerprints[i]`` is the content-addressed key of pair ``i``;
    ``cached[i]`` is ``True`` when the pair was served without engine
    work *in this call* (memory hit, disk hit, or coalesced onto a
    concurrent computation).
    """

    fingerprints: List[str] = field(default_factory=list)
    cached: List[bool] = field(default_factory=list)

    @property
    def hits(self) -> int:
        """Pairs served without engine work in this call."""
        return sum(1 for flag in self.cached if flag)

    @property
    def hit_rate(self) -> float:
        """Fraction of the batch served from the cache tiers."""
        return self.hits / len(self.cached) if self.cached else 0.0


class CachedRuntime:
    """Drop-in :class:`DeviceRuntime` decorator serving from a cache stack.

    The wrapped runtime only sees the *misses* of each batch — deduped,
    as a single inner batch, so the scheduler model and host-side
    parallelism behave exactly as for an uncached runtime of that batch.
    The modelled schedule therefore covers only the pairs the device
    actually ran: a fully warm batch reports a zero-cycle schedule, which
    is the honest account of a device that did no work.
    """

    def __init__(self, runtime: DeviceRuntime, stack: CacheStack) -> None:
        self.runtime = runtime
        self.stack = stack
        self.runtime_key = runtime_fingerprint(
            runtime.spec,
            runtime.params,
            runtime.config.n_pe,
            runtime.report.ii,
            runtime.config.max_query_len,
            runtime.config.max_ref_len,
        )

    # -- DeviceRuntime surface ----------------------------------------

    @property
    def spec(self):
        """The wrapped runtime's kernel spec."""
        return self.runtime.spec

    @property
    def config(self):
        """The wrapped runtime's launch configuration."""
        return self.runtime.config

    @property
    def params(self):
        """The wrapped runtime's scoring parameters."""
        return self.runtime.params

    @property
    def report(self):
        """The wrapped runtime's synthesis report."""
        return self.runtime.report

    @property
    def backend(self):
        """The wrapped runtime's alignment backend.

        Deliberately absent from :attr:`runtime_key`: backends are
        bit-identical, so a cache warmed by one backend must hit from
        the other.
        """
        return self.runtime.backend

    def pair_key(self, query: Sequence[Any], reference: Sequence[Any]) -> str:
        """Content-addressed key of one pair on this runtime."""
        return pair_fingerprint(self.runtime_key, query, reference)

    # -- the batch entry point ----------------------------------------

    def run(
        self,
        pairs: Sequence[Tuple[Sequence[Any], Sequence[Any]]],
        options: Optional[RunOptions] = None,
        **legacy: Any,
    ) -> CachedBatchOutcome:
        """Align a batch, serving every known pair from the cache tiers.

        Semantics match :meth:`DeviceRuntime.run` — index-aligned
        results, per-pair failures isolated in ``errors``, knobs in
        ``options`` (legacy ``workers=``/``timeout=`` keywords warn for
        one release) — with two additions: ``fingerprints``/``cached``
        attribution on the outcome, and cross-thread single-flight (an
        identical pair being computed by another thread is awaited,
        not recomputed).
        """
        opts = resolve_run_options(options, legacy)
        recorder = get_recorder()
        pairs = list(pairs)
        n = len(pairs)
        keys = [self.pair_key(q, r) for q, r in pairs]
        results: List[Optional[AlignmentResult]] = [None] * n
        cached = [False] * n
        errors: List[WorkError] = []
        pending: Dict[str, List[int]] = {}
        with recorder.span("cache.run", kernel=self.spec.name, pairs=n):
            for index, key in enumerate(keys):
                value, _tier = self.stack.probe(key)
                if value is not None:
                    results[index] = value
                    cached[index] = True
                else:
                    pending.setdefault(key, []).append(index)
            lead: Dict[str, Any] = {}
            follow: Dict[str, Any] = {}
            for key in pending:
                flight, leader = self.stack.flights.begin(key)
                if leader:
                    lead[key] = flight
                else:
                    follow[key] = flight
            if follow:
                recorder.count(
                    "cache.coalesced",
                    sum(len(pending[key]) for key in follow),
                )
            lead_keys = list(lead)
            lead_pairs = [pairs[pending[key][0]] for key in lead_keys]
            inner = self._run_lead(lead_keys, lead_pairs, opts)
            self._settle(lead, lead_keys, inner, pending, results, cached,
                         errors)
            for key, flight in follow.items():
                self._await(flight, pending[key], results, cached, errors,
                            opts.timeout)
            if recorder.enabled:
                recorder.count("cache.pairs", n)
        outcome = inner["outcome"]
        return CachedBatchOutcome(
            results=results,
            schedule=outcome.schedule,
            clock_mhz=outcome.clock_mhz,
            errors=sorted(errors, key=lambda e: e.index),
            fingerprints=keys,
            cached=cached,
        )

    # -- internals -----------------------------------------------------

    def _run_lead(
        self,
        lead_keys: List[str],
        lead_pairs: List[Tuple[Sequence[Any], Sequence[Any]]],
        opts: RunOptions,
    ) -> Dict[str, Any]:
        """Run the deduped miss set as one inner batch.

        Returns the inner outcome plus a key → error map.  Flights are
        *not* settled here; :meth:`_settle` does that so an unexpected
        inner exception can still fail every open flight (no follower
        may hang).
        """
        try:
            outcome = self.runtime.run(lead_pairs, options=opts)
        except BaseException as exc:
            failure = CacheComputeError(type(exc).__name__, str(exc))
            return {"outcome": None, "errors": {
                key: failure for key in lead_keys
            }, "raised": exc}
        errors = {
            lead_keys[err.index]: CacheComputeError(
                err.error_type, err.message, err.traceback
            )
            for err in outcome.errors
        }
        return {"outcome": outcome, "errors": errors, "raised": None}

    def _settle(
        self,
        lead: Dict[str, Any],
        lead_keys: List[str],
        inner: Dict[str, Any],
        pending: Dict[str, List[int]],
        results: List[Optional[AlignmentResult]],
        cached: List[bool],
        errors: List[WorkError],
    ) -> None:
        """Settle every led flight and fill the indices it covers."""
        outcome = inner["outcome"]
        key_errors: Dict[str, CacheComputeError] = inner["errors"]
        if inner["raised"] is not None:
            for key in lead_keys:
                self.stack.flights.fail(lead[key], key_errors[key])
            raise inner["raised"]
        for position, key in enumerate(lead_keys):
            flight = lead[key]
            failure = key_errors.get(key)
            if failure is not None:
                self.stack.flights.fail(flight, failure)
                for index in pending[key]:
                    errors.append(WorkError(
                        index, failure.error_type, failure.message,
                        traceback=failure.traceback,
                    ))
                continue
            result = outcome.results[position]
            self.stack.store(key, result)
            self.stack.flights.finish(flight, result)
            indices = pending[key]
            for index in indices:
                results[index] = result
            # Duplicate appearances beyond the first were not engine work.
            for index in indices[1:]:
                cached[index] = True

    def _await(
        self,
        flight: Any,
        indices: List[int],
        results: List[Optional[AlignmentResult]],
        cached: List[bool],
        errors: List[WorkError],
        timeout: Optional[float],
    ) -> None:
        """Wait on another thread's flight for the given batch indices."""
        wait_s = None if timeout is None else max(timeout * 4.0, 60.0)
        try:
            value = self.stack.flights.wait(flight, timeout=wait_s)
        except CacheComputeError as exc:
            for index in indices:
                errors.append(WorkError(
                    index, exc.error_type, exc.message,
                    traceback=exc.traceback,
                ))
            return
        except BaseException as exc:  # noqa: BLE001 - isolation contract
            for index in indices:
                errors.append(WorkError(index, type(exc).__name__, str(exc)))
            return
        for index in indices:
            results[index] = value
            cached[index] = True
