"""The persistent cache tier: append-only shard files + in-memory index.

Layout: a cache directory holds numbered shard files
(``shard-000000.log``, ``shard-000001.log``, …).  Every
:meth:`DiskStore.put` appends one framed record to the active shard —

    ``magic (4B) | key_len (u16) | payload_len (u32) | crc32 (u32)
    | key | payload``

— and updates the in-memory index (``key → shard, offset, length``).
The files are the journal: opening a store replays every shard in
numeric order, so a restarted server warm-starts with exactly the
entries that were durably framed.  Replay is crash-safe — a torn tail
(process killed mid-append) fails the magic/length/CRC checks, the
replay stops at the last well-formed record of that shard, and the next
append overwrites the torn bytes.

Writes are last-write-wins: a re-put appends a fresh record and repoints
the index, leaving the stale record as garbage.  :meth:`DiskStore.compact`
rewrites the live records into a single new *higher-numbered* shard
(atomic ``os.replace`` of a finished temp file) and then deletes the old
shards — a crash between those two steps leaves a state that replays to
the same index, because replay order is shard order and the compacted
shard is scanned last.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Frame magic; a mismatch during replay marks the end of valid data.
_MAGIC = b"RPRC"
_HEADER = struct.Struct("<4sHII")
#: Largest key the u16 length field can frame.
MAX_KEY_BYTES = 0xFFFF


@dataclass
class DiskStats:
    """Counter snapshot of one :class:`DiskStore`."""

    entries: int = 0
    live_bytes: int = 0
    file_bytes: int = 0
    shards: int = 0
    puts: int = 0
    hits: int = 0
    misses: int = 0
    replayed_records: int = 0
    torn_records: int = 0
    compactions: int = 0
    directory: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (the ``cache stats`` wire form)."""
        return {
            "entries": self.entries,
            "live_bytes": self.live_bytes,
            "file_bytes": self.file_bytes,
            "shards": self.shards,
            "puts": self.puts,
            "hits": self.hits,
            "misses": self.misses,
            "replayed_records": self.replayed_records,
            "torn_records": self.torn_records,
            "compactions": self.compactions,
            "directory": self.directory,
        }


@dataclass
class _IndexEntry:
    """Where one live payload sits on disk."""

    shard: int
    payload_offset: int
    payload_len: int
    record_len: int = field(default=0)


def _shard_name(number: int) -> str:
    """Filename of shard ``number`` (zero-padded so sort order is scan order)."""
    return f"shard-{number:06d}.log"


class DiskStore:
    """Append-only, crash-safe, compactable key→bytes store."""

    def __init__(
        self,
        directory: str,
        shard_bytes: int = 16 * 1024 * 1024,
        fsync: bool = False,
    ) -> None:
        if shard_bytes < _HEADER.size + 1:
            raise ValueError(f"shard_bytes too small: {shard_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_bytes = shard_bytes
        self.fsync = fsync
        self._lock = threading.Lock()
        self._index: Dict[str, _IndexEntry] = {}
        self._live_bytes = 0
        self._puts = 0
        self._hits = 0
        self._misses = 0
        self._replayed = 0
        self._torn = 0
        self._compactions = 0
        self._append_handle = None
        self._active_shard = 0
        self._active_size = 0
        self._replay()

    # -- journal replay ------------------------------------------------

    def _shard_numbers(self) -> List[int]:
        """Existing shard numbers, ascending (replay/scan order)."""
        numbers = []
        for path in self.directory.glob("shard-*.log"):
            stem = path.name[len("shard-"):-len(".log")]
            if stem.isdigit():
                numbers.append(int(stem))
        return sorted(numbers)

    def _shard_path(self, number: int) -> Path:
        return self.directory / _shard_name(number)

    def _replay(self) -> None:
        """Rebuild the index by scanning every shard, oldest first.

        Within a shard, scanning stops at the first record that fails
        the magic/length/CRC checks — that is the torn tail of a
        crashed append.  The shard is truncated back to its last
        well-formed record so the next append starts clean.
        """
        numbers = self._shard_numbers()
        for number in numbers:
            path = self._shard_path(number)
            data = path.read_bytes()
            offset = 0
            while offset + _HEADER.size <= len(data):
                magic, key_len, payload_len, crc = _HEADER.unpack_from(
                    data, offset
                )
                body_start = offset + _HEADER.size
                body_end = body_start + key_len + payload_len
                if magic != _MAGIC or body_end > len(data):
                    break
                key_bytes = data[body_start:body_start + key_len]
                payload = data[body_start + key_len:body_end]
                if zlib.crc32(payload, zlib.crc32(key_bytes)) != crc:
                    break
                key = key_bytes.decode("utf-8")
                previous = self._index.get(key)
                if previous is not None:
                    self._live_bytes -= previous.payload_len
                self._index[key] = _IndexEntry(
                    shard=number,
                    payload_offset=body_start + key_len,
                    payload_len=payload_len,
                    record_len=body_end - offset,
                )
                self._live_bytes += payload_len
                self._replayed += 1
                offset = body_end
            if offset < len(data):
                self._torn += 1
                with path.open("r+b") as handle:
                    handle.truncate(offset)
        self._active_shard = numbers[-1] if numbers else 0
        self._active_size = (
            self._shard_path(self._active_shard).stat().st_size
            if numbers else 0
        )

    # -- write path ----------------------------------------------------

    def _writer(self):
        """The open append handle of the active shard (rotating as needed)."""
        if (
            self._append_handle is not None
            and self._active_size >= self.shard_bytes
        ):
            self._append_handle.close()
            self._append_handle = None
            self._active_shard += 1
            self._active_size = 0
        if self._append_handle is None:
            path = self._shard_path(self._active_shard)
            self._append_handle = path.open("ab")
            self._active_size = path.stat().st_size
        return self._append_handle

    def put(self, key: str, payload: bytes) -> None:
        """Durably append one record and repoint the index at it."""
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > MAX_KEY_BYTES:
            raise ValueError(f"key too long to frame: {len(key_bytes)} bytes")
        crc = zlib.crc32(payload, zlib.crc32(key_bytes))
        header = _HEADER.pack(_MAGIC, len(key_bytes), len(payload), crc)
        with self._lock:
            handle = self._writer()
            offset = self._active_size
            handle.write(header)
            handle.write(key_bytes)
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            record_len = _HEADER.size + len(key_bytes) + len(payload)
            self._active_size += record_len
            previous = self._index.get(key)
            if previous is not None:
                self._live_bytes -= previous.payload_len
            self._index[key] = _IndexEntry(
                shard=self._active_shard,
                payload_offset=offset + _HEADER.size + len(key_bytes),
                payload_len=len(payload),
                record_len=record_len,
            )
            self._live_bytes += len(payload)
            self._puts += 1

    # -- read path -----------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """Fetch the live payload of ``key`` (``None`` when absent)."""
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
            shard, offset, length = (
                entry.shard, entry.payload_offset, entry.payload_len
            )
            if self._append_handle is not None:
                self._append_handle.flush()
        with self._shard_path(shard).open("rb") as handle:
            handle.seek(offset)
            return handle.read(length)

    def __contains__(self, key: str) -> bool:
        """Membership check without touching hit/miss counters."""
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        """Number of live keys."""
        with self._lock:
            return len(self._index)

    def keys(self) -> List[str]:
        """Live keys, sorted (stable across replay orders)."""
        with self._lock:
            return sorted(self._index)

    # -- maintenance ---------------------------------------------------

    def compact(self) -> int:
        """Rewrite live records into one fresh shard; returns bytes freed.

        The new shard is assembled under a temp name and atomically
        renamed into place *above* the current shard numbers before the
        stale shards are deleted, so a crash at any point replays to the
        same live index.
        """
        with self._lock:
            old_numbers = self._shard_numbers()
            file_bytes_before = sum(
                self._shard_path(n).stat().st_size for n in old_numbers
            )
            if self._append_handle is not None:
                self._append_handle.close()
                self._append_handle = None
            target = (old_numbers[-1] + 1) if old_numbers else 0
            tmp_path = self.directory / f"{_shard_name(target)}.tmp"
            new_index: Dict[str, _IndexEntry] = {}
            offset = 0
            with tmp_path.open("wb") as out:
                for key in sorted(self._index):
                    entry = self._index[key]
                    with self._shard_path(entry.shard).open("rb") as src:
                        src.seek(entry.payload_offset)
                        payload = src.read(entry.payload_len)
                    key_bytes = key.encode("utf-8")
                    crc = zlib.crc32(payload, zlib.crc32(key_bytes))
                    out.write(_HEADER.pack(
                        _MAGIC, len(key_bytes), len(payload), crc
                    ))
                    out.write(key_bytes)
                    out.write(payload)
                    record_len = _HEADER.size + len(key_bytes) + len(payload)
                    new_index[key] = _IndexEntry(
                        shard=target,
                        payload_offset=offset + _HEADER.size + len(key_bytes),
                        payload_len=len(payload),
                        record_len=record_len,
                    )
                    offset += record_len
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp_path, self._shard_path(target))
            for number in old_numbers:
                self._shard_path(number).unlink()
            self._index = new_index
            self._active_shard = target
            self._active_size = offset
            self._compactions += 1
            return file_bytes_before - offset

    def clear(self) -> int:
        """Delete every shard and reset the index; returns entries dropped."""
        with self._lock:
            dropped = len(self._index)
            if self._append_handle is not None:
                self._append_handle.close()
                self._append_handle = None
            for number in self._shard_numbers():
                self._shard_path(number).unlink()
            self._index.clear()
            self._live_bytes = 0
            self._active_shard = 0
            self._active_size = 0
            return dropped

    def close(self) -> None:
        """Flush and close the append handle (reads keep working)."""
        with self._lock:
            if self._append_handle is not None:
                self._append_handle.close()
                self._append_handle = None

    def __enter__(self) -> "DiskStore":
        """Context-manager entry (the store is open on construction)."""
        return self

    def __exit__(self, *_exc) -> None:
        """Context-manager exit closes the append handle."""
        self.close()

    def stats(self) -> DiskStats:
        """Counter snapshot (consistent under the store lock)."""
        with self._lock:
            numbers = self._shard_numbers()
            return DiskStats(
                entries=len(self._index),
                live_bytes=self._live_bytes,
                file_bytes=sum(
                    self._shard_path(n).stat().st_size for n in numbers
                ),
                shards=len(numbers),
                puts=self._puts,
                hits=self._hits,
                misses=self._misses,
                replayed_records=self._replayed,
                torn_records=self._torn,
                compactions=self._compactions,
                directory=str(self.directory),
            )
