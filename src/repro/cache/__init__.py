"""Content-addressed alignment caching: the reuse layer above the engine.

DP-HLS's back-end is fixed, so an alignment result is a *pure function*
of the kernel spec surface, the scoring parameters, the launch sizing and
the raw sequence bytes.  Real alignment traffic (read mapping against a
fixed reference, repeated fuzz corpora, campaign re-runs) is highly
redundant over exactly those inputs, which makes the whole stack
perfectly cacheable — the separation of computation from data movement
and reuse that the data-centric HLS literature argues for, applied one
level above the simulated device.

* :mod:`repro.cache.fingerprint`  — canonical content-addressed keys
  over kernel id, scoring params, fixed-point/banding config and raw
  sequence bytes; stable across processes and platforms;
* :mod:`repro.cache.memory`       — a bytes-bounded, thread-safe LRU
  tier with eviction accounting;
* :mod:`repro.cache.disk`         — an append-only shard-file store
  with an in-memory index, crash-safe journal replay and atomic
  compaction, so a restarted server warm-starts from disk;
* :mod:`repro.cache.singleflight` — concurrent identical requests
  coalesce onto one in-flight computation;
* :mod:`repro.cache.facade`       — the :class:`CacheStack` tier stack
  plus :class:`CachedRuntime`, the opt-in decorator around
  :class:`~repro.host.runtime.DeviceRuntime` that the serving pool and
  the ``repro cache`` CLI commands build on.

Quickstart::

    from repro.cache import CacheConfig, CacheStack, CachedRuntime
    from repro.host import DeviceRuntime

    stack = CacheStack(CacheConfig(directory="cache.d"))
    runtime = CachedRuntime(DeviceRuntime(spec), stack)
    runtime.run(pairs)          # cold: engine path, results persisted
    runtime.run(pairs)          # warm: served from memory/disk tiers
"""

from repro.cache.disk import DiskStore
from repro.cache.facade import (
    CacheConfig,
    CacheStack,
    CachedBatchOutcome,
    CachedRuntime,
    decode_result,
    encode_result,
)
from repro.cache.fingerprint import (
    FINGERPRINT_VERSION,
    canonical,
    canonical_json,
    fingerprint,
    pair_fingerprint,
    runtime_fingerprint,
    sequence_blob,
)
from repro.cache.memory import MemoryCache
from repro.cache.singleflight import SingleFlight

__all__ = [
    "CacheConfig",
    "CacheStack",
    "CachedBatchOutcome",
    "CachedRuntime",
    "DiskStore",
    "FINGERPRINT_VERSION",
    "MemoryCache",
    "SingleFlight",
    "canonical",
    "canonical_json",
    "decode_result",
    "encode_result",
    "fingerprint",
    "pair_fingerprint",
    "runtime_fingerprint",
    "sequence_blob",
]
