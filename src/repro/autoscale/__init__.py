"""repro.autoscale — closed-loop autoscaling DSE for the serving tier.

The paper's design-space exploration picks (N_PE, N_B, N_K) *offline*
for a known workload; this package closes the loop *online*.  Live
serving metrics (windowed arrival rates and p99s, differentiated from
the cumulative instruments by :class:`MetricsWatcher`) feed a
:class:`Planner` that re-solves the memoized DSE under the device's
resource budget, and an :class:`Actuator` reconciles the live
:class:`~repro.service.pool.DevicePool` to the plan with
drain-before-retire membership changes.  :class:`AutoscaleController`
runs the watch->plan->actuate cycle with cooldown + sliding-window
hysteresis; :func:`run_autoscale_demo` shows the whole loop recovering
a blown SLO under a step load.  See ``docs/autoscale.md``.
"""

from repro.autoscale.actuator import Action, Actuator, default_runtime_factory
from repro.autoscale.controller import AutoscaleController, Decision
from repro.autoscale.demo import build_workload, run_autoscale_demo
from repro.autoscale.planner import KernelPlan, Plan, PlanInfeasible, Planner
from repro.autoscale.policy import SloPolicy
from repro.autoscale.signals import (
    DemandSample,
    KernelSignal,
    MetricsWatcher,
    flatten_snapshot,
    quantile_from_buckets,
)

__all__ = [
    "Action",
    "Actuator",
    "AutoscaleController",
    "Decision",
    "DemandSample",
    "KernelPlan",
    "KernelSignal",
    "MetricsWatcher",
    "Plan",
    "PlanInfeasible",
    "Planner",
    "SloPolicy",
    "build_workload",
    "default_runtime_factory",
    "flatten_snapshot",
    "quantile_from_buckets",
    "run_autoscale_demo",
]
