"""The control loop: watch -> plan -> actuate, with hysteresis.

:class:`AutoscaleController` ties the pieces together.  Each
:meth:`~AutoscaleController.step` polls the
:class:`~repro.autoscale.signals.MetricsWatcher` for a windowed
:class:`~repro.autoscale.signals.DemandSample`, asks the
:class:`~repro.autoscale.planner.Planner` for a fitting fleet target,
and hands any delta to the :class:`~repro.autoscale.actuator.Actuator`
— unless hysteresis says no:

* a per-kernel **cooldown** (``policy.cooldown_s``) refuses to touch a
  kernel again before its last actuation has had time to show up in the
  windowed metrics (otherwise one overload sample triggers a stampede
  of scale-ups before the first new replica serves a single batch);
* a fleet-wide **sliding-window cap**
  (``policy.max_actions_per_window`` inside ``policy.window_s``) bounds
  total reconfiguration churn no matter what the signals do — the
  anti-flap invariant the property tests pin down.

Every step emits ``autoscale.*`` metrics through the ambient recorder
(decision counters, an ``autoscale.slo_violation`` gauge, per-kernel
replica gauges) and returns a JSON-safe :class:`Decision` record, so a
demo or an operator can replay exactly why the loop did what it did.
:meth:`~AutoscaleController.start` runs steps on a daemon thread at a
fixed interval; :meth:`~AutoscaleController.stop` joins it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.autoscale.actuator import Action, Actuator
from repro.autoscale.planner import Plan, PlanInfeasible, Planner
from repro.autoscale.policy import SloPolicy
from repro.autoscale.signals import DemandSample, MetricsWatcher
from repro.obs.recorder import get_recorder

__all__ = ["Decision", "AutoscaleController"]


@dataclass(frozen=True)
class Decision:
    """One control step's full story: signals in, actions out."""

    at_s: float
    sample: DemandSample
    plan: Optional[Plan]
    actions: Tuple[Action, ...]
    skipped: Tuple[Tuple[int, str], ...] = ()  #: (kernel_id, reason)
    infeasible: str = ""

    @property
    def scaled_up(self) -> bool:
        """Whether any replica was (or would be) added this step."""
        return any(a.kind == "add" and a.ok for a in self.actions)

    @property
    def scaled_down(self) -> bool:
        """Whether any replica was (or would be) retired this step."""
        return any(a.kind == "retire" and a.ok for a in self.actions)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering for decision logs and the demo report."""
        return {
            "at_s": round(self.at_s, 3),
            "interval_s": round(self.sample.interval_s, 3),
            "kernels": {
                str(kernel_id): signal.to_dict()
                for kernel_id, signal in sorted(self.sample.kernels.items())
            },
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "actions": [action.to_dict() for action in self.actions],
            "skipped": [
                {"kernel_id": kernel_id, "reason": reason}
                for kernel_id, reason in self.skipped
            ],
            "infeasible": self.infeasible,
        }


class AutoscaleController:
    """Closed-loop autoscaler over one watcher, planner and actuator."""

    def __init__(
        self,
        watcher: MetricsWatcher,
        planner: Planner,
        actuator: Actuator,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.watcher = watcher
        self.planner = planner
        self.actuator = actuator
        self.policy: SloPolicy = planner.policy
        self._clock = clock
        self._last_action_at: Dict[int, float] = {}
        self._action_times: Deque[float] = deque()
        self.decisions: List[Decision] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- hysteresis ----------------------------------------------------

    def _window_budget(self, now: float) -> int:
        """How many more actions the sliding window still allows."""
        horizon = now - self.policy.window_s
        while self._action_times and self._action_times[0] <= horizon:
            self._action_times.popleft()
        return self.policy.max_actions_per_window - len(self._action_times)

    def _cooling(self, kernel_id: int, now: float) -> bool:
        """Whether a kernel's last actuation is still too recent."""
        last = self._last_action_at.get(kernel_id)
        return last is not None and (now - last) < self.policy.cooldown_s

    # -- one step ------------------------------------------------------

    def step(self) -> Decision:
        """Run one watch->plan->actuate cycle and record the decision."""
        recorder = get_recorder()
        now = self._clock()
        sample = self.watcher.sample()
        recorder.count("autoscale.decisions_total")

        violated = sum(
            1 for signal in sample.kernels.values()
            if self.policy.violated(
                signal.latency_p99_ms
                if signal.latency_p99_ms is not None
                else signal.queue_p99_ms
            ) or signal.rejection_rps > 0
        )
        recorder.gauge("autoscale.slo_violation", float(violated))
        for kernel_id, signal in sample.kernels.items():
            recorder.gauge(
                f"autoscale.kernel.{kernel_id}.replicas",
                float(signal.replicas),
            )
            if signal.latency_p99_ms is not None:
                recorder.gauge(
                    f"autoscale.kernel.{kernel_id}.p99_ms",
                    signal.latency_p99_ms,
                )

        skipped: List[Tuple[int, str]] = []
        eligible = {}
        current = {
            kernel_id: signal.replicas
            for kernel_id, signal in sample.kernels.items()
        }
        for kernel_id, signal in sample.kernels.items():
            if self._cooling(kernel_id, now):
                skipped.append((kernel_id, "cooldown"))
                continue
            eligible[kernel_id] = signal

        decision: Decision
        if not eligible:
            decision = Decision(
                at_s=now, sample=sample, plan=None, actions=(),
                skipped=tuple(skipped),
            )
            self.decisions.append(decision)
            return decision

        try:
            plan = self.planner.plan(eligible, current=current)
        except PlanInfeasible as exc:
            recorder.count("autoscale.plan_infeasible_total")
            decision = Decision(
                at_s=now, sample=sample, plan=None, actions=(),
                skipped=tuple(skipped), infeasible=str(exc),
            )
            self.decisions.append(decision)
            return decision

        # Drop no-op entries, then spend the sliding-window budget.
        deltas = [
            entry for entry in plan.kernels
            if entry.replicas != current.get(entry.kernel_id, entry.replicas)
        ]
        budget = self._window_budget(now)
        actionable = []
        for entry in deltas:
            if budget <= 0:
                skipped.append((entry.kernel_id, "window_cap"))
                continue
            live = current.get(entry.kernel_id, entry.replicas)
            need = abs(entry.replicas - live)
            if need > budget:
                # Clamp the move toward the target to the remaining
                # window budget — partial progress beats a cap breach.
                entry = entry.with_replicas(
                    live + budget if entry.replicas > live
                    else live - budget
                )
                need = budget
            actionable.append(entry)
            budget -= need

        actions: Tuple[Action, ...] = ()
        if actionable:
            applied = self.actuator.apply(Plan(kernels=tuple(actionable)))
            actions = tuple(applied)
            for action in applied:
                if not action.ok:
                    continue
                self._last_action_at[action.kernel_id] = now
                self._action_times.append(now)
                if action.kind == "add":
                    recorder.count("autoscale.scale_up_total")
                else:
                    recorder.count("autoscale.scale_down_total")

        decision = Decision(
            at_s=now, sample=sample, plan=plan, actions=actions,
            skipped=tuple(skipped),
        )
        self.decisions.append(decision)
        return decision

    # -- background loop ----------------------------------------------

    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`step` every ``interval_s`` on a daemon thread."""
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if self._thread is not None:
            raise RuntimeError("controller already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.step()
                except Exception:
                    get_recorder().count("autoscale.step_errors_total")

        self._thread = threading.Thread(
            target=loop, name="autoscale-controller", daemon=True
        )
        self._thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the background loop and join the thread."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout_s)
        self._thread = None

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-safe roll-up of every decision taken so far."""
        ups = sum(1 for d in self.decisions if d.scaled_up)
        downs = sum(1 for d in self.decisions if d.scaled_down)
        return {
            "decisions": len(self.decisions),
            "scale_ups": ups,
            "scale_downs": downs,
            "infeasible": sum(
                1 for d in self.decisions if d.infeasible
            ),
            "log": [d.to_dict() for d in self.decisions],
        }
