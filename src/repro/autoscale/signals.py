"""Demand signals: turning metrics snapshots into per-kernel telemetry.

The serving stack's instruments are *cumulative* — process-lifetime
counters and histograms — because that is what cheap always-on metrics
look like.  A feedback controller needs *windowed* signals: what the
arrival rate and queueing delay were over the last control interval,
not since boot (a recovered service would otherwise look violated
forever, because the overload era still dominates the lifetime p99).

:class:`MetricsWatcher` closes that gap.  It polls any snapshot source
— an in-proc :meth:`~repro.service.server.ServiceCore.metrics_snapshot`
or the shard front door's aggregated endpoint (both shapes are
handled) — and differentiates consecutive snapshots:

* per-kernel counters (``kernel.<id>.admitted_total`` /
  ``completed_total`` / ``rejected_total``) difference into windowed
  arrival/completion/rejection rates, and their running difference is
  the exact backlog;
* per-kernel histograms (``kernel.<id>.queue_ms`` / ``latency_ms``)
  expose cumulative bucket counts, so differencing the buckets
  recovers the *window's* distribution and an interpolated windowed
  p99 — the textbook cumulative-bucket quantile, computed client-side;
* pool stats give live replica counts, in-flight load and occupancy.

The first ``sample()`` has no predecessor and reports an empty window
(rates zero, quantiles ``None``); controllers simply treat it as
"no evidence yet".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "KernelSignal",
    "DemandSample",
    "MetricsWatcher",
    "flatten_snapshot",
    "quantile_from_buckets",
]

#: One bucket: (upper bound, count); ``None`` bound = overflow bucket.
Bucket = Tuple[Optional[float], int]


def flatten_snapshot(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize an in-proc or front-door snapshot to one flat shape.

    Returns ``{"counters": ..., "histograms": ..., "pool": [...],
    "kernels": [...]}``.  A front-door snapshot already sums counters
    and merges histogram buckets across shards, but keeps pool stats
    only in its per-shard sections — those are concatenated here so the
    watcher sees one fleet-wide member list either way.
    """
    counters = dict(snapshot.get("counters", {}))
    histograms = dict(snapshot.get("histograms", {}))
    pool: List[Dict[str, Any]] = list(snapshot.get("pool", []))
    kernels = list(snapshot.get("kernels", []))
    shards = snapshot.get("shards")
    if isinstance(shards, Mapping):
        for shard_snapshot in shards.values():
            if not isinstance(shard_snapshot, Mapping):
                continue
            pool.extend(shard_snapshot.get("pool", []))
            for kernel_id in shard_snapshot.get("kernels", []):
                if kernel_id not in kernels:
                    kernels.append(kernel_id)
    return {
        "counters": counters,
        "histograms": histograms,
        "pool": pool,
        "kernels": sorted(kernels),
    }


def quantile_from_buckets(buckets: List[Bucket], q: float) -> Optional[float]:
    """Interpolated ``q``-quantile of a (windowed) bucket distribution.

    ``buckets`` are ascending ``(upper_bound, count)`` pairs with the
    overflow bucket's bound ``None`` — exactly the histogram snapshot
    shape (or a bucket-wise *difference* of two snapshots).  Returns
    ``None`` for an empty window.  The overflow bucket clamps to its
    lower bound: with geometric bounds out to 120 s that underestimate
    is irrelevant to an SLO check, and never optimistic by more than
    one bucket's width.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(count for _, count in buckets)
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0.0
    lower = 0.0
    for bound, count in buckets:
        if count > 0:
            if cumulative + count >= rank:
                if bound is None:
                    return lower
                fraction = (rank - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
        if bound is not None:
            lower = bound
    return lower


@dataclass(frozen=True)
class KernelSignal:
    """One kernel's windowed demand over the last control interval."""

    kernel_id: int
    replicas: int            #: routable (non-draining) pool members
    draining: int            #: members still draining out
    in_flight: int           #: pairs currently booked on its members
    arrival_rps: float       #: admitted requests / interval
    completion_rps: float    #: completed (ok or error) / interval
    rejection_rps: float     #: backpressure rejections / interval
    backlog: int             #: admitted-but-not-completed, cumulative
    queue_p99_ms: Optional[float]    #: windowed queueing-delay p99
    latency_p99_ms: Optional[float]  #: windowed end-to-end p99

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (decision logs, the demo report)."""
        return {
            "kernel_id": self.kernel_id,
            "replicas": self.replicas,
            "draining": self.draining,
            "in_flight": self.in_flight,
            "arrival_rps": round(self.arrival_rps, 3),
            "completion_rps": round(self.completion_rps, 3),
            "rejection_rps": round(self.rejection_rps, 3),
            "backlog": self.backlog,
            "queue_p99_ms": self.queue_p99_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }


@dataclass(frozen=True)
class DemandSample:
    """One watcher observation: every kernel's signal plus the window."""

    at_s: float
    interval_s: float
    kernels: Dict[int, KernelSignal] = field(default_factory=dict)

    @property
    def total_arrival_rps(self) -> float:
        """Fleet-wide windowed arrival rate."""
        return sum(signal.arrival_rps for signal in self.kernels.values())


class MetricsWatcher:
    """Differentiates metrics snapshots into windowed demand samples.

    ``source`` is any zero-argument callable returning a metrics
    snapshot — ``core.metrics_snapshot``, ``shard_server.
    metrics_snapshot``, or an :class:`~repro.service.client
    .AlignmentClient`'s ``metrics`` bound method for a remote service.
    """

    def __init__(
        self,
        source: Callable[[], Mapping[str, Any]],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.source = source
        self._clock = clock
        self._prev_at: Optional[float] = None
        self._prev_counters: Dict[str, int] = {}
        self._prev_buckets: Dict[str, Dict[Optional[float], int]] = {}

    @staticmethod
    def _bucket_map(stats: Mapping[str, Any]) -> Dict[Optional[float], int]:
        return {
            bound: count for bound, count in stats.get("buckets", [])
        }

    @staticmethod
    def _bucket_delta(
        now: Dict[Optional[float], int],
        before: Dict[Optional[float], int],
    ) -> List[Bucket]:
        bounds = set(now) | set(before)
        delta = [
            (bound, now.get(bound, 0) - before.get(bound, 0))
            for bound in bounds
        ]
        delta = [(bound, max(0, count)) for bound, count in delta]
        delta.sort(key=lambda item: (item[0] is None, item[0] or 0.0))
        return delta

    def sample(self) -> DemandSample:
        """Poll the source and return the windowed demand since last time."""
        now = self._clock()
        flat = flatten_snapshot(self.source())
        counters: Dict[str, int] = flat["counters"]
        interval = (
            max(1e-9, now - self._prev_at)
            if self._prev_at is not None else 0.0
        )
        first = self._prev_at is None

        # Member accounting by kernel, straight from live pool stats.
        members: Dict[int, Dict[str, int]] = {}
        for entry in flat["pool"]:
            kernel_id = entry.get("kernel_id")
            if kernel_id is None:
                continue
            slot = members.setdefault(
                kernel_id, {"replicas": 0, "draining": 0, "in_flight": 0}
            )
            if entry.get("draining"):
                slot["draining"] += 1
            else:
                slot["replicas"] += 1
            slot["in_flight"] += int(entry.get("in_flight", 0))

        kernel_ids = set(flat["kernels"]) | set(members)
        for name in counters:
            if name.startswith("kernel.") and name.endswith(".admitted_total"):
                try:
                    kernel_ids.add(int(name.split(".")[1]))
                except ValueError:
                    pass

        buckets_now: Dict[str, Dict[Optional[float], int]] = {}
        signals: Dict[int, KernelSignal] = {}
        for kernel_id in sorted(kernel_ids):
            prefix = f"kernel.{kernel_id}."
            admitted = counters.get(prefix + "admitted_total", 0)
            completed = counters.get(prefix + "completed_total", 0)
            rejected = counters.get(prefix + "rejected_total", 0)

            def rate(name: str, value: int) -> float:
                if first or interval <= 0:
                    return 0.0
                return max(0, value - self._prev_counters.get(name, 0)) \
                    / interval

            queue_p99 = latency_p99 = None
            for stat_name, histogram_name in (
                ("queue", prefix + "queue_ms"),
                ("latency", prefix + "latency_ms"),
            ):
                stats = flat["histograms"].get(histogram_name)
                if stats is None:
                    continue
                bucket_map = self._bucket_map(stats)
                buckets_now[histogram_name] = bucket_map
                if first:
                    continue
                delta = self._bucket_delta(
                    bucket_map, self._prev_buckets.get(histogram_name, {})
                )
                p99 = quantile_from_buckets(delta, 0.99)
                if stat_name == "queue":
                    queue_p99 = p99
                else:
                    latency_p99 = p99

            slot = members.get(
                kernel_id, {"replicas": 0, "draining": 0, "in_flight": 0}
            )
            signals[kernel_id] = KernelSignal(
                kernel_id=kernel_id,
                replicas=slot["replicas"],
                draining=slot["draining"],
                in_flight=slot["in_flight"],
                arrival_rps=rate(prefix + "admitted_total", admitted),
                completion_rps=rate(prefix + "completed_total", completed),
                rejection_rps=rate(prefix + "rejected_total", rejected),
                backlog=max(0, admitted - completed),
                queue_p99_ms=queue_p99,
                latency_p99_ms=latency_p99,
            )

        self._prev_at = now
        self._prev_counters = counters
        self._prev_buckets = buckets_now
        return DemandSample(at_s=now, interval_s=interval, kernels=signals)
