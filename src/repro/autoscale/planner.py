"""The planner: demand signals -> a (config, replicas) mix that fits.

This is the online form of the paper's Table 2 search.  For each served
kernel the planner re-solves :func:`repro.synth.dse.explore` — memoized,
so every re-solve after the first is a lookup — to pick the per-replica
(N_PE, N_B) point, then chooses replica counts from the demand signals:

* windowed p99 above the SLO target (or any backpressure rejections)
  asks for one more replica — or double, when the violation is severe —
  the LAAFD explore-evaluate-reconfigure move with the evaluation coming
  from live metrics instead of a model;
* windowed p99 inside the scale-down band with an empty backlog gives
  one replica back;
* no evidence (an empty window) holds.

Whatever demand asks for, the *inventory constraint* is enforced before
a plan leaves this module: the sum over kernels of
``replicas x per-replica resources`` must fit the policy's device
budget.  Oversubscribed plans shed replicas from the largest holder
(never below ``min_replicas``); if even the floor cannot place,
:class:`PlanInfeasible` is raised rather than returning a plan the
device cannot host.  Property tests drive this with randomized demand
traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.autoscale.policy import SloPolicy
from repro.autoscale.signals import KernelSignal
from repro.kernels import get_kernel
from repro.synth.compiler import SynthesisReport
from repro.synth.dse import (
    DEFAULT_NPE,
    RESOURCE_KINDS,
    budget_caps,
    explore,
    within_budget,
)

__all__ = ["KernelPlan", "Plan", "PlanInfeasible", "Planner"]

#: N_B choices for a serving replica (N_K is always 1: a replica *is*
#: one channel; channel fan-out is expressed as replicas instead).
DEFAULT_REPLICA_NB = (1, 2, 4, 8)


class PlanInfeasible(RuntimeError):
    """Raised when even minimal replica counts cannot fit the device."""


@dataclass(frozen=True)
class KernelPlan:
    """One kernel's deployment: a per-replica config times a count."""

    kernel_id: int
    n_pe: int
    n_b: int
    replicas: int
    #: Per-replica resource usage, keyed lut/ff/bram/dsp.
    resources: Tuple[Tuple[str, float], ...]

    @staticmethod
    def from_report(
        kernel_id: int, report: SynthesisReport, replicas: int
    ) -> "KernelPlan":
        """Build from the DSE-chosen per-replica synthesis report."""
        return KernelPlan(
            kernel_id=kernel_id,
            n_pe=report.config.n_pe,
            n_b=report.config.n_b,
            replicas=replicas,
            resources=(
                ("lut", report.total.luts),
                ("ff", report.total.ffs),
                ("bram", report.total.bram36),
                ("dsp", report.total.dsps),
            ),
        )

    def usage(self) -> Dict[str, float]:
        """Total resources this kernel's replicas occupy."""
        return {
            kind: amount * self.replicas for kind, amount in self.resources
        }

    def with_replicas(self, replicas: int) -> "KernelPlan":
        """The same per-replica config at a different count."""
        return KernelPlan(
            kernel_id=self.kernel_id, n_pe=self.n_pe, n_b=self.n_b,
            replicas=replicas, resources=self.resources,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering."""
        return {
            "kernel_id": self.kernel_id,
            "n_pe": self.n_pe,
            "n_b": self.n_b,
            "replicas": self.replicas,
        }


@dataclass(frozen=True)
class Plan:
    """A full-fleet target: one :class:`KernelPlan` per served kernel."""

    kernels: Tuple[KernelPlan, ...]

    @property
    def by_kernel(self) -> Dict[int, KernelPlan]:
        """Kernel id -> its plan entry."""
        return {entry.kernel_id: entry for entry in self.kernels}

    def usage(self) -> Dict[str, float]:
        """Summed resource usage across every kernel and replica."""
        totals = {kind: 0.0 for kind in RESOURCE_KINDS}
        for entry in self.kernels:
            for kind, amount in entry.usage().items():
                totals[kind] += amount
        return totals

    def fits(self, policy: SloPolicy) -> bool:
        """Whether the plan sits inside the policy's device budget."""
        caps = budget_caps(policy.budget_fraction, policy.device)
        usage = self.usage()
        return all(usage[kind] <= caps[kind] for kind in caps)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering."""
        return {"kernels": [entry.to_dict() for entry in self.kernels]}


class Planner:
    """Re-solves the DSE per kernel and sizes replica counts to demand."""

    def __init__(
        self,
        policy: SloPolicy,
        max_query_len: int = 64,
        max_ref_len: int = 64,
        n_pe_choices: Sequence[int] = DEFAULT_NPE,
        n_b_choices: Sequence[int] = DEFAULT_REPLICA_NB,
        severe_factor: float = 4.0,
    ) -> None:
        if severe_factor <= 1.0:
            raise ValueError(
                f"severe_factor must be > 1, got {severe_factor}"
            )
        self.policy = policy
        self.max_query_len = max_query_len
        self.max_ref_len = max_ref_len
        self.n_pe_choices = tuple(n_pe_choices)
        self.n_b_choices = tuple(n_b_choices)
        self.severe_factor = severe_factor
        self._reports: Dict[int, SynthesisReport] = {}
        self._floor_reports: Dict[int, SynthesisReport] = {}

    # -- per-replica configuration (the DSE half) ---------------------

    def _explore(self, kernel_id: int):
        spec = get_kernel(kernel_id)
        return explore(
            spec,
            n_pe_choices=self.n_pe_choices,
            n_b_choices=self.n_b_choices,
            n_k_choices=(1,),
            max_query_len=self.max_query_len,
            max_ref_len=self.max_ref_len,
            device=self.policy.device,
        )

    def replica_report(self, kernel_id: int) -> SynthesisReport:
        """The per-replica (N_PE, N_B) point for one kernel.

        Highest-throughput feasible configuration whose resources leave
        room for a full fleet: the budget share offered is
        ``budget_fraction / (n_kernels * max_replicas)`` and relaxes
        (x ``max_replicas``, then the whole budget) until something
        fits — a kernel too big for its fair share still deploys, it
        just scales out less before hitting the inventory wall.
        """
        cached = self._reports.get(kernel_id)
        if cached is not None:
            return cached
        result = self._explore(kernel_id)
        if not result.feasible:
            raise PlanInfeasible(
                f"kernel #{kernel_id} has no feasible configuration on "
                f"{self.policy.device.name}"
            )
        n_kernels = max(1, len(self._reports) + 1)
        shares = [
            self.policy.budget_fraction
            / (n_kernels * self.policy.max_replicas),
            self.policy.budget_fraction / n_kernels,
            self.policy.budget_fraction,
        ]
        chosen: Optional[SynthesisReport] = None
        for share in shares:
            fitting = [
                r for r in result.feasible if within_budget(
                    r, {
                        kind: cap for kind, cap in budget_caps(
                            share, self.policy.device
                        ).items()
                    }
                )
            ]
            if fitting:
                chosen = max(fitting, key=lambda r: r.alignments_per_sec)
                break
        if chosen is None:
            chosen = max(
                result.feasible, key=lambda r: r.alignments_per_sec
            )
        self._reports[kernel_id] = chosen
        return chosen

    def floor_report(self, kernel_id: int) -> SynthesisReport:
        """The smallest-LUT feasible configuration (the shedding floor)."""
        cached = self._floor_reports.get(kernel_id)
        if cached is not None:
            return cached
        result = self._explore(kernel_id)
        if not result.feasible:
            raise PlanInfeasible(
                f"kernel #{kernel_id} has no feasible configuration on "
                f"{self.policy.device.name}"
            )
        floor = min(result.feasible, key=lambda r: r.total.luts)
        self._floor_reports[kernel_id] = floor
        return floor

    # -- replica sizing (the feedback half) ---------------------------

    def desired_replicas(
        self, signal: KernelSignal, current: int
    ) -> Tuple[int, str]:
        """(desired count, reason) for one kernel from its signal."""
        policy = self.policy
        p99 = signal.latency_p99_ms
        if p99 is None:
            p99 = signal.queue_p99_ms
        current = max(policy.min_replicas, current)
        if signal.rejection_rps > 0:
            desired = min(policy.max_replicas, current * 2)
            return desired, (
                f"rejecting {signal.rejection_rps:.1f}/s — doubling"
            )
        if policy.violated(p99):
            severe = p99 > policy.p99_target_ms * self.severe_factor
            desired = current * 2 if severe else current + 1
            desired = min(policy.max_replicas, desired)
            return desired, (
                f"p99 {p99:.0f}ms > target {policy.p99_target_ms:.0f}ms"
                + (" (severe)" if severe else "")
            )
        if (
            policy.underloaded(p99)
            and signal.backlog == 0
            and current > policy.min_replicas
        ):
            return current - 1, (
                f"p99 {p99:.0f}ms under "
                f"{policy.scale_down_factor:.0%} of target, backlog empty"
            )
        return current, "within band"

    # -- the full plan ------------------------------------------------

    def plan(
        self,
        signals: Mapping[int, KernelSignal],
        current: Optional[Mapping[int, int]] = None,
    ) -> Plan:
        """A fitting fleet target for the observed demand.

        ``current`` (kernel -> live replica count) defaults to the
        replica counts the signals carry.  The returned plan always
        satisfies the inventory constraint or :class:`PlanInfeasible`
        is raised — never a silently oversubscribed plan.
        """
        entries: List[KernelPlan] = []
        for kernel_id, signal in sorted(signals.items()):
            live = (
                current.get(kernel_id, signal.replicas)
                if current is not None else signal.replicas
            )
            desired, _reason = self.desired_replicas(signal, live)
            desired = max(
                self.policy.min_replicas,
                min(self.policy.max_replicas, desired),
            )
            entries.append(KernelPlan.from_report(
                kernel_id, self.replica_report(kernel_id), desired
            ))
        return self._fit(entries)

    def _fit(self, entries: List[KernelPlan]) -> Plan:
        """Enforce the inventory constraint, shedding then shrinking."""
        plan = Plan(kernels=tuple(entries))
        # Shed replicas from the largest holder until the plan fits.
        while not plan.fits(self.policy):
            shrinkable = [
                e for e in plan.kernels
                if e.replicas > self.policy.min_replicas
            ]
            if not shrinkable:
                break
            biggest = max(shrinkable, key=lambda e: (e.replicas, e.kernel_id))
            plan = Plan(kernels=tuple(
                e.with_replicas(e.replicas - 1) if e is biggest else e
                for e in plan.kernels
            ))
        if plan.fits(self.policy):
            return plan
        # Everyone is at the floor count; fall back to the smallest
        # feasible per-replica configuration before giving up.
        plan = Plan(kernels=tuple(
            KernelPlan.from_report(
                e.kernel_id, self.floor_report(e.kernel_id), e.replicas
            )
            for e in plan.kernels
        ))
        while not plan.fits(self.policy):
            shrinkable = [
                e for e in plan.kernels
                if e.replicas > self.policy.min_replicas
            ]
            if not shrinkable:
                break
            biggest = max(shrinkable, key=lambda e: (e.replicas, e.kernel_id))
            plan = Plan(kernels=tuple(
                e.with_replicas(e.replicas - 1) if e is biggest else e
                for e in plan.kernels
            ))
        if not plan.fits(self.policy):
            usage = plan.usage()
            caps = budget_caps(
                self.policy.budget_fraction, self.policy.device
            )
            over = {
                kind: usage[kind] - caps[kind]
                for kind in caps if usage[kind] > caps[kind]
            }
            raise PlanInfeasible(
                f"minimal deployment does not fit "
                f"{self.policy.device.name} at budget "
                f"{self.policy.budget_fraction:.0%}: over by {over}"
            )
        return plan
