"""The SLO policy: what "good" means and how fast we may chase it.

One frozen value object holds every knob of the control loop —
the latency objective, the resource envelope the planner may spend,
the replica bounds, and the hysteresis that keeps the loop from
flapping (a cooldown per kernel plus a hard cap on reconfigurations
per sliding window).  Property tests pin the hysteresis bound; the
planner pins the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.synth.device import XCVU9P, FpgaDevice

__all__ = ["SloPolicy"]


@dataclass(frozen=True)
class SloPolicy:
    """Objective + budget + hysteresis of one autoscale deployment.

    * ``p99_target_ms`` — the latency SLO: windowed p99 above this is a
      violation and asks for capacity;
    * ``scale_down_factor`` — hysteresis band: scale-down is considered
      only when the windowed p99 sits *below* ``factor * target`` (and
      there is no backlog), so the loop never oscillates around the
      threshold it scales up at;
    * ``device`` / ``budget_fraction`` — the inventory the whole
      deployment (every kernel x replica) must fit inside: at most
      ``budget_fraction`` of the device's usable LUT/FF/BRAM/DSP;
    * ``min_replicas`` / ``max_replicas`` — per-kernel replica bounds;
    * ``cooldown_s`` — minimum spacing between actuations of the *same*
      kernel;
    * ``window_s`` / ``max_actions_per_window`` — fleet-wide cap on
      scaling actions inside any sliding window (the anti-flap bound
      the property tests enforce).
    """

    p99_target_ms: float = 250.0
    scale_down_factor: float = 0.25
    min_replicas: int = 1
    max_replicas: int = 8
    cooldown_s: float = 3.0
    window_s: float = 30.0
    max_actions_per_window: int = 8
    budget_fraction: float = 1.0
    device: FpgaDevice = XCVU9P

    def __post_init__(self) -> None:
        if self.p99_target_ms <= 0:
            raise ValueError(
                f"p99_target_ms must be positive, got {self.p99_target_ms}"
            )
        if not 0.0 < self.scale_down_factor < 1.0:
            raise ValueError(
                f"scale_down_factor must be in (0, 1), got "
                f"{self.scale_down_factor}"
            )
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.cooldown_s < 0 or self.window_s <= 0:
            raise ValueError("cooldown_s must be >= 0 and window_s > 0")
        if self.max_actions_per_window < 1:
            raise ValueError(
                f"max_actions_per_window must be >= 1, got "
                f"{self.max_actions_per_window}"
            )
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got "
                f"{self.budget_fraction}"
            )

    def violated(self, p99_ms: Optional[float]) -> bool:
        """Whether a windowed p99 breaks the SLO (no evidence = no)."""
        return p99_ms is not None and p99_ms > self.p99_target_ms

    def underloaded(self, p99_ms: Optional[float]) -> bool:
        """Whether a windowed p99 sits inside the scale-down band."""
        return (
            p99_ms is not None
            and p99_ms < self.p99_target_ms * self.scale_down_factor
        )
