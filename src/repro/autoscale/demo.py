"""The closed-loop demo: shifting load, live SLO recovery, one report.

:func:`run_autoscale_demo` stands up a complete in-process deployment —
a :class:`~repro.service.pool.DevicePool` with one *paced* replica per
kernel, a :class:`~repro.service.server.ServiceCore` over it, and the
full watch->plan->actuate loop of :mod:`repro.autoscale` — then drives
it with a seeded open-loop step profile: baseline traffic for the first
phase, a multiplied arrival rate after the step.  The single replica
saturates, the windowed p99 blows through the SLO, the controller
deploys more replicas (each one a fresh DSE-chosen runtime), and the
recovery phase's p99 comes back under target — all of which the
returned JSON-safe report quantifies phase by phase, so a CI job can
grep for "scaled up AND recovered".

Pacing is what makes the physics honest: each replica's
:class:`~repro.host.runtime.DeviceRuntime` sleeps until the modelled
makespan has elapsed on the wall clock, so a replica really can serve
only ``1/service_time`` batches per second and adding replicas really
adds capacity (the sleep releases the GIL).  ``dry_run=True`` runs the
same loop but only *rehearses* the actions: the pool is never touched,
which also demonstrates what rehearsal mode is for.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.autoscale.actuator import Actuator, default_runtime_factory
from repro.autoscale.controller import AutoscaleController
from repro.autoscale.planner import Planner
from repro.autoscale.policy import SloPolicy
from repro.autoscale.signals import MetricsWatcher
from repro.kernels import get_kernel
from repro.obs.recorder import use_recorder
from repro.service.batcher import BatcherConfig
from repro.service.client import InProcClient, LoadGenerator, LoadProfile
from repro.service.pool import DevicePool
from repro.service.server import ServiceCore

__all__ = ["build_workload", "run_autoscale_demo"]


def build_workload(
    kernels: Sequence[int],
    pairs_per_kernel: int = 32,
    length: int = 48,
    seed: int = 1234,
) -> list:
    """Random (kernel_id, query, reference) tuples over each alphabet."""
    import random

    rng = random.Random(seed)
    workload = []
    for kernel_id in kernels:
        spec = get_kernel(kernel_id)
        cardinality = spec.alphabet.size or 64
        for _ in range(pairs_per_kernel):
            query = tuple(
                rng.randrange(cardinality) for _ in range(length)
            )
            reference = tuple(
                rng.randrange(cardinality) for _ in range(length)
            )
            workload.append((kernel_id, query, reference))
    return workload


def run_autoscale_demo(
    kernels: Sequence[int] = (1,),
    rate_rps: float = 5.0,
    profile: Optional[LoadProfile] = None,
    duration_s: float = 24.0,
    interval_s: float = 1.0,
    slo_ms: float = 400.0,
    max_replicas: int = 6,
    cooldown_s: float = 2.0,
    per_replica_rps: float = 30.0,
    pace: Optional[float] = None,
    max_batch: int = 4,
    length: int = 48,
    backend: str = "compiled",
    dry_run: bool = False,
    seed: int = 7,
    keep_decisions: bool = True,
) -> Dict[str, Any]:
    """Run the closed loop under a shifting load; return the report.

    Per-replica capacity is calibrated, not guessed: a throwaway
    full-size batch is run through the chosen config to measure its
    modelled makespan, and ``pace`` is set so that a *full* batch takes
    ``max_batch / per_replica_rps`` seconds of wall clock (pipeline
    fill makes smaller batches proportionally slower per pair, exactly
    like the device).  Pass ``pace`` explicitly to skip calibration.

    The report's headline fields (``baseline_p99_ms`` /
    ``violation_p99_ms`` / ``recovered_p99_ms`` / ``scale_up_decisions``
    / ``recovered``) are what the CI smoke job asserts on.
    """
    if profile is None:
        profile = LoadProfile(kind="step", t0_s=duration_s / 4.0,
                              multiplier=8.0)
    if duration_s <= 0 or interval_s <= 0:
        raise ValueError("duration_s and interval_s must be positive")
    if per_replica_rps <= 0:
        raise ValueError(
            f"per_replica_rps must be positive, got {per_replica_rps}"
        )

    policy = SloPolicy(
        p99_target_ms=slo_ms,
        min_replicas=1,
        max_replicas=max_replicas,
        cooldown_s=cooldown_s,
        window_s=max(duration_s, 1.0),
        max_actions_per_window=max(8, 2 * max_replicas * len(kernels)),
    )
    planner = Planner(policy, max_query_len=length, max_ref_len=length)
    calibration = build_workload(
        kernels, pairs_per_kernel=max_batch, length=length, seed=seed + 2
    )

    paces: Dict[int, float] = {}
    for kernel_id in kernels:
        report = planner.replica_report(kernel_id)
        if pace is not None:
            paces[kernel_id] = pace
            continue
        probe = default_runtime_factory(
            max_query_len=length, max_ref_len=length, backend=backend,
        )(kernel_id, report.config.n_pe, report.config.n_b)
        pairs = [
            (q, r) for k, q, r in calibration if k == kernel_id
        ][:max_batch]
        outcome = probe.run(pairs)
        modelled_s = (
            outcome.schedule.makespan_cycles / (outcome.clock_mhz * 1e6)
        )
        paces[kernel_id] = (max_batch / per_replica_rps) / max(
            modelled_s, 1e-12
        )

    def factory(kernel_id: int, n_pe: int, n_b: int):
        return default_runtime_factory(
            max_query_len=length, max_ref_len=length, backend=backend,
            pace=paces[kernel_id],
        )(kernel_id, n_pe, n_b)

    # One replica per kernel at the planner's chosen per-replica config
    # — exactly what a scale-up will deploy more of.
    initial = []
    for kernel_id in kernels:
        report = planner.replica_report(kernel_id)
        initial.append(
            factory(kernel_id, report.config.n_pe, report.config.n_b)
        )
    pool = DevicePool(initial)
    core = ServiceCore(
        pool,
        config=BatcherConfig(max_batch=max_batch, max_delay_ms=15.0,
                             max_queue_depth=64),
        dispatchers=max(4, max_replicas * len(kernels) + 2),
    )

    watcher = MetricsWatcher(core.metrics_snapshot)
    actuator = Actuator(pool, runtime_factory=factory, dry_run=dry_run)
    controller = AutoscaleController(watcher, planner, actuator)

    replicas_initial = dict(pool.replica_counts())
    workload = build_workload(kernels, length=length, seed=seed + 1)

    with use_recorder(core.recorder):
        with core:
            watcher.sample()  # establish the first window's baseline
            controller.start(interval_s=interval_s)
            try:
                generator = LoadGenerator(
                    InProcClient(core), workload, seed=seed
                )
                report = generator.run(
                    rate_rps,
                    duration_s=duration_s,
                    profile=profile,
                    result_timeout=max(120.0, 10.0 * duration_s),
                )
            finally:
                controller.stop()

    # Phase-wise percentiles: the step splits the run into baseline /
    # violation (right after the step) / recovery (the tail third).
    bounds = profile.phase_bounds()
    step_at = bounds[0] if bounds else duration_s / 4.0
    tail = max(interval_s, (duration_s - step_at) / 3.0)
    baseline_p99 = report.window_percentile_ms(0.0, step_at, 0.99)
    violation_p99 = report.window_percentile_ms(
        step_at, duration_s - tail, 0.99
    )
    recovered_p99 = report.window_percentile_ms(
        duration_s - tail, math.inf, 0.99
    )

    scale_ups = sum(1 for d in controller.decisions if d.scaled_up)
    scale_downs = sum(1 for d in controller.decisions if d.scaled_down)
    recovered = recovered_p99 is not None and recovered_p99 <= slo_ms

    result: Dict[str, Any] = {
        "schema": "autoscale-demo/v1",
        "slo_target_ms": slo_ms,
        "profile": profile.describe(),
        "offered_rps": rate_rps,
        "duration_s": duration_s,
        "interval_s": interval_s,
        "per_replica_rps": per_replica_rps,
        "pace": {str(k): round(v, 3) for k, v in paces.items()},
        "backend": backend,
        "dry_run": dry_run,
        "kernels": list(kernels),
        "sent": report.sent,
        "ok": report.ok,
        "rejected": report.rejected,
        "errors": report.errors,
        "baseline_p99_ms": baseline_p99,
        "violation_p99_ms": violation_p99,
        "recovered_p99_ms": recovered_p99,
        "slo_violated": policy.violated(violation_p99),
        "recovered": recovered,
        "scale_up_decisions": scale_ups,
        "scale_down_decisions": scale_downs,
        "replicas_initial": {
            str(k): v for k, v in replicas_initial.items()
        },
        "replicas_final": {
            str(k): v for k, v in pool.replica_counts().items()
        },
    }
    if keep_decisions:
        result["decisions"] = [d.to_dict() for d in controller.decisions]
    return result
