"""The actuator: reconciling a live :class:`DevicePool` to a plan.

Given a :class:`~repro.autoscale.planner.Plan`, the actuator compares
desired replica counts against the pool's routable members and issues
the minimal set of membership operations:

* scale-up deploys fresh runtimes (built by a ``runtime_factory`` so
  the caller chooses backend, pacing and parameters) via
  :meth:`~repro.service.pool.DevicePool.add_member`;
* scale-down retires the *newest* member via
  :meth:`~repro.service.pool.DevicePool.retire_member`, inheriting its
  drain-before-retire guarantee — in-flight work always completes.

``dry_run=True`` computes and reports the same actions without touching
the pool — the planning half of the loop can be rehearsed against a
production service with zero actuation risk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.autoscale.planner import KernelPlan, Plan
from repro.host.runtime import DeviceRuntime
from repro.kernels import get_kernel
from repro.obs.recorder import get_recorder
from repro.service.pool import DevicePool
from repro.synth.compiler import LaunchConfig

__all__ = ["Action", "Actuator", "default_runtime_factory"]

#: Builds a deployable runtime for (kernel_id, n_pe, n_b).
RuntimeFactory = Callable[[int, int, int], DeviceRuntime]


def default_runtime_factory(
    max_query_len: int = 64,
    max_ref_len: int = 64,
    backend: str = "compiled",
    pace: Optional[float] = None,
    params_by_kernel: Optional[Dict[int, Any]] = None,
) -> RuntimeFactory:
    """A :data:`RuntimeFactory` over the kernel registry.

    Every deployed replica is a single-channel (``N_K = 1``) runtime at
    the planned (N_PE, N_B) sizing.  ``pace`` forwards to
    :class:`~repro.host.runtime.DeviceRuntime` so scaled-up replicas
    model the same wall-clock service time as the incumbents.
    """
    params_by_kernel = params_by_kernel or {}

    def build(kernel_id: int, n_pe: int, n_b: int) -> DeviceRuntime:
        spec = get_kernel(kernel_id)
        return DeviceRuntime(
            spec,
            LaunchConfig(
                n_pe=n_pe, n_b=n_b, n_k=1,
                max_query_len=max_query_len, max_ref_len=max_ref_len,
            ),
            params=params_by_kernel.get(kernel_id),
            backend=backend,
            pace=pace,
        )

    return build


@dataclass(frozen=True)
class Action:
    """One membership operation the actuator performed (or rehearsed)."""

    kind: str          #: "add" or "retire"
    kernel_id: int
    member: str        #: member name involved ("" for dry-run adds)
    n_pe: int
    n_b: int
    dry_run: bool
    ok: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (decision logs, the demo report)."""
        return {
            "kind": self.kind,
            "kernel_id": self.kernel_id,
            "member": self.member,
            "n_pe": self.n_pe,
            "n_b": self.n_b,
            "dry_run": self.dry_run,
            "ok": self.ok,
            "detail": self.detail,
        }


class Actuator:
    """Applies plans to a live pool, one membership delta at a time."""

    def __init__(
        self,
        pool: DevicePool,
        runtime_factory: Optional[RuntimeFactory] = None,
        dry_run: bool = False,
        drain_timeout_s: float = 30.0,
    ) -> None:
        self.pool = pool
        self.runtime_factory = runtime_factory or default_runtime_factory()
        self.dry_run = dry_run
        self.drain_timeout_s = drain_timeout_s

    def _apply_kernel(self, entry: KernelPlan) -> List[Action]:
        recorder = get_recorder()
        actions: List[Action] = []
        current = len(self.pool.active_members(entry.kernel_id))
        delta = entry.replicas - current
        if delta > 0:
            for _ in range(delta):
                if self.dry_run:
                    actions.append(Action(
                        kind="add", kernel_id=entry.kernel_id, member="",
                        n_pe=entry.n_pe, n_b=entry.n_b, dry_run=True,
                        ok=True, detail="rehearsed",
                    ))
                    continue
                try:
                    runtime = self.runtime_factory(
                        entry.kernel_id, entry.n_pe, entry.n_b
                    )
                    member = self.pool.add_member(runtime)
                    actions.append(Action(
                        kind="add", kernel_id=entry.kernel_id,
                        member=member.name, n_pe=entry.n_pe, n_b=entry.n_b,
                        dry_run=False, ok=True,
                    ))
                except Exception as exc:  # deploy failures are reported,
                    actions.append(Action(  # never raised into the loop
                        kind="add", kernel_id=entry.kernel_id, member="",
                        n_pe=entry.n_pe, n_b=entry.n_b, dry_run=False,
                        ok=False, detail=str(exc),
                    ))
                    break
        elif delta < 0:
            for _ in range(-delta):
                members = self.pool.active_members(entry.kernel_id)
                if len(members) <= 1:
                    break
                newest = members[-1]
                if self.dry_run:
                    actions.append(Action(
                        kind="retire", kernel_id=entry.kernel_id,
                        member=newest.name, n_pe=entry.n_pe, n_b=entry.n_b,
                        dry_run=True, ok=True, detail="rehearsed",
                    ))
                    continue
                try:
                    self.pool.retire_member(
                        newest.name, timeout_s=self.drain_timeout_s
                    )
                    actions.append(Action(
                        kind="retire", kernel_id=entry.kernel_id,
                        member=newest.name, n_pe=entry.n_pe, n_b=entry.n_b,
                        dry_run=False, ok=True,
                    ))
                except Exception as exc:
                    actions.append(Action(
                        kind="retire", kernel_id=entry.kernel_id,
                        member=newest.name, n_pe=entry.n_pe, n_b=entry.n_b,
                        dry_run=False, ok=False, detail=str(exc),
                    ))
                    break
        for action in actions:
            suffix = "dry_run" if action.dry_run else action.kind
            recorder.count(f"autoscale.actions_{suffix}_total")
        return actions

    def apply(self, plan: Plan) -> List[Action]:
        """Reconcile the pool to ``plan``; returns the actions taken.

        Kernels absent from the plan are left untouched.  In dry-run
        mode the same action list is computed and counted but the pool
        is not mutated.
        """
        actions: List[Action] = []
        for entry in plan.kernels:
            actions.extend(self._apply_kernel(entry))
        return actions
