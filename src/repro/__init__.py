"""DP-HLS reproduction: a framework for 2-D dynamic programming kernels.

A Python reimplementation of the DP-HLS system (HPCA 2026): users describe
a 2-D DP kernel — alphabet, scoring layers, per-cell recurrence, traceback
FSM, banding — through the *front-end* (:mod:`repro.core`), and the
*back-end* maps it onto a modelled FPGA linear systolic array:

* :func:`align` runs a sequence pair through a register-accurate systolic
  simulation and returns score, alignment and cycle counts;
* :func:`synthesize` produces a Vitis-style report (LUT/FF/BRAM/DSP, II,
  Fmax, throughput) for a chosen (N_PE, N_B, N_K) configuration.

Quickstart::

    from repro import align, get_kernel, synthesize, LaunchConfig
    from repro.core.alphabet import encode_dna

    kernel = get_kernel("global_affine")           # Table 1's kernel #2
    result = align(kernel, encode_dna("ACGTAC"), encode_dna("AGTACC"))
    print(result.score, result.cigar)

    report = synthesize(kernel, LaunchConfig(n_pe=32, n_b=16, n_k=4))
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-model comparison of every table and figure.
"""

from repro.api import Pipeline, RunOptions, Stage, map_flowcell, serve
from repro.core import (
    Alignment,
    AlignmentResult,
    CycleReport,
    EndRule,
    KernelSpec,
    Move,
    Objective,
    PEInput,
    StartRule,
    TracebackSpec,
)
from repro.kernels import KERNELS, get_kernel, is_registered, kernel_ids, list_kernels
from repro.parallel import BatchResult, ParallelExecutor, WorkError, run_batch
from repro.reference import oracle_align
from repro.synth import LaunchConfig, SynthesisReport, synthesize
from repro.systolic import align
from repro.tiling import tiled_align

__version__ = "1.3.0"

__all__ = [
    "align",
    "serve",
    "map_flowcell",
    "oracle_align",
    "synthesize",
    "tiled_align",
    "Stage",
    "Pipeline",
    "RunOptions",
    "ParallelExecutor",
    "run_batch",
    "BatchResult",
    "WorkError",
    "get_kernel",
    "is_registered",
    "kernel_ids",
    "list_kernels",
    "KERNELS",
    "KernelSpec",
    "LaunchConfig",
    "SynthesisReport",
    "Alignment",
    "AlignmentResult",
    "CycleReport",
    "Move",
    "Objective",
    "StartRule",
    "EndRule",
    "TracebackSpec",
    "PEInput",
    "__version__",
]
