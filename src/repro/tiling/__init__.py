"""Host-side tiling for long alignments (Section 4, step 1.4 and §7.3).

The device kernels are synthesised for fixed maximum sequence lengths;
longer reads are handled by the GACT tiling heuristic [Darwin, Turakhia et
al.]: align a tile globally, commit the traceback path up to an overlap
margin from the tile edge, then slide the tile along the committed path.
"""

from repro.tiling.gact import (
    TiledAlignment,
    commit_moves,
    expected_tiles,
    tiled_align,
)

__all__ = ["TiledAlignment", "tiled_align", "commit_moves", "expected_tiles"]
