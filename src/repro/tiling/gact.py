"""GACT-style tiled alignment over a fixed-size device kernel.

``tiled_align`` reproduces the host-side modification the paper applies to
kernel #2 for long reads: each iteration aligns a ``tile_size`` window of
both sequences globally on the device, commits the recovered path until
one sequence has consumed ``tile_size - overlap`` symbols, and restarts
the next tile from the committed endpoint.  The ``overlap`` margin lets
consecutive tile paths converge to the unconstrained optimum [Darwin].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.result import Alignment, CycleReport, Move
from repro.core.spec import KernelSpec, StartRule
from repro.systolic.engine import align


@dataclass
class TiledAlignment:
    """A stitched long alignment plus tiling statistics."""

    alignment: Alignment
    n_tiles: int
    total_cycles: int
    tile_reports: Tuple[CycleReport, ...]

    @property
    def cigar(self) -> str:
        """CIGAR of the stitched path."""
        return self.alignment.cigar


def tiled_align(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    params: Any = None,
    tile_size: int = 128,
    overlap: int = 32,
    n_pe: int = 32,
) -> TiledAlignment:
    """Align sequences longer than the device maximum by GACT tiling.

    The kernel must be a *global* strategy (traceback from the
    bottom-right), since each tile is aligned end-to-end.
    """
    if spec.traceback is None:
        raise ValueError(f"{spec.name}: tiling requires a traceback kernel")
    if spec.start_rule is not StartRule.BOTTOM_RIGHT:
        raise ValueError(
            f"{spec.name}: GACT tiling requires a global kernel "
            f"(start rule {spec.start_rule.value!r} unsupported)"
        )
    if not 0 < overlap < tile_size:
        raise ValueError(
            f"need 0 < overlap < tile_size, got overlap={overlap}, "
            f"tile_size={tile_size}"
        )

    qi, ri = 0, 0
    moves: List[Move] = []
    reports: List[CycleReport] = []
    commit_limit = tile_size - overlap
    while qi < len(query) and ri < len(reference):
        q_tile = query[qi:qi + tile_size]
        r_tile = reference[ri:ri + tile_size]
        last_tile = (qi + len(q_tile) >= len(query)) and (
            ri + len(r_tile) >= len(reference)
        )
        result = align(
            spec, q_tile, r_tile, params=params, n_pe=n_pe,
            max_query_len=tile_size, max_ref_len=tile_size,
        )
        reports.append(result.cycles)
        assert result.alignment is not None
        q_used, r_used, committed = _commit(
            result.alignment.moves,
            limit=None if last_tile else commit_limit,
        )
        if not committed:
            raise RuntimeError(
                f"{spec.name}: tile at ({qi}, {ri}) committed no moves; "
                f"increase tile_size ({tile_size}) relative to overlap "
                f"({overlap})"
            )
        moves.extend(committed)
        qi += q_used
        ri += r_used
        if last_tile:
            break
    # Trailing unconsumed symbols (length mismatch at the very end).
    moves.extend([Move.DEL] * (len(query) - qi))
    moves.extend([Move.INS] * (len(reference) - ri))
    alignment = Alignment(
        moves=tuple(moves),
        query_start=0,
        query_end=len(query),
        ref_start=0,
        ref_end=len(reference),
    )
    return TiledAlignment(
        alignment=alignment,
        n_tiles=len(reports),
        total_cycles=sum(r.total for r in reports),
        tile_reports=tuple(reports),
    )


def commit_moves(
    moves: Sequence[Move], limit: Optional[int]
) -> Tuple[int, int, List[Move]]:
    """Commit a tile's moves until either sequence consumed ``limit``
    symbols (``limit=None`` commits everything — the last tile).

    Returns ``(q_used, r_used, committed)``.  Shared by the sequential
    :func:`tiled_align` and the pipeline's batched-across-reads tiler
    (:mod:`repro.pipeline.extend`), which must stitch identically.
    """
    return _commit(moves, limit)


def _commit(
    moves: Sequence[Move], limit: Optional[int]
) -> Tuple[int, int, List[Move]]:
    """Commit moves until either sequence consumed ``limit`` symbols."""
    q_used = r_used = 0
    committed: List[Move] = []
    for move in moves:
        if limit is not None and (q_used >= limit or r_used >= limit):
            break
        if move is Move.MATCH:
            q_used += 1
            r_used += 1
        elif move is Move.DEL:
            q_used += 1
        elif move is Move.INS:
            r_used += 1
        else:
            continue
        committed.append(move)
    return q_used, r_used, committed


def expected_tiles(
    query_len: int, ref_len: int, tile_size: int = 128, overlap: int = 32
) -> int:
    """Closed-form tile count for the throughput model (same as GACT)."""
    if not 0 < overlap < tile_size:
        raise ValueError("need 0 < overlap < tile_size")
    span = max(query_len, ref_len)
    step = tile_size - overlap
    if span <= tile_size:
        return 1
    return 1 + -(-(span - tile_size) // step)
