"""Differential fuzzing of the systolic engine against its oracles.

The paper trusts its generated kernels because C-simulation cross-checks
them against known-good software.  This module is that step at campaign
scale: seeded random sequence pairs (randomized lengths and PE counts,
workload-realistic content) are pushed through four independent
implementations —

* the full systolic engine (:func:`repro.systolic.engine.align`),
* the compiled wavefront backend (:func:`repro.backend.compiled_align`),
* the row-major oracle (:func:`repro.reference.dp_oracle.oracle_align`),
* the textbook reference (:func:`repro.reference.dispatch.classic_score`),

and any disagreement on score, traceback start cell or move sequence is
recorded.  Engine-vs-oracle checks use score tolerance where the
references are float-based; the systolic-vs-compiled leg is *strict*
bit-identity — any divergence is reported as a ``backend_*`` failure
whose detail is the full three-way disagreement triple
(``systolic=... compiled=... oracle=...``).  A fifth leg re-runs every
kernel's cases as *one* :func:`repro.backend.compiled_align_batch`
lockstep sweep (mixed lengths, per-case PE counts) and compares each
slot bit-identically against the per-pair compiled result — any
divergence is a ``batched_*`` failure.  A failing case is then *shrunk* — query and reference are
greedily truncated and thinned while the failure persists — so every
mismatch lands as a minimal reproducer ready to paste into a regression
test (see ``tests/test_fuzz_regressions.py``).

Corpus generation is a pure function of ``(kernels, cases, seed)`` via
:func:`repro.parallel.derive_seed`, so the same seed always yields a
byte-identical corpus and a report that is independent of ``workers``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import compiled_align, compiled_align_batch
from repro.cache.fingerprint import fingerprint, sequence_blob
from repro.core.spec import StartRule
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel, kernel_ids
from repro.parallel import ParallelExecutor, derive_seed
from repro.reference.dispatch import classic_score
from repro.reference.dp_oracle import oracle_align
from repro.systolic.engine import align

#: PE counts a fuzz case may run the engine at — deliberately including
#: odd widths and widths larger than typical query lengths.
N_PE_CHOICES = (1, 2, 3, 4, 5, 8, 16)

#: Score tolerance when comparing against the float textbook references
#: (matches the campaign's fixed-point tolerance).
DEFAULT_ATOL = 1e-2


@dataclass(frozen=True)
class FuzzCase:
    """One randomized differential-test input."""

    kernel_id: int
    case_seed: int
    query: Tuple[Any, ...]
    reference: Tuple[Any, ...]
    n_pe: int

    def describe(self) -> str:
        """Compact one-line identification of the case."""
        return (
            f"kernel #{self.kernel_id} n_pe={self.n_pe} "
            f"|Q|={len(self.query)} |R|={len(self.reference)} "
            f"seed={self.case_seed}"
        )


@dataclass(frozen=True)
class FuzzFailure:
    """One differential check a case failed."""

    check: str
    detail: str


@dataclass(frozen=True)
class FuzzMismatch:
    """A failing case plus its shrunk minimal reproducer."""

    case: FuzzCase
    failure: FuzzFailure
    shrunk_query: Tuple[Any, ...]
    shrunk_reference: Tuple[Any, ...]
    shrink_rounds: int

    def summary(self) -> str:
        """Mismatch description plus the paste-ready minimal reproducer."""
        return (
            f"{self.case.describe()}: [{self.failure.check}] "
            f"{self.failure.detail}\n"
            f"    shrunk to |Q|={len(self.shrunk_query)} "
            f"|R|={len(self.shrunk_reference)} "
            f"after {self.shrink_rounds} rounds\n"
            f"    query={self.shrunk_query!r}\n"
            f"    reference={self.shrunk_reference!r}"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    seed: int
    cases_by_kernel: Dict[int, int] = field(default_factory=dict)
    mismatches: List[FuzzMismatch] = field(default_factory=list)
    harness_errors: List[str] = field(default_factory=list)
    batched_pairs: int = 0
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def total_cases(self) -> int:
        """Number of cases executed across all kernels."""
        return sum(self.cases_by_kernel.values())

    @property
    def passed(self) -> bool:
        """No differential mismatch and no harness crash."""
        return not self.mismatches and not self.harness_errors

    def summary(self) -> str:
        """Deterministic report text (identical for any worker count)."""
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"fuzz campaign: {status} — {self.total_cases} cases across "
            f"{len(self.cases_by_kernel)} kernels (seed {self.seed}), "
            f"{len(self.mismatches)} mismatches"
        ]
        if self.batched_pairs:
            batched_bad = sum(
                1 for m in self.mismatches
                if m.failure.check.startswith("batched_")
            )
            lines.append(
                f"  batched-vs-single differential: {self.batched_pairs} "
                f"pairs, {batched_bad} batch mismatches"
            )
        for kid in sorted(self.cases_by_kernel):
            lines.append(
                f"  kernel #{kid:>2} {get_kernel(kid).name:28s} "
                f"{self.cases_by_kernel[kid]:>5} cases"
            )
        for mismatch in self.mismatches:
            lines.append("  " + mismatch.summary().replace("\n", "\n  "))
        for error in self.harness_errors:
            lines.append(f"  harness error: {error}")
        return "\n".join(lines)


def _needs_equal_band(spec) -> bool:
    """Banded global kernels constrain |Q| - |R| to the band width."""
    return spec.banding is not None and spec.start_rule is StartRule.BOTTOM_RIGHT


def _random_length(rng: np.random.RandomState, limit: int) -> int:
    """A length in [1, limit], biased toward the small edge cases."""
    if limit <= 1:
        return 1
    if rng.rand() < 0.25:
        return int(rng.randint(1, min(5, limit) + 1))
    return int(rng.randint(1, limit + 1))


def generate_case(kernel_id: int, case_seed: int, max_len: int = 32) -> FuzzCase:
    """Build one deterministic randomized case for a kernel.

    Content comes from the kernel's stock workload generator (so profile,
    signal and protein kernels all get valid substrates); lengths and the
    PE count are randomized here, honouring banded-global length
    constraints.
    """
    spec = get_kernel(kernel_id)
    rng = np.random.RandomState(case_seed % (2 ** 32))
    base_query, base_reference = WORKLOADS[kernel_id].make_pairs(
        1, seed=int(case_seed % (2 ** 31))
    )[0]
    qlen = _random_length(rng, min(max_len, len(base_query)))
    rlen = _random_length(rng, min(max_len, len(base_reference)))
    if _needs_equal_band(spec):
        qlen = rlen = min(qlen, rlen)
    return FuzzCase(
        kernel_id=kernel_id,
        case_seed=case_seed,
        query=tuple(base_query[:qlen]),
        reference=tuple(base_reference[:rlen]),
        n_pe=int(rng.choice(N_PE_CHOICES)),
    )


def make_corpus(
    kernels: Optional[Sequence[int]] = None,
    cases_per_kernel: int = 10,
    seed: int = 0,
    max_len: int = 32,
) -> List[FuzzCase]:
    """Deterministic corpus: same arguments, byte-identical cases."""
    if cases_per_kernel < 1:
        raise ValueError(
            f"cases_per_kernel must be >= 1, got {cases_per_kernel}"
        )
    kids = sorted(kernels) if kernels is not None else kernel_ids()
    corpus: List[FuzzCase] = []
    counter = 0
    for kid in kids:
        for _ in range(cases_per_kernel):
            corpus.append(
                generate_case(kid, derive_seed(seed, counter), max_len=max_len)
            )
            counter += 1
    return corpus


def case_fingerprint(case: FuzzCase) -> str:
    """Content-addressed key of one fuzz case.

    Built from the same canonical machinery as the alignment cache
    (:mod:`repro.cache.fingerprint`), so a recorded reproducer and a
    served request over the same inputs share one keying discipline.
    """
    return fingerprint({
        # Version stamp of the differential harness a recorded reproducer
        # was found under ("four_way_v1" = systolic vs compiled vs oracle
        # plus the batched-vs-single compiled leg); bumping it retires
        # stale recorded digests explicitly.
        "harness": "four_way_v1",
        "kernel_id": case.kernel_id,
        "case_seed": case.case_seed,
        "n_pe": case.n_pe,
        "query": sequence_blob(case.query),
        "reference": sequence_blob(case.reference),
    })


def corpus_digest(corpus: Sequence[FuzzCase]) -> str:
    """SHA-256 over the per-case fingerprints (regression anchor)."""
    blob = hashlib.sha256()
    for case in corpus:
        blob.update(case_fingerprint(case).encode("ascii"))
        blob.update(b"\n")
    return blob.hexdigest()


def case_failures(
    case: FuzzCase,
    align_fn: Optional[Callable[..., Any]] = None,
    atol: float = DEFAULT_ATOL,
) -> List[FuzzFailure]:
    """Run every differential check on one case.

    ``align_fn`` substitutes for the systolic engine (tests inject faulty
    engines to exercise the shrinker); oracle/textbook failures propagate
    as exceptions because they mean the harness itself is broken.

    The engine leg is followed by a strict three-way backend leg: the
    compiled wavefront backend must reproduce the engine's score, start
    cell, move sequence and cycle totals *bit-identically* (no
    tolerance).  Disagreements are reported as ``backend_*`` failures
    whose detail carries the full systolic/compiled/oracle triple.
    """
    engine = align_fn if align_fn is not None else align
    spec = get_kernel(case.kernel_id)
    failures: List[FuzzFailure] = []

    expected = oracle_align(spec, case.query, case.reference)
    textbook = classic_score(case.kernel_id, case.query, case.reference)
    if not np.isclose(expected.score, textbook, atol=atol):
        failures.append(FuzzFailure(
            "oracle_vs_textbook",
            f"oracle {expected.score} != textbook {textbook}",
        ))

    try:
        actual = engine(
            spec, case.query, case.reference, n_pe=case.n_pe
        )
    except Exception as exc:  # noqa: BLE001 - an engine crash is a finding
        failures.append(FuzzFailure(
            "engine_exception", f"{type(exc).__name__}: {exc}"
        ))
        return failures

    if not np.isclose(actual.score, expected.score):
        failures.append(FuzzFailure(
            "engine_score",
            f"systolic {actual.score} != oracle {expected.score}",
        ))
        return failures
    if actual.start != expected.start:
        failures.append(FuzzFailure(
            "engine_start_cell",
            f"systolic {actual.start} != oracle {expected.start}",
        ))
    if spec.has_traceback:
        ours = actual.alignment.moves if actual.alignment else None
        theirs = expected.alignment.moves if expected.alignment else None
        if ours != theirs:
            failures.append(FuzzFailure(
                "engine_traceback", "recovered move sequences differ"
            ))

    # ------------------------------------------------------------------
    # compiled-backend leg: strict bit-identity against the engine, with
    # the oracle as the third voice of the disagreement triple.
    # ------------------------------------------------------------------
    try:
        lowered = compiled_align(
            spec, case.query, case.reference, n_pe=case.n_pe
        )
    except Exception as exc:  # noqa: BLE001 - a backend crash is a finding
        failures.append(FuzzFailure(
            "compiled_exception", f"{type(exc).__name__}: {exc}"
        ))
        return failures
    if lowered.score != actual.score:
        failures.append(FuzzFailure(
            "backend_score",
            f"systolic={actual.score} compiled={lowered.score} "
            f"oracle={expected.score}",
        ))
        return failures
    if lowered.start != actual.start:
        failures.append(FuzzFailure(
            "backend_start_cell",
            f"systolic={actual.start} compiled={lowered.start} "
            f"oracle={expected.start}",
        ))
    if spec.has_traceback:
        compiled_moves = lowered.alignment.moves if lowered.alignment else None
        if compiled_moves != ours:
            failures.append(FuzzFailure(
                "backend_traceback",
                f"systolic={_moves_str(ours)} "
                f"compiled={_moves_str(compiled_moves)} "
                f"oracle={_moves_str(theirs)}",
            ))
    if (
        actual.cycles is not None
        and lowered.cycles is not None
        and lowered.cycles != actual.cycles
    ):
        failures.append(FuzzFailure(
            "backend_cycles",
            f"systolic={actual.cycles.total} compiled={lowered.cycles.total}",
        ))
    return failures


def _moves_str(moves) -> str:
    """Compact CIGAR-like rendering of a move tuple for triple details."""
    if moves is None:
        return "<none>"
    return "".join(move.value for move in moves) or "<empty>"


def _valid_candidate(spec, query: tuple, reference: tuple) -> bool:
    if not query or not reference:
        return False
    if _needs_equal_band(spec):
        return abs(len(query) - len(reference)) <= spec.banding
    return True


def _shrink_candidates(query: tuple, reference: tuple):
    """Yield (query, reference) reductions, most aggressive first."""
    for side in ("query", "reference"):
        seq = query if side == "query" else reference
        reductions = []
        half = len(seq) // 2
        if half >= 1:
            reductions.append(seq[:half])   # front half
            reductions.append(seq[half:])   # back half
        if len(seq) > 1:
            reductions.append(seq[1:])      # drop first symbol
            reductions.append(seq[:-1])     # drop last symbol
            for pos in range(1, len(seq) - 1):
                reductions.append(seq[:pos] + seq[pos + 1:])
        for reduced in reductions:
            if side == "query":
                yield reduced, reference
            else:
                yield query, reduced


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_rounds: int = 64,
) -> Tuple[FuzzCase, int]:
    """Greedily minimize a failing case while ``still_fails`` holds.

    Each round tries progressively gentler reductions of the query and
    reference (halving, then single-symbol deletions) and restarts from
    the first one that still fails; shrinking stops when a full round
    yields no failing reduction (a local minimum) or after ``max_rounds``.
    Returns the minimal case and the number of accepted reductions.
    """
    spec = get_kernel(case.kernel_id)
    current = case
    rounds = 0
    while rounds < max_rounds:
        improved = False
        for query, reference in _shrink_candidates(
            current.query, current.reference
        ):
            if not _valid_candidate(spec, query, reference):
                continue
            candidate = FuzzCase(
                kernel_id=current.kernel_id,
                case_seed=current.case_seed,
                query=query,
                reference=reference,
                n_pe=current.n_pe,
            )
            try:
                failing = still_fails(candidate)
            except Exception:  # noqa: BLE001 - malformed reduction, skip
                failing = False
            if failing:
                current = candidate
                rounds += 1
                improved = True
                break
        if not improved:
            break
    return current, rounds


def _compare_batched(single, batched) -> List[FuzzFailure]:
    """Strict bit-identity checks between a per-pair compiled result and
    the same pair's slot in a batched sweep (no tolerance anywhere)."""
    failures: List[FuzzFailure] = []
    if batched.score != single.score or (
        type(batched.score) is not type(single.score)
    ):
        failures.append(FuzzFailure(
            "batched_score",
            f"single={single.score!r} batched={batched.score!r}",
        ))
        return failures
    if batched.start != single.start or batched.end != single.end:
        failures.append(FuzzFailure(
            "batched_start_cell",
            f"single={single.start}/{single.end} "
            f"batched={batched.start}/{batched.end}",
        ))
    single_moves = single.alignment.moves if single.alignment else None
    batched_moves = batched.alignment.moves if batched.alignment else None
    if single_moves != batched_moves:
        failures.append(FuzzFailure(
            "batched_traceback",
            f"single={_moves_str(single_moves)} "
            f"batched={_moves_str(batched_moves)}",
        ))
    if batched.cycles != single.cycles:
        failures.append(FuzzFailure(
            "batched_cycles",
            f"single={single.cycles.total if single.cycles else None} "
            f"batched={batched.cycles.total if batched.cycles else None}",
        ))
    return failures


def _batched_failures(
    corpus: Sequence[FuzzCase],
) -> Tuple[int, List[Tuple[FuzzCase, FuzzFailure]]]:
    """Batched-vs-single differential over a whole corpus.

    Each kernel's cases run as *one* ``compiled_align_batch`` sweep
    (mixed lengths and per-case PE counts, exactly as the service's
    batcher would hand them over) and every slot is compared strictly
    against a fresh per-pair ``compiled_align``.  Cases whose single-pair
    run raises are skipped here — the per-case compiled leg already
    reports them.
    """
    failures: List[Tuple[FuzzCase, FuzzFailure]] = []
    pairs_checked = 0
    by_kernel: Dict[int, List[FuzzCase]] = {}
    for case in corpus:
        by_kernel.setdefault(case.kernel_id, []).append(case)
    for kid in sorted(by_kernel):
        spec = get_kernel(kid)
        singles = []
        runnable = []
        for case in by_kernel[kid]:
            try:
                singles.append(compiled_align(
                    spec, case.query, case.reference, n_pe=case.n_pe
                ))
            except Exception:  # noqa: BLE001 - reported by the single leg
                continue
            runnable.append(case)
        if not runnable:
            continue
        try:
            batched = compiled_align_batch(
                spec,
                [(case.query, case.reference) for case in runnable],
                n_pe=[case.n_pe for case in runnable],
            )
        except Exception as exc:  # noqa: BLE001 - a batch crash is a finding
            failures.append((runnable[0], FuzzFailure(
                "batched_exception",
                f"{type(exc).__name__}: {exc} "
                f"(batch of {len(runnable)}, singles all succeeded)",
            )))
            continue
        pairs_checked += len(runnable)
        for case, single, slot in zip(runnable, singles, batched):
            for failure in _compare_batched(single, slot):
                failures.append((case, failure))
    return pairs_checked, failures


def _fuzz_task(case: FuzzCase, _seed: int) -> List[Tuple[str, str]]:
    """Worker-side check of one case (picklable input and output)."""
    return [(f.check, f.detail) for f in case_failures(case)]


def run_corpus(
    corpus: Sequence[FuzzCase],
    seed: int = 0,
    workers: int = 1,
    align_fn: Optional[Callable[..., Any]] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Differentially test every case in a corpus, shrinking failures.

    ``align_fn`` forces the serial path (an injected engine does not cross
    process boundaries) — used by tests to fault-inject; it also skips
    the batched-vs-single leg, which exists to check the real compiled
    backend against itself, not an injected fake.
    """
    started = time.perf_counter()
    report = FuzzReport(seed=seed)
    for case in corpus:
        report.cases_by_kernel[case.kernel_id] = (
            report.cases_by_kernel.get(case.kernel_id, 0) + 1
        )

    if align_fn is not None:
        outcomes = [
            (case, [(f.check, f.detail) for f in case_failures(case, align_fn)])
            for case in corpus
        ]
    else:
        executor = ParallelExecutor(workers=workers)
        batch = executor.map(_fuzz_task, list(corpus), seed=seed)
        outcomes = []
        for case, outcome in zip(corpus, batch.outcomes):
            if outcome.ok:
                outcomes.append((case, outcome.value))
            else:
                report.harness_errors.append(
                    f"{case.describe()}: {outcome.error.error_type}: "
                    f"{outcome.error.message}"
                )

    for case, failures in outcomes:
        for check, detail in failures:
            failure = FuzzFailure(check, detail)
            if shrink:
                def reproduces(candidate: FuzzCase, _check=check) -> bool:
                    return any(
                        f.check == _check
                        for f in case_failures(candidate, align_fn)
                    )

                minimal, rounds = shrink_case(case, reproduces)
            else:
                minimal, rounds = case, 0
            report.mismatches.append(FuzzMismatch(
                case=case,
                failure=failure,
                shrunk_query=minimal.query,
                shrunk_reference=minimal.reference,
                shrink_rounds=rounds,
            ))

    # ------------------------------------------------------------------
    # batched-vs-single leg: every kernel's cases as one lockstep sweep,
    # slots compared bit-identically to fresh per-pair compiled runs.
    # Not shrunk — the reproducer is the whole batch, and the per-pair
    # inputs are already minimal fuzz cases.
    # ------------------------------------------------------------------
    if align_fn is None:
        pairs_checked, batched_failures = _batched_failures(corpus)
        report.batched_pairs = pairs_checked
        for case, failure in batched_failures:
            report.mismatches.append(FuzzMismatch(
                case=case,
                failure=failure,
                shrunk_query=case.query,
                shrunk_reference=case.reference,
                shrink_rounds=0,
            ))
    report.elapsed_s = time.perf_counter() - started
    return report


def fuzz(
    kernels: Optional[Sequence[int]] = None,
    cases_per_kernel: int = 10,
    seed: int = 0,
    workers: int = 1,
    max_len: int = 32,
    budget_s: Optional[float] = None,
) -> FuzzReport:
    """Top-level fuzzing entry point (the ``repro fuzz`` command).

    Fixed-size mode runs ``cases_per_kernel`` cases for every kernel.
    With ``budget_s``, rounds of fresh cases keep running until the time
    budget is spent (at least one round always completes); case seeds keep
    advancing across rounds so no input repeats.
    """
    kids = sorted(kernels) if kernels is not None else kernel_ids()
    started = time.perf_counter()
    report = FuzzReport(seed=seed)
    counter = 0
    rounds_done = 0
    while True:
        corpus = []
        for kid in kids:
            for _ in range(cases_per_kernel):
                corpus.append(
                    generate_case(kid, derive_seed(seed, counter), max_len=max_len)
                )
                counter += 1
        round_report = run_corpus(corpus, seed=seed, workers=workers)
        for kid, count in round_report.cases_by_kernel.items():
            report.cases_by_kernel[kid] = (
                report.cases_by_kernel.get(kid, 0) + count
            )
        report.mismatches.extend(round_report.mismatches)
        report.harness_errors.extend(round_report.harness_errors)
        report.batched_pairs += round_report.batched_pairs
        rounds_done += 1
        if budget_s is None:
            break
        if time.perf_counter() - started >= budget_s:
            break
    report.elapsed_s = time.perf_counter() - started
    return report
