"""Sensitivity analysis of the reproduction's calibrated constants.

The models contain a handful of fitted constants (DESIGN.md documents
them); the reproduction's *conclusions* — speedup directions, scaling
shapes, feasibility of the published configurations — should not hinge on
their exact values.  This module perturbs each constant by a configurable
factor and re-evaluates headline quantities, reporting which conclusions
are robust and how elastic each output is.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.experiments.report import format_table


@dataclass(frozen=True)
class SensitivityRow:
    """One (constant, output) elasticity measurement."""

    constant: str
    factor: float
    output: str
    baseline_value: float
    perturbed_value: float

    @property
    def relative_change(self) -> float:
        """Fractional change of the output under the perturbation."""
        if self.baseline_value == 0:
            return 0.0
        return (self.perturbed_value - self.baseline_value) / self.baseline_value


@contextlib.contextmanager
def _patched(module, name: str, factor: float) -> Iterator[None]:
    original = getattr(module, name)
    setattr(module, name, original * factor)
    try:
        yield
    finally:
        setattr(module, name, original)


def _headline_outputs() -> Dict[str, float]:
    """The quantities whose direction the reproduction claims."""
    from repro.experiments import fig4, fig6
    from repro.experiments.workloads import WORKLOADS
    from repro.kernels import get_kernel
    from repro.synth import LaunchConfig, synthesize
    from repro.synth.calibration import OPTIMAL_CONFIG

    n_pe, n_b, n_k = OPTIMAL_CONFIG[1]
    w = WORKLOADS[1]
    report = synthesize(
        get_kernel(1),
        LaunchConfig(n_pe=n_pe, n_b=n_b, n_k=n_k,
                     max_query_len=w.max_query_len, max_ref_len=w.max_ref_len),
    )
    gact = fig4.compare(fig4.GACT)
    seqan_rows = [r for r in fig6.build_cpu_panel() if r.baseline == "SeqAn3"]
    return {
        "kernel1_aln_per_sec": report.alignments_per_sec,
        "gact_margin_pct": gact.margin_pct,
        "seqan_min_speedup": min(r.speedup for r in seqan_rows),
    }


def run_sensitivity(factors=(0.8, 1.25)) -> List[SensitivityRow]:
    """Perturb each calibrated constant and re-measure the headlines."""
    import repro.baselines.cpu as cpu_mod
    import repro.systolic.engine as engine_mod

    baseline = _headline_outputs()
    rows: List[SensitivityRow] = []

    def measure(constant: str, patch_ctx) -> None:
        for factor in factors:
            with patch_ctx(factor):
                perturbed = _headline_outputs()
            for output, base_value in baseline.items():
                rows.append(
                    SensitivityRow(
                        constant=constant,
                        factor=factor,
                        output=output,
                        baseline_value=base_value,
                        perturbed_value=perturbed[output],
                    )
                )

    measure(
        "INTERFACE_CYCLES_PER_BASE",
        lambda f: _patched(engine_mod, "INTERFACE_CYCLES_PER_BASE", f),
    )

    @contextlib.contextmanager
    def patch_seqan(factor: float) -> Iterator[None]:
        original = cpu_mod.SeqAn3Model.CELLS_PER_SEC
        cpu_mod.SeqAn3Model.CELLS_PER_SEC = original * factor
        try:
            yield
        finally:
            cpu_mod.SeqAn3Model.CELLS_PER_SEC = original

    measure("SeqAn3Model.CELLS_PER_SEC", patch_seqan)
    return rows


def render(rows: List[SensitivityRow] = None) -> str:
    """The elasticity table."""
    rows = rows if rows is not None else run_sensitivity()
    return format_table(
        headers=["constant", "x", "output", "baseline", "perturbed", "change"],
        rows=[
            (r.constant, r.factor, r.output, r.baseline_value,
             r.perturbed_value, f"{100 * r.relative_change:+.1f}%")
            for r in rows
        ],
        title="Sensitivity of headline outputs to calibrated constants",
    )
