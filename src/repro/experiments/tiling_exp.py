"""Section 7.3 / contribution 5 — long-read alignment via GACT tiling.

Kernel #2's fixed maximum length is extended to full 10 kb PBSIM-like
reads by the host-side tiling of :mod:`repro.tiling`.  The paper notes
the relative throughput versus GACT stays constant for long alignments
because both use the same number of tiles; this harness reports the tile
count, the stitched alignment quality and the tiled cycle total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.data.pbsim import simulate_read_pairs
from repro.kernels import get_kernel
from repro.reference.rescore import rescore_affine
from repro.tiling.gact import expected_tiles, tiled_align


@dataclass(frozen=True)
class TilingResult:
    """One long read aligned through tiles."""

    query_len: int
    ref_len: int
    n_tiles: int
    expected_n_tiles: int
    total_cycles: int
    stitched_score: float
    aligned_columns: int


def run_tiling(
    n_reads: int = 2,
    read_length: int = 1500,
    tile_size: int = 256,
    overlap: int = 64,
    seed: int = 7,
) -> List[TilingResult]:
    """Align ``n_reads`` long reads with kernel #2 under tiling."""
    spec = get_kernel(2)
    params = spec.default_params
    reads = simulate_read_pairs(
        n_reads, length=read_length, error_rate=0.15, seed=seed
    )
    results: List[TilingResult] = []
    for read in reads:
        tiled = tiled_align(
            spec, read.query, read.reference,
            tile_size=tile_size, overlap=overlap, n_pe=32,
        )
        score = rescore_affine(
            tiled.alignment, read.query, read.reference,
            match=params.match, mismatch=params.mismatch,
            gap_open=params.gap_open, gap_extend=params.gap_extend,
        )
        results.append(
            TilingResult(
                query_len=len(read.query),
                ref_len=len(read.reference),
                n_tiles=tiled.n_tiles,
                expected_n_tiles=expected_tiles(
                    len(read.query), len(read.reference), tile_size, overlap
                ),
                total_cycles=tiled.total_cycles,
                stitched_score=score,
                aligned_columns=tiled.alignment.aligned_length,
            )
        )
    return results


def render(results: List[TilingResult] = None) -> str:
    """Tiling results as a text table."""
    from repro.experiments.report import format_table

    results = results if results is not None else run_tiling()
    return format_table(
        headers=[
            "query", "reference", "tiles", "tiles (expected)",
            "cycles", "stitched score", "columns",
        ],
        rows=[
            (r.query_len, r.ref_len, r.n_tiles, r.expected_n_tiles,
             r.total_cycles, r.stitched_score, r.aligned_columns)
            for r in results
        ],
        title="Section 7.3 — long-read alignment with GACT tiling (kernel #2)",
    )
