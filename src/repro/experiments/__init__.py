"""Experiment harnesses regenerating every table and figure of the paper.

Each module returns structured rows/series plus a ``render()`` helper that
prints the same quantities the paper reports; ``benchmarks/`` wraps them
in pytest-benchmark targets and EXPERIMENTS.md records paper-vs-measured.

* :mod:`repro.experiments.table2`  — Table 2 (15-kernel summary)
* :mod:`repro.experiments.fig3`    — Fig. 3 (N_PE / N_B scaling, #1 and #9)
* :mod:`repro.experiments.fig4`    — Fig. 4 (RTL baselines: GACT/BSW/SF)
* :mod:`repro.experiments.fig5`    — Fig. 5 (#2 vs GACT scaling)
* :mod:`repro.experiments.fig6`    — Fig. 6 (CPU/GPU iso-cost comparison)
* :mod:`repro.experiments.hls_cmp` — Section 7.5 (Vitis Genomics baseline)
* :mod:`repro.experiments.tiling_exp` — Section 7.3 (long reads via tiling)
"""

from repro.experiments import paper_values, workloads

__all__ = ["paper_values", "workloads"]
