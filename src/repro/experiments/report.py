"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table (floats get compact formatting)."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def speedup(ours: float, theirs: float) -> float:
    """Throughput ratio ours/theirs (the paper's speedup convention)."""
    if theirs <= 0:
        raise ValueError(f"baseline throughput must be positive, got {theirs}")
    return ours / theirs
