"""One-call reproduction summary: every table and figure, one report.

``reproduce_all()`` regenerates Table 1, Table 2, Figs. 3-6, the Section
7.5 HLS comparison and the tiling demonstration, and concatenates the
renders into a single text document (what ``python -m repro all`` prints
and what CI archives next to EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    hls_cmp,
    table1,
    table2,
    tiling_exp,
)


@dataclass
class ReproductionSummary:
    """All regenerated artifacts, keyed by experiment id."""

    sections: Dict[str, str]

    def render(self) -> str:
        """The combined report document."""
        divider = "\n" + "=" * 78 + "\n"
        parts = [
            "DP-HLS reproduction — full experiment summary",
        ]
        for name in sorted(self.sections):
            parts.append(f"{divider}[{name}]\n{self.sections[name]}")
        return "\n".join(parts)


def reproduce_all(include_tiling: bool = True) -> ReproductionSummary:
    """Regenerate every table/figure (tiling optional: it simulates reads)."""
    sections = {
        "table1_taxonomy": table1.render(),
        "table2_kernels": table2.render(),
        "fig3_scaling_kernel1": fig3.render(1),
        "fig3_scaling_kernel9": fig3.render(9),
        "fig4_rtl_baselines": fig4.render(),
        "fig5_gact_scaling": fig5.render(),
        "fig6_sw_baselines": fig6.render(),
        "sec7_5_hls_baseline": hls_cmp.render(),
    }
    if include_tiling:
        sections["sec7_3_tiling"] = tiling_exp.render(
            tiling_exp.run_tiling(n_reads=1, read_length=800)
        )
    return ReproductionSummary(sections=sections)
