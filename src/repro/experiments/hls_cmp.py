"""Section 7.5 — DP-HLS kernel #3 versus the Vitis Genomics Library.

Both kernels run at N_PE=32, N_B=32, N_K=1; the paper measures DP-HLS
32.6 % faster and attributes the gap to the library's streaming
host<->device interface and weaker compiler hints, which is what the
:class:`~repro.baselines.hls.VitisGenomicsSWModel` charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hls import VitisGenomicsSWModel
from repro.experiments.paper_values import HLS_BASELINE_GAIN_PCT
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel
from repro.synth import LaunchConfig, synthesize


@dataclass(frozen=True)
class HlsComparison:
    """The Section 7.5 comparison."""

    dp_hls_aln_per_sec: float
    baseline_aln_per_sec: float
    gain_pct: float
    paper_gain_pct: float


def build_hls_comparison() -> HlsComparison:
    """DP-HLS #3 vs the Vitis Genomics SW kernel at matched configuration."""
    baseline = VitisGenomicsSWModel()
    spec = get_kernel(3)
    workload = WORKLOADS[3]
    report = synthesize(
        spec,
        LaunchConfig(
            n_pe=baseline.n_pe,
            n_b=baseline.n_b,
            n_k=baseline.n_k,
            max_query_len=workload.max_query_len,
            max_ref_len=workload.max_ref_len,
        ),
    )
    theirs = baseline.throughput_alignments_per_sec(
        workload.max_query_len, workload.max_ref_len, fmax_mhz=report.fmax_mhz
    )
    gain = 100.0 * (report.alignments_per_sec - theirs) / theirs
    return HlsComparison(
        dp_hls_aln_per_sec=report.alignments_per_sec,
        baseline_aln_per_sec=theirs,
        gain_pct=gain,
        paper_gain_pct=HLS_BASELINE_GAIN_PCT,
    )


def render() -> str:
    """The comparison as text."""
    c = build_hls_comparison()
    return (
        "Section 7.5 — DP-HLS #3 vs Vitis Genomics Library SW kernel\n"
        f"  DP-HLS   : {c.dp_hls_aln_per_sec:.3e} aln/s\n"
        f"  baseline : {c.baseline_aln_per_sec:.3e} aln/s\n"
        f"  gain     : {c.gain_pct:.1f}% (paper: {c.paper_gain_pct:.1f}%)"
    )
