"""DP-matrix visualization (the paper's Fig. 1 walk-through).

Fig. 1 teaches the 2-D DP paradigm by showing a filled scoring matrix
with the traceback path highlighted.  ``render_dp_matrix`` reproduces
that for any kernel and pair: the score grid (layer of choice), the
recovered path marked with brackets, and the sequences along the margins.
Meant for docs, teaching and debugging small examples.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Set, Tuple

from repro.core.result import Move
from repro.core.spec import KernelSpec
from repro.systolic.engine import align

#: Cells wider than this are unreadable; keep demo matrices small.
MAX_RENDER_DIM = 40


def _path_cells(result) -> Set[Tuple[int, int]]:
    """Matrix cells the traceback path visits (bottom end inclusive)."""
    if result.alignment is None:
        return {result.start}
    cells = set()
    i, j = result.alignment.query_start, result.alignment.ref_start
    cells.add((i, j))
    for move in result.alignment.moves:
        if move is Move.MATCH:
            i += 1
            j += 1
        elif move is Move.DEL:
            i += 1
        elif move is Move.INS:
            j += 1
        else:
            continue
        cells.add((i, j))
    return cells


def _symbol_label(symbol: Any, alphabet_name: str) -> str:
    if alphabet_name in ("dna", "dna5", "dna_gap") and isinstance(symbol, int):
        return "ACGTN"[symbol] if symbol < 5 else "?"
    if alphabet_name == "protein" and isinstance(symbol, int):
        from repro.core.alphabet import PROTEIN_LETTERS

        return PROTEIN_LETTERS[symbol]
    return "*"


def render_dp_matrix(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    layer: Optional[int] = None,
    n_pe: int = 4,
    cell_width: int = 5,
) -> str:
    """Render the filled DP matrix with the traceback path in brackets."""
    if len(query) > MAX_RENDER_DIM or len(reference) > MAX_RENDER_DIM:
        raise ValueError(
            f"matrix render limited to {MAX_RENDER_DIM}x{MAX_RENDER_DIM} "
            f"(got {len(query)}x{len(reference)}); this is a teaching view"
        )
    layer = spec.score_layer if layer is None else layer
    result = align(spec, query, reference, n_pe=n_pe, collect_matrix=True)
    on_path = _path_cells(result)
    sentinel = spec.sentinel()

    def cell_text(i: int, j: int) -> str:
        value = result.matrix[layer, i, j]
        if value == sentinel:
            body = "·"
        elif value == int(value):
            body = f"{int(value)}"
        else:
            body = f"{value:.1f}"
        if (i, j) in on_path:
            body = f"[{body}]"
        return body.rjust(cell_width)

    header = " " * (cell_width + 3) + "".join(
        _symbol_label(c, spec.alphabet.name).rjust(cell_width)
        for c in reference
    )
    lines = [
        f"{spec.name}: score {result.score}"
        + (f", CIGAR {result.cigar}" if result.cigar else " (score only)"),
        header,
    ]
    for i in range(len(query) + 1):
        margin = (
            " " if i == 0 else _symbol_label(query[i - 1], spec.alphabet.name)
        )
        row = "".join(cell_text(i, j) for j in range(len(reference) + 1))
        lines.append(f"{margin} {row}")
    return "\n".join(lines)
