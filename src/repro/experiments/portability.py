"""Device portability: the same kernels retargeted to other FPGAs.

DP-HLS is a *generator*: nothing about a KernelSpec is tied to the F1's
XCVU9P.  This experiment re-runs the Table 2 design-space search on a
mid-range datacenter card (Alveo U50) and an embedded part (ZU7EV) and
reports each kernel's best configuration and throughput per device — the
deployment question a DRAGEN-style product team would ask (Section 8.2
notes commercial bioinformatics FPGAs where DP-HLS "could be used").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel
from repro.synth.device import ALVEO_U50, XCVU9P, ZU7EV, FpgaDevice
from repro.synth.dse import explore

DEVICES: Tuple[FpgaDevice, ...] = (XCVU9P, ALVEO_U50, ZU7EV)

#: A representative kernel sample (simple, affine, DSP-heavy, score-only).
DEFAULT_KERNELS = (1, 2, 8, 14)


@dataclass(frozen=True)
class PortabilityRow:
    """One (kernel, device) deployment point."""

    kernel_id: int
    kernel_name: str
    device: str
    config: Tuple[int, int, int]
    alignments_per_sec: float


def build_portability(
    kernel_ids: Sequence[int] = DEFAULT_KERNELS,
    devices: Sequence[FpgaDevice] = DEVICES,
) -> List[PortabilityRow]:
    """Best feasible configuration of each kernel on each device."""
    rows: List[PortabilityRow] = []
    for kid in kernel_ids:
        spec = get_kernel(kid)
        workload = WORKLOADS[kid]
        for device in devices:
            result = explore(
                spec,
                n_pe_choices=(8, 16, 32),
                n_b_choices=(1, 2, 4, 8, 16),
                n_k_choices=(1, 2, 4),
                max_query_len=workload.max_query_len,
                max_ref_len=workload.max_ref_len,
                device=device,
            )
            best = result.best
            rows.append(
                PortabilityRow(
                    kernel_id=kid,
                    kernel_name=spec.name,
                    device=device.name,
                    config=(
                        best.config.n_pe, best.config.n_b, best.config.n_k
                    ),
                    alignments_per_sec=best.alignments_per_sec,
                )
            )
    return rows


def throughput_by_device(
    rows: List[PortabilityRow],
) -> Dict[str, Dict[int, float]]:
    """device -> {kernel -> aln/s}, for ratio checks."""
    out: Dict[str, Dict[int, float]] = {}
    for row in rows:
        out.setdefault(row.device, {})[row.kernel_id] = row.alignments_per_sec
    return out


def render(rows: List[PortabilityRow] = None) -> str:
    """The portability table."""
    rows = rows if rows is not None else build_portability()
    return format_table(
        headers=["#", "kernel", "device", "(N_PE,N_B,N_K)", "aln/s"],
        rows=[
            (r.kernel_id, r.kernel_name, r.device, str(r.config),
             r.alignments_per_sec)
            for r in rows
        ],
        title="Device portability — best feasible configuration per part",
    )
