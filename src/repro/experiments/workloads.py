"""Per-kernel evaluation workloads (Section 6.1).

Maps every kernel to the sequence lengths the synthesis/throughput models
evaluate at and to a generator of realistic input pairs for functional
runs.  DNA kernels use 256-base PBSIM-like read pairs; profile, signal and
protein kernels use their dedicated substrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.data.pbsim import simulate_read_pairs
from repro.data.profiles import profile_pair
from repro.data.protein import protein_pairs
from repro.data.signals import random_complex_signal, sdtw_pair, warp_signal

Pair = Tuple[Any, Any]


@dataclass(frozen=True)
class Workload:
    """Evaluation lengths plus a (n_pairs, seed) -> pairs generator."""

    max_query_len: int
    max_ref_len: int
    make_pairs: Callable[[int, int], List[Pair]]
    description: str


def _dna_pairs(length: int) -> Callable[[int, int], List[Pair]]:
    def make(n_pairs: int, seed: int) -> List[Pair]:
        reads = simulate_read_pairs(n_pairs, length=length, seed=seed)
        return [(r.query, r.reference) for r in reads]

    return make


def _banded_dna_pairs(length: int, band: int) -> Callable[[int, int], List[Pair]]:
    """Banded global kernels need |Q - R| <= band; equalise lengths."""

    def make(n_pairs: int, seed: int) -> List[Pair]:
        reads = simulate_read_pairs(n_pairs, length=length, seed=seed)
        pairs = []
        for r in reads:
            n = min(len(r.query), len(r.reference))
            pairs.append((r.query[:n], r.reference[:n]))
        return pairs

    return make


def _profile_pairs(n_cols: int) -> Callable[[int, int], List[Pair]]:
    def make(n_pairs: int, seed: int) -> List[Pair]:
        return [
            profile_pair(n_cols=n_cols, seed=seed + k) for k in range(n_pairs)
        ]

    return make


def _complex_pairs(length: int) -> Callable[[int, int], List[Pair]]:
    def make(n_pairs: int, seed: int) -> List[Pair]:
        pairs = []
        for k in range(n_pairs):
            ref = random_complex_signal(length, seed=seed + 2 * k)
            qry = warp_signal(ref, seed=seed + 2 * k + 1)[:length]
            pairs.append((qry, ref))
        return pairs

    return make


def _sdtw_pairs(ref_bases: int) -> Callable[[int, int], List[Pair]]:
    def make(n_pairs: int, seed: int) -> List[Pair]:
        return [sdtw_pair(ref_bases=ref_bases, seed=seed + k) for k in range(n_pairs)]

    return make


def _protein_workload_pairs(length: int) -> Callable[[int, int], List[Pair]]:
    def make(n_pairs: int, seed: int) -> List[Pair]:
        return protein_pairs(n_pairs, length=length, seed=seed)

    return make


#: Kernel number -> its evaluation workload.
WORKLOADS: Dict[int, Workload] = {
    **{
        kid: Workload(256, 256, _dna_pairs(256), "256-base PBSIM-like DNA reads")
        for kid in (1, 2, 3, 4, 5, 6, 7, 10, 12)
    },
    11: Workload(
        256, 256, _banded_dna_pairs(256, band=32),
        "256-base DNA reads, equal lengths (banded global)",
    ),
    13: Workload(
        256, 256, _banded_dna_pairs(256, band=32),
        "256-base DNA reads, equal lengths (banded global)",
    ),
    8: Workload(256, 256, _profile_pairs(256), "256-column DNA profiles"),
    9: Workload(256, 256, _complex_pairs(256), "256-sample complex signals"),
    14: Workload(
        256, 256, _sdtw_pairs(48),
        "nanopore squiggles (sub-read query vs reference)",
    ),
    15: Workload(
        360, 360, _protein_workload_pairs(360),
        "Swiss-Prot-like proteins (mean length ~360)",
    ),
}
