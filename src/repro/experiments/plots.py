"""ASCII chart rendering for the figure experiments.

The paper's evaluation figures are plots (log-log scaling curves, grouped
bars); the harnesses in this package produce the underlying series, and
this module renders them as terminal charts so the *shapes* — linear N_B
scaling, saturating N_PE curves, parallel DP-HLS/GACT lines, the Fig. 6
speedup bars — are visible without matplotlib (unavailable offline).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def _log10(value: float) -> float:
    if value <= 0:
        raise ValueError(f"log-scale values must be positive, got {value}")
    return math.log10(value)


def line_chart(
    series: Dict[str, Series],
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line chart.

    Each series gets its own glyph; points landing on the same cell show
    the glyph of the *last* series (legend order).
    """
    if not series:
        raise ValueError("need at least one series")
    glyphs = "ox+*#@%&"
    points: List[Tuple[float, float, str]] = []
    for index, (name, values) in enumerate(series.items()):
        if not values:
            raise ValueError(f"series {name!r} is empty")
        glyph = glyphs[index % len(glyphs)]
        for x, y in values:
            fx = _log10(x) if log_x else float(x)
            fy = _log10(y) if log_y else float(y)
            points.append((fx, fy, glyph))

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for fx, fy, glyph in points:
        col = min(width - 1, int((fx - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((fy - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"[{legend}]")
    y_hi_label = f"{10 ** y_hi:.2e}" if log_y else f"{y_hi:.3g}"
    y_lo_label = f"{10 ** y_lo:.2e}" if log_y else f"{y_lo:.3g}"
    lines.append(f"{y_label} ^ {y_hi_label}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + f"> {x_label}")
    x_lo_label = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    lines.append(
        f"    {x_lo_label} .. {x_hi_label}"
        + (" (log x)" if log_x else "")
        + (f"   bottom {y_label} = {y_lo_label}" + (" (log y)" if log_y else ""))
    )
    return "\n".join(lines)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bars, scaled to the largest value."""
    if not values:
        raise ValueError("need at least one bar")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{name:>{label_width}} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# figure-specific renderers
# ---------------------------------------------------------------------------


def plot_fig3_throughput(kernel_id: int) -> str:
    """Fig. 3A/D: throughput vs N_PE and N_B in log-log."""
    from repro.experiments import fig3

    npe = [(p.n_pe, p.alignments_per_sec) for p in fig3.sweep_npe(kernel_id)]
    nb = [(p.n_b, p.alignments_per_sec) for p in fig3.sweep_nb(kernel_id)]
    return line_chart(
        {"vs N_PE (N_B=1)": npe, "vs N_B (N_PE=32)": nb},
        log_x=True, log_y=True,
        title=f"Fig. 3 — kernel #{kernel_id} throughput scaling (log-log)",
        x_label="N_PE / N_B", y_label="aln/s",
    )


def plot_fig5() -> str:
    """Fig. 5A: DP-HLS #2 vs GACT throughput over N_PE (log-log)."""
    from repro.experiments import fig5

    points = fig5.build_fig5()
    return line_chart(
        {
            "DP-HLS #2": [(p.n_pe, p.dp_hls_aln_per_sec) for p in points],
            "GACT": [(p.n_pe, p.gact_aln_per_sec) for p in points],
        },
        log_x=True, log_y=True,
        title="Fig. 5 — kernel #2 vs GACT (log-log; parallel curves)",
        x_label="N_PE", y_label="aln/s",
    )


def plot_fig6() -> str:
    """Fig. 6: speedup bars over every baseline."""
    from repro.experiments import fig6

    rows = fig6.build_cpu_panel() + fig6.build_gpu_panel()
    bars = {
        f"#{r.kernel_id} vs {r.baseline}": r.speedup for r in rows
    }
    return bar_chart(
        bars, title="Fig. 6 — iso-cost speedup over software baselines",
        unit="x",
    )
