"""Table 2 — performance summary of the 15 DP-HLS kernels.

For every kernel: single 32-PE-block resource utilization (% of the
XCVU9P), the paper's optimal (N_PE, N_B, N_K) configuration, the achieved
clock frequency, and device throughput in alignments per second — model
values side by side with the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.paper_values import TABLE2
from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel, kernel_ids
from repro.synth import LaunchConfig, synthesize
from repro.synth.calibration import OPTIMAL_CONFIG


@dataclass(frozen=True)
class Table2ModelRow:
    """Model output for one kernel, with the paper's row alongside."""

    kernel_id: int
    name: str
    lut_pct: float
    ff_pct: float
    bram_pct: float
    dsp_pct: float
    config: Tuple[int, int, int]
    fmax_mhz: float
    ii: int
    alignments_per_sec: float
    paper_alignments_per_sec: float
    paper_fmax_mhz: float


def build_table2() -> List[Table2ModelRow]:
    """Synthesize every kernel at its Table 2 configuration."""
    rows: List[Table2ModelRow] = []
    for kid in kernel_ids():
        spec = get_kernel(kid)
        workload = WORKLOADS[kid]
        block_report = synthesize(
            spec,
            LaunchConfig(
                n_pe=32,
                max_query_len=workload.max_query_len,
                max_ref_len=workload.max_ref_len,
            ),
        )
        n_pe, n_b, n_k = OPTIMAL_CONFIG[kid]
        full_report = synthesize(
            spec,
            LaunchConfig(
                n_pe=n_pe,
                n_b=n_b,
                n_k=n_k,
                max_query_len=workload.max_query_len,
                max_ref_len=workload.max_ref_len,
            ),
        )
        paper = TABLE2[kid]
        rows.append(
            Table2ModelRow(
                kernel_id=kid,
                name=spec.name,
                lut_pct=block_report.utilization_pct("lut", of_block=True),
                ff_pct=block_report.utilization_pct("ff", of_block=True),
                bram_pct=block_report.utilization_pct("bram", of_block=True),
                dsp_pct=block_report.utilization_pct("dsp", of_block=True),
                config=(n_pe, n_b, n_k),
                fmax_mhz=full_report.fmax_mhz,
                ii=full_report.ii,
                alignments_per_sec=full_report.alignments_per_sec,
                paper_alignments_per_sec=paper.alignments_per_sec,
                paper_fmax_mhz=paper.fmax_mhz,
            )
        )
    return rows


def render(rows: List[Table2ModelRow] = None) -> str:
    """Print the table in the paper's layout (model | paper throughput)."""
    rows = rows if rows is not None else build_table2()
    return format_table(
        headers=[
            "#", "kernel", "LUT%", "FF%", "BRAM%", "DSP%",
            "(N_PE,N_B,N_K)", "MHz", "II", "aln/s (model)", "aln/s (paper)",
        ],
        rows=[
            (
                r.kernel_id, r.name, r.lut_pct, r.ff_pct, r.bram_pct,
                r.dsp_pct, str(r.config), r.fmax_mhz, r.ii,
                r.alignments_per_sec, r.paper_alignments_per_sec,
            )
            for r in rows
        ],
        title="Table 2 — 15-kernel performance summary (32-PE block "
              "utilization; throughput at the optimal configuration)",
    )
