"""Fig. 5 — scaling of kernel #2 against GACT with increasing N_PE (N_B=1).

Throughput curves stay parallel in log-log (A) and the FF/LUT usage gap
stays constant (B-C) because both designs are the same linear systolic
array; the offsets come from GACT's overlapped init/load and DP-HLS's
slightly richer control logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.rtl import GACT
from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.synth import LaunchConfig, synthesize

DEFAULT_NPE_SWEEP = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class GactScalingPoint:
    """One N_PE sample of the Fig. 5 comparison."""

    n_pe: int
    dp_hls_aln_per_sec: float
    gact_aln_per_sec: float
    dp_hls_lut: float
    gact_lut: float
    dp_hls_ff: float
    gact_ff: float


def build_fig5(
    n_pe_values: Sequence[int] = DEFAULT_NPE_SWEEP,
) -> List[GactScalingPoint]:
    """Sweep N_PE for kernel #2 and the GACT model (N_B = 1)."""
    spec = GACT.spec()
    workload = WORKLOADS[GACT.kernel_id]
    points: List[GactScalingPoint] = []
    for n_pe in n_pe_values:
        report = synthesize(
            spec,
            LaunchConfig(
                n_pe=n_pe,
                max_query_len=workload.max_query_len,
                max_ref_len=workload.max_ref_len,
            ),
        )
        gact_cycles = GACT.cycles(
            n_pe,
            workload.max_query_len,
            workload.max_ref_len,
            ii=report.ii,
            dp_hls_cycles=report.cycles,
        )
        gact_res = GACT.resources(
            n_pe, workload.max_query_len, workload.max_ref_len
        )
        points.append(
            GactScalingPoint(
                n_pe=n_pe,
                dp_hls_aln_per_sec=report.alignments_per_sec,
                gact_aln_per_sec=report.fmax_mhz * 1e6 / gact_cycles,
                dp_hls_lut=report.block.luts,
                gact_lut=gact_res.luts,
                dp_hls_ff=report.block.ffs,
                gact_ff=gact_res.ffs,
            )
        )
    return points


def render(points: List[GactScalingPoint] = None) -> str:
    """Fig. 5 as a text table."""
    points = points if points is not None else build_fig5()
    return format_table(
        headers=[
            "N_PE", "DP-HLS aln/s", "GACT aln/s",
            "DP-HLS LUT", "GACT LUT", "DP-HLS FF", "GACT FF",
        ],
        rows=[
            (
                p.n_pe, p.dp_hls_aln_per_sec, p.gact_aln_per_sec,
                p.dp_hls_lut, p.gact_lut, p.dp_hls_ff, p.gact_ff,
            )
            for p in points
        ],
        title="Fig. 5 — kernel #2 vs GACT with increasing N_PE (N_B=1)",
    )
