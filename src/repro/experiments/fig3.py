"""Fig. 3 — throughput and resource scaling with N_PE and N_B.

The paper sweeps the Global Linear (#1) and DTW (#9) kernels: throughput
scales near-perfectly with N_PE at low counts and saturates (edge-of-
matrix idling), scales almost perfectly with N_B (independent arrays);
LUT/FF scale linearly with N_PE, DSP stays flat for #1 but scales for #9,
and BRAM dips at N_PE=64 when small memories move to LUTRAM.  Clock
frequencies are fixed at 250 MHz (#1) and 200 MHz (#9) as in Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel
from repro.synth import LaunchConfig, synthesize
from repro.synth.compiler import max_parallel_blocks

#: Fixed sweep frequencies (Section 6.2).
SWEEP_FMAX_MHZ = {1: 250.0, 9: 200.0}

DEFAULT_NPE_SWEEP = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_NB_SWEEP = (1, 2, 4, 8, 16, 24, 32)


@dataclass(frozen=True)
class ScalingPoint:
    """One sweep sample."""

    kernel_id: int
    n_pe: int
    n_b: int
    alignments_per_sec: float
    lut_pct: float
    ff_pct: float
    bram_pct: float
    dsp_pct: float
    feasible: bool


def _sweep(kernel_id: int, points: Sequence) -> List[ScalingPoint]:
    spec = get_kernel(kernel_id)
    workload = WORKLOADS[kernel_id]
    fmax = SWEEP_FMAX_MHZ.get(kernel_id, 250.0)
    out: List[ScalingPoint] = []
    for n_pe, n_b in points:
        report = synthesize(
            spec,
            LaunchConfig(
                n_pe=n_pe,
                n_b=n_b,
                max_query_len=workload.max_query_len,
                max_ref_len=workload.max_ref_len,
                target_mhz=fmax,
            ),
        )
        out.append(
            ScalingPoint(
                kernel_id=kernel_id,
                n_pe=n_pe,
                n_b=n_b,
                alignments_per_sec=report.alignments_per_sec,
                lut_pct=report.utilization_pct("lut"),
                ff_pct=report.utilization_pct("ff"),
                bram_pct=report.utilization_pct("bram"),
                dsp_pct=report.utilization_pct("dsp"),
                feasible=report.feasible,
            )
        )
    return out


def sweep_npe(
    kernel_id: int, n_pe_values: Sequence[int] = DEFAULT_NPE_SWEEP, n_b: int = 1
) -> List[ScalingPoint]:
    """Fig. 3A/B/D/E: vary N_PE at fixed N_B."""
    return _sweep(kernel_id, [(n_pe, n_b) for n_pe in n_pe_values])


def sweep_nb(
    kernel_id: int, n_b_values: Sequence[int] = DEFAULT_NB_SWEEP, n_pe: int = 32
) -> List[ScalingPoint]:
    """Fig. 3A/C/D/F: vary N_B at fixed N_PE."""
    return _sweep(kernel_id, [(n_pe, n_b) for n_b in n_b_values])


def dtw_nb_cap(n_pe: int = 64) -> int:
    """The N_B ceiling DSP availability imposes on DTW (Section 7.2)."""
    return max_parallel_blocks(get_kernel(9), n_pe)


def render(kernel_id: int) -> str:
    """Both sweeps for one kernel as text series."""
    rows = []
    for point in sweep_npe(kernel_id):
        rows.append(
            ("N_PE", point.n_pe, point.n_b, point.alignments_per_sec,
             point.lut_pct, point.ff_pct, point.bram_pct, point.dsp_pct)
        )
    for point in sweep_nb(kernel_id):
        rows.append(
            ("N_B", point.n_pe, point.n_b, point.alignments_per_sec,
             point.lut_pct, point.ff_pct, point.bram_pct, point.dsp_pct)
        )
    return format_table(
        headers=["sweep", "N_PE", "N_B", "aln/s", "LUT%", "FF%", "BRAM%", "DSP%"],
        rows=rows,
        title=f"Fig. 3 — scaling of kernel #{kernel_id}",
    )
