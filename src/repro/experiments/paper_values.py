"""Published numbers from the paper, used for comparison and sanity bands.

Only *reported* values appear here (Table 2, the Fig. 4 margins, the
Fig. 6 speedup ranges, the Section 7.5 HLS gap); nothing in the library's
models reads these except the Fmax calibration in
:mod:`repro.synth.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Table2Row:
    """One kernel's row of Table 2 (32-PE block utilization in %, optimal
    configuration, max frequency, alignments/second)."""

    lut_pct: float
    ff_pct: float
    bram_pct: float
    dsp_pct: float
    config: Tuple[int, int, int]
    fmax_mhz: float
    alignments_per_sec: float


TABLE2: Dict[int, Table2Row] = {
    1: Table2Row(0.72, 0.42, 1.78, 0.029, (64, 16, 4), 250.0, 3.51e6),
    2: Table2Row(1.30, 0.517, 1.78, 0.029, (32, 16, 4), 250.0, 2.85e6),
    3: Table2Row(0.95, 0.63, 1.67, 0.014, (32, 16, 5), 250.0, 3.43e6),
    4: Table2Row(1.60, 0.75, 1.67, 0.014, (32, 16, 4), 250.0, 2.71e6),
    5: Table2Row(2.03, 0.65, 2.67, 0.029, (32, 8, 5), 150.0, 1.06e6),
    6: Table2Row(0.98, 0.66, 1.67, 0.014, (32, 16, 4), 250.0, 2.73e6),
    7: Table2Row(1.17, 0.67, 0.83, 0.014, (32, 16, 4), 250.0, 3.34e6),
    8: Table2Row(3.66, 2.56, 2.56, 28.11, (16, 1, 5), 166.7, 3.70e4),
    9: Table2Row(1.62, 1.55, 1.88, 2.84, (64, 4, 3), 200.0, 2.31e5),
    10: Table2Row(3.78, 1.69, 1.67, 0.014, (16, 4, 7), 125.0, 4.90e5),
    11: Table2Row(1.02, 0.40, 0.94, 0.029, (64, 8, 7), 166.7, 2.25e6),
    12: Table2Row(1.44, 0.70, 0.57, 0.014, (16, 16, 7), 200.0, 4.77e6),
    13: Table2Row(2.25, 0.69, 1.83, 0.029, (16, 8, 7), 125.0, 1.24e6),
    14: Table2Row(1.22, 0.76, 0.57, 0.014, (32, 16, 5), 250.0, 5.16e6),
    15: Table2Row(1.47, 0.95, 2.56, 0.014, (32, 8, 5), 200.0, 9.33e5),
}

#: Fig. 4: DP-HLS throughput is within these margins of the RTL baselines.
FIG4_MARGIN_PCT: Dict[str, float] = {
    "GACT": 7.7,            # kernel #2
    "BSW": 16.8,            # kernel #12
    "SquiggleFilter": 8.16,  # kernel #14
}

#: Fig. 6 (CPU): the SeqAn3 speedup band, and the point values for
#: Minimap2 (#5) and EMBOSS Water (#15).
FIG6_SEQAN_BAND = (1.5, 2.7)
FIG6_MINIMAP2_SPEEDUP = 12.0
FIG6_EMBOSS_SPEEDUP = 32.0

#: Fig. 6 (GPU): GASAL2 band across kernels #2/#4/#12, CUDASW++ point (#15).
FIG6_GASAL2_BAND = (5.83, 17.72)
FIG6_CUDASW_SPEEDUP = 1.41

#: Section 7.5: DP-HLS #3 over the Vitis Genomics SW kernel.
HLS_BASELINE_GAIN_PCT = 32.6

#: Section 7.2: the DTW kernel's N_B is capped by DSP availability.
DTW_NB_CAP = 24
