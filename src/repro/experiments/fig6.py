"""Fig. 6 — iso-cost throughput comparison against CPU and GPU baselines.

Panel A (CPU): SeqAn3 for kernels #1-4/#6-7/#11-12, Minimap2 for #5,
EMBOSS Water for #15 — all on a c4.8xlarge, price-comparable to the F1
instance.  Panel B (GPU): GASAL2 (#2/#4/#12) and CUDASW++ 4.0 (#15) on a
p3.2xlarge, with throughput scaled by the instance-price ratio.

The paper's headline: 1.5-2.7x over SeqAn3, 12x over Minimap2, 32x over
EMBOSS, 5.83-17.72x over GASAL2 and 1.41x over CUDASW++ (traceback
disabled on both sides of the CUDASW++ comparison).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.cpu import EmbossWaterModel, Minimap2Model, SeqAn3Model
from repro.baselines.gpu import CudaSW4Model, Gasal2Model
from repro.experiments.report import format_table, speedup
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel
from repro.synth import LaunchConfig, synthesize
from repro.synth.calibration import OPTIMAL_CONFIG
from repro.synth.throughput import (
    cycles_per_alignment,
    throughput_alignments_per_sec,
)


@dataclass(frozen=True)
class BaselineComparison:
    """One bar of Fig. 6."""

    kernel_id: int
    baseline: str
    platform: str
    dp_hls_aln_per_sec: float
    baseline_aln_per_sec: float  # iso-cost-adjusted
    speedup: float


def _dp_hls_throughput(kernel_id: int, disable_traceback: bool = False) -> float:
    spec = get_kernel(kernel_id)
    workload = WORKLOADS[kernel_id]
    n_pe, n_b, n_k = OPTIMAL_CONFIG[kernel_id]
    report = synthesize(
        spec,
        LaunchConfig(
            n_pe=n_pe, n_b=n_b, n_k=n_k,
            max_query_len=workload.max_query_len,
            max_ref_len=workload.max_ref_len,
        ),
    )
    if not disable_traceback or not spec.has_traceback:
        return report.alignments_per_sec
    # Section 6.3: traceback disabled in DP-HLS for the CUDASW++ compare.
    cycles = cycles_per_alignment(
        spec, n_pe, workload.max_query_len, workload.max_ref_len,
        ii=report.ii, tb_path_len=0,
    ) - 8  # also drop the traceback setup
    return throughput_alignments_per_sec(cycles, report.fmax_mhz, n_b * n_k)


def build_cpu_panel() -> List[BaselineComparison]:
    """Fig. 6A: SeqAn3 / Minimap2 / EMBOSS Water."""
    seqan = SeqAn3Model()
    rows: List[BaselineComparison] = []
    for kid in SeqAn3Model.SUPPORTED_KERNELS:
        workload = WORKLOADS[kid]
        ours = _dp_hls_throughput(kid)
        theirs = seqan.throughput_alignments_per_sec(
            kid, workload.max_query_len, workload.max_ref_len
        )
        rows.append(
            BaselineComparison(
                kid, "SeqAn3", "CPU", ours, theirs, speedup(ours, theirs)
            )
        )
    workload = WORKLOADS[5]
    ours = _dp_hls_throughput(5)
    theirs = Minimap2Model().throughput_alignments_per_sec(
        workload.max_query_len, workload.max_ref_len
    )
    rows.append(
        BaselineComparison(5, "Minimap2", "CPU", ours, theirs, speedup(ours, theirs))
    )
    workload = WORKLOADS[15]
    ours = _dp_hls_throughput(15)
    theirs = EmbossWaterModel().throughput_alignments_per_sec(
        workload.max_query_len, workload.max_ref_len
    )
    rows.append(
        BaselineComparison(
            15, "EMBOSS Water", "CPU", ours, theirs, speedup(ours, theirs)
        )
    )
    return rows


def build_gpu_panel() -> List[BaselineComparison]:
    """Fig. 6B: GASAL2 / CUDASW++ 4.0 (iso-cost-adjusted)."""
    gasal = Gasal2Model()
    rows: List[BaselineComparison] = []
    for kid in (2, 4, 12):
        workload = WORKLOADS[kid]
        ours = _dp_hls_throughput(kid)
        theirs = gasal.iso_cost_throughput(
            kid, workload.max_query_len, workload.max_ref_len
        )
        rows.append(
            BaselineComparison(
                kid, "GASAL2", "GPU", ours, theirs, speedup(ours, theirs)
            )
        )
    workload = WORKLOADS[15]
    ours = _dp_hls_throughput(15, disable_traceback=True)
    theirs = CudaSW4Model().iso_cost_throughput(
        workload.max_query_len, workload.max_ref_len
    )
    rows.append(
        BaselineComparison(
            15, "CUDASW++4.0", "GPU", ours, theirs, speedup(ours, theirs)
        )
    )
    return rows


def render() -> str:
    """Both panels as a text table."""
    rows = build_cpu_panel() + build_gpu_panel()
    return format_table(
        headers=[
            "kernel", "baseline", "platform",
            "DP-HLS aln/s", "baseline aln/s (iso-cost)", "speedup",
        ],
        rows=[
            (f"#{r.kernel_id}", r.baseline, r.platform,
             r.dp_hls_aln_per_sec, r.baseline_aln_per_sec, r.speedup)
            for r in rows
        ],
        title="Fig. 6 — iso-cost throughput vs CPU and GPU baselines",
    )
