"""Fig. 4 — DP-HLS kernels versus hand-optimised RTL baselines.

Throughput (A-C) and resource utilization (D-F) of kernel #2 vs GACT,
kernel #12 vs BSW and kernel #14 vs SquiggleFilter, at matched N_PE/N_B.
The paper reports DP-HLS within 7.7 %, 16.8 % and 8.16 % of the baselines;
the model reproduces the mechanism (RTL overlaps query load and matrix
init with compute) and therefore the margin band and its ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.rtl import BSW, GACT, SQUIGGLEFILTER, RtlBaseline
from repro.experiments.paper_values import FIG4_MARGIN_PCT
from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.synth import LaunchConfig, synthesize

#: Matched comparison configurations (baseline papers' array sizes).
COMPARISON_NPE: Dict[str, int] = {"GACT": 32, "BSW": 32, "SquiggleFilter": 32}

BASELINES = (GACT, BSW, SQUIGGLEFILTER)


@dataclass(frozen=True)
class RtlComparison:
    """One baseline comparison (a panel of Fig. 4)."""

    baseline: str
    kernel_id: int
    n_pe: int
    dp_hls_aln_per_sec: float
    rtl_aln_per_sec: float
    margin_pct: float
    paper_margin_pct: float
    dp_hls_lut: float
    rtl_lut: float
    dp_hls_ff: float
    rtl_ff: float


def compare(baseline: RtlBaseline, n_pe: int = None) -> RtlComparison:
    """Throughput + resources of one DP-HLS kernel vs its RTL baseline."""
    spec = baseline.spec()
    n_pe = n_pe or COMPARISON_NPE[baseline.name]
    workload = WORKLOADS[baseline.kernel_id]
    report = synthesize(
        spec,
        LaunchConfig(
            n_pe=n_pe,
            max_query_len=workload.max_query_len,
            max_ref_len=workload.max_ref_len,
        ),
    )
    rtl_cycles = baseline.cycles(
        n_pe,
        workload.max_query_len,
        workload.max_ref_len,
        ii=report.ii,
        dp_hls_cycles=report.cycles,
    )
    rtl_aln = report.fmax_mhz * 1e6 / rtl_cycles
    margin = 100.0 * (rtl_aln - report.alignments_per_sec) / rtl_aln
    rtl_res = baseline.resources(
        n_pe, workload.max_query_len, workload.max_ref_len
    )
    return RtlComparison(
        baseline=baseline.name,
        kernel_id=baseline.kernel_id,
        n_pe=n_pe,
        dp_hls_aln_per_sec=report.alignments_per_sec,
        rtl_aln_per_sec=rtl_aln,
        margin_pct=margin,
        paper_margin_pct=FIG4_MARGIN_PCT[baseline.name],
        dp_hls_lut=report.block.luts,
        rtl_lut=rtl_res.luts,
        dp_hls_ff=report.block.ffs,
        rtl_ff=rtl_res.ffs,
    )


def build_fig4() -> List[RtlComparison]:
    """All three panels."""
    return [compare(b) for b in BASELINES]


def render(rows: List[RtlComparison] = None) -> str:
    """Fig. 4 as a text table."""
    rows = rows if rows is not None else build_fig4()
    return format_table(
        headers=[
            "baseline", "kernel", "N_PE", "DP-HLS aln/s", "RTL aln/s",
            "margin% (model)", "margin% (paper)",
            "LUT dp-hls", "LUT rtl", "FF dp-hls", "FF rtl",
        ],
        rows=[
            (
                r.baseline, f"#{r.kernel_id}", r.n_pe, r.dp_hls_aln_per_sec,
                r.rtl_aln_per_sec, r.margin_pct, r.paper_margin_pct,
                r.dp_hls_lut, r.rtl_lut, r.dp_hls_ff, r.rtl_ff,
            )
            for r in rows
        ],
        title="Fig. 4 — DP-HLS vs hand-optimised RTL baselines",
    )
