"""Table 1 / Fig. 1 — the kernel taxonomy.

Renders the paper's taxonomy of 2-D DP variations directly from the
kernel registry: sequence alphabet, scoring equation family, objective,
traceback strategy and search-space pruning per kernel (the four
variation axes of Fig. 1), plus the tools/applications columns of
Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.spec import EndRule, KernelSpec, Objective
from repro.experiments.report import format_table
from repro.kernels import get_kernel, kernel_ids


def scoring_family(spec: KernelSpec) -> str:
    """The Fig. 1 scoring-equation category of a kernel."""
    if spec.n_layers == 5:
        return "two-piece affine"
    if spec.n_layers == 3:
        return "affine"
    if spec.alphabet.is_struct:
        return "dynamic (computed per cell)"
    if spec.alphabet.name in ("protein", "int_signal"):
        return "matrix/distance"
    return "linear"


def traceback_strategy(spec: KernelSpec) -> str:
    """The Fig. 1 traceback-strategy category of a kernel."""
    if not spec.has_traceback:
        return "none (score only)"
    end = spec.traceback.end
    if end is EndRule.TOP_LEFT:
        return "global"
    if end is EndRule.SENTINEL:
        return "local"
    if end is EndRule.TOP_ROW:
        return "semi-global"
    return "overlap"


@dataclass(frozen=True)
class TaxonomyRow:
    """One kernel's position along the four variation axes."""

    kernel_id: int
    name: str
    alphabet: str
    scoring: str
    objective: str
    traceback: str
    pruning: str
    tools: str


def build_table1() -> List[TaxonomyRow]:
    """The taxonomy of all registered kernels."""
    rows = []
    for kid in kernel_ids():
        spec = get_kernel(kid)
        rows.append(
            TaxonomyRow(
                kernel_id=kid,
                name=spec.name,
                alphabet=spec.alphabet.name,
                scoring=scoring_family(spec),
                objective=(
                    "min" if spec.objective is Objective.MINIMIZE else "max"
                ),
                traceback=traceback_strategy(spec),
                pruning=(
                    f"fixed band W={spec.banding}" if spec.banding else "none"
                ),
                tools=", ".join(spec.reference_tools),
            )
        )
    return rows


def render(rows: List[TaxonomyRow] = None) -> str:
    """Render the taxonomy as the paper's Table 1 layout."""
    rows = rows if rows is not None else build_table1()
    return format_table(
        headers=["#", "kernel", "alphabet", "scoring", "obj",
                 "traceback", "pruning", "tools"],
        rows=[
            (r.kernel_id, r.name, r.alphabet, r.scoring, r.objective,
             r.traceback, r.pruning, r.tools)
            for r in rows
        ],
        title="Table 1 / Fig. 1 — kernel taxonomy along the four variation axes",
    )
