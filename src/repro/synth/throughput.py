"""Cycle and throughput model (the co-simulation stage of Fig. 2A).

``cycles_per_alignment`` is the closed form of the systolic engine's cycle
accounting — a unit test asserts the two agree exactly — so experiments
can sweep (N_PE, N_B, N_K) over Table 2-sized workloads without simulating
millions of alignments.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.spec import EndRule, KernelSpec, StartRule
from repro.systolic import engine as _engine
from repro.systolic.schedule import count_cycles


def reduction_cycles(spec: KernelSpec, n_pe: int) -> int:
    """Cycles of the cross-PE optimum reduction (0 for bottom-right)."""
    if spec.start_rule is StartRule.BOTTOM_RIGHT:
        return 0
    return max(1, math.ceil(math.log2(max(2, n_pe)))) + 2


def expected_traceback_length(spec: KernelSpec, query_len: int, ref_len: int) -> int:
    """Expected traceback walk length for the throughput model.

    The engine measures the true path; for closed-form sweeps we use
    workload-typical expectations per end rule.
    """
    if not spec.has_traceback:
        return 0
    end = spec.traceback.end
    if end is EndRule.TOP_LEFT:
        return int(0.85 * (query_len + ref_len))
    if end is EndRule.TOP_ROW:
        return int(1.1 * query_len)
    if end is EndRule.TOP_ROW_OR_LEFT_COL:
        return int(0.8 * (query_len + ref_len))
    return int(0.5 * (query_len + ref_len))  # SENTINEL (local)


def cycles_per_alignment(
    spec: KernelSpec,
    n_pe: int,
    query_len: int,
    ref_len: int,
    ii: int = 1,
    tb_path_len: Optional[int] = None,
    model_interface: bool = True,
) -> int:
    """Total block cycles for one alignment (matches the engine's report)."""
    if query_len < 1 or ref_len < 1:
        raise ValueError("sequence lengths must be >= 1")
    compute, load = count_cycles(query_len, ref_len, n_pe, ii, spec.banding)
    init = (ref_len + 1) + (query_len + 1)
    if tb_path_len is None:
        tb_path_len = expected_traceback_length(spec, query_len, ref_len)
    traceback = (
        tb_path_len + _engine.TRACEBACK_SETUP_CYCLES
        if spec.has_traceback else 0
    )
    interface = (
        _engine.INTERFACE_CYCLES_PER_BASE * (query_len + ref_len)
        if model_interface else 0
    )
    return (
        init + load + compute + reduction_cycles(spec, n_pe)
        + traceback + interface
    )


def throughput_alignments_per_sec(
    cycles: int, frequency_mhz: float, n_blocks: int
) -> float:
    """Device throughput: ``n_blocks`` independent blocks, one alignment each
    per ``cycles`` at ``frequency_mhz``."""
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    if frequency_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    return n_blocks * frequency_mhz * 1e6 / cycles
