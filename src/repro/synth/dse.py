"""Design-space exploration over (N_PE, N_B, N_K).

Table 2's "Optimal (N_PE, N_B, N_K)" column is the outcome of exactly
this search: sweep the parallelism knobs, discard configurations that do
not place, and keep the highest-throughput point.  ``explore`` returns
every feasible report; ``find_optimal_config`` the best one;
``pareto_frontier`` the throughput-vs-LUT trade-off curve a deployer
sharing the device with other logic would consult.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Sequence, Tuple

from repro.core.spec import KernelSpec
from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize
from repro.synth.device import XCVU9P, FpgaDevice

DEFAULT_NPE = (8, 16, 32, 64)
DEFAULT_NB = (1, 2, 4, 8, 16)
DEFAULT_NK = (1, 2, 3, 4, 5, 6, 7)


@dataclass(frozen=True)
class DseResult:
    """Outcome of one exploration."""

    feasible: Tuple[SynthesisReport, ...]
    explored: int

    @property
    def best(self) -> SynthesisReport:
        """Highest-throughput feasible configuration."""
        if not self.feasible:
            raise ValueError("no feasible configuration found")
        return max(self.feasible, key=lambda r: r.alignments_per_sec)


def explore(
    spec: KernelSpec,
    n_pe_choices: Sequence[int] = DEFAULT_NPE,
    n_b_choices: Sequence[int] = DEFAULT_NB,
    n_k_choices: Sequence[int] = DEFAULT_NK,
    max_query_len: int = 256,
    max_ref_len: int = 256,
    device: FpgaDevice = XCVU9P,
) -> DseResult:
    """Sweep the parallelism space, keeping feasible configurations."""
    feasible: List[SynthesisReport] = []
    explored = 0
    for n_pe, n_b, n_k in product(n_pe_choices, n_b_choices, n_k_choices):
        explored += 1
        report = synthesize(
            spec,
            LaunchConfig(
                n_pe=n_pe, n_b=n_b, n_k=n_k,
                max_query_len=max_query_len, max_ref_len=max_ref_len,
            ),
            device=device,
        )
        if report.feasible:
            feasible.append(report)
    return DseResult(feasible=tuple(feasible), explored=explored)


def find_optimal_config(spec: KernelSpec, **kwargs) -> SynthesisReport:
    """The Table 2 procedure: best feasible throughput point."""
    return explore(spec, **kwargs).best


def pareto_frontier(result: DseResult) -> List[SynthesisReport]:
    """Configurations not dominated in (throughput up, LUT down).

    Sorted by ascending LUT usage; each successive point strictly
    improves throughput.
    """
    by_lut = sorted(
        result.feasible, key=lambda r: (r.total.luts, -r.alignments_per_sec)
    )
    frontier: List[SynthesisReport] = []
    best_throughput = float("-inf")
    for report in by_lut:
        if report.alignments_per_sec > best_throughput:
            frontier.append(report)
            best_throughput = report.alignments_per_sec
    return frontier
