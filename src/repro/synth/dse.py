"""Design-space exploration over (N_PE, N_B, N_K).

Table 2's "Optimal (N_PE, N_B, N_K)" column is the outcome of exactly
this search: sweep the parallelism knobs, discard configurations that do
not place, and keep the highest-throughput point.  ``explore`` returns
every feasible report; ``find_optimal_config`` the best one;
``pareto_frontier`` the throughput-vs-LUT trade-off curve a deployer
sharing the device with other logic would consult.

Two serving-oriented extensions support re-solving the search *online*
(the :mod:`repro.autoscale` controller does this every few seconds):

* ``explore`` memoizes its sweeps — the spec space is static, so one
  (kernel, choices, lengths, device) sweep is computed once per process
  and every later re-solve is a dictionary lookup
  (:func:`explore_memo_stats` / :func:`clear_explore_memo` expose and
  reset the cache for tests);
* ``find_optimal_config`` takes a ``budget=`` resource cap — either a
  fraction of the device's usable resources or absolute per-kind caps —
  so a planner sharing the device across kernels and replicas can ask
  for "the fastest configuration that fits *this slice*" instead of the
  whole fabric.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.spec import KernelSpec
from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize
from repro.synth.device import XCVU9P, FpgaDevice

DEFAULT_NPE = (8, 16, 32, 64)
DEFAULT_NB = (1, 2, 4, 8, 16)
DEFAULT_NK = (1, 2, 3, 4, 5, 6, 7)

#: The resource kinds a budget may cap (the device's inventory axes).
RESOURCE_KINDS = ("lut", "ff", "bram", "dsp")

#: A resource cap: a usable-fraction in (0, 1] or per-kind absolute caps.
Budget = Union[float, Mapping[str, float]]


@dataclass(frozen=True)
class DseResult:
    """Outcome of one exploration."""

    feasible: Tuple[SynthesisReport, ...]
    explored: int

    @property
    def best(self) -> SynthesisReport:
        """Highest-throughput feasible configuration."""
        if not self.feasible:
            raise ValueError("no feasible configuration found")
        return max(self.feasible, key=lambda r: r.alignments_per_sec)


_memo_lock = threading.Lock()
_memo: Dict[Tuple, DseResult] = {}
_memo_hits = 0
_memo_misses = 0


def _memo_key(
    spec: KernelSpec,
    n_pe_choices: Sequence[int],
    n_b_choices: Sequence[int],
    n_k_choices: Sequence[int],
    max_query_len: int,
    max_ref_len: int,
    device: FpgaDevice,
) -> Tuple:
    return (
        spec.kernel_id, spec.name,
        tuple(n_pe_choices), tuple(n_b_choices), tuple(n_k_choices),
        max_query_len, max_ref_len, device.name,
    )


def explore_memo_stats() -> Dict[str, int]:
    """Hit/miss/entry counts of the process-wide exploration memo."""
    with _memo_lock:
        return {
            "hits": _memo_hits,
            "misses": _memo_misses,
            "entries": len(_memo),
        }


def clear_explore_memo() -> None:
    """Drop every memoized sweep and reset the hit/miss counters."""
    global _memo_hits, _memo_misses
    with _memo_lock:
        _memo.clear()
        _memo_hits = 0
        _memo_misses = 0


def explore(
    spec: KernelSpec,
    n_pe_choices: Sequence[int] = DEFAULT_NPE,
    n_b_choices: Sequence[int] = DEFAULT_NB,
    n_k_choices: Sequence[int] = DEFAULT_NK,
    max_query_len: int = 256,
    max_ref_len: int = 256,
    device: FpgaDevice = XCVU9P,
    use_memo: bool = True,
) -> DseResult:
    """Sweep the parallelism space, keeping feasible configurations.

    Sweeps are memoized per (kernel, choices, lengths, device) — the
    models are pure functions of the spec, so an online re-solve of an
    already-explored point returns the cached :class:`DseResult`
    (``use_memo=False`` forces a fresh sweep).
    """
    global _memo_hits, _memo_misses
    key = _memo_key(
        spec, n_pe_choices, n_b_choices, n_k_choices,
        max_query_len, max_ref_len, device,
    )
    if use_memo:
        with _memo_lock:
            cached = _memo.get(key)
            if cached is not None:
                _memo_hits += 1
                return cached
    feasible: List[SynthesisReport] = []
    explored = 0
    for n_pe, n_b, n_k in product(n_pe_choices, n_b_choices, n_k_choices):
        explored += 1
        report = synthesize(
            spec,
            LaunchConfig(
                n_pe=n_pe, n_b=n_b, n_k=n_k,
                max_query_len=max_query_len, max_ref_len=max_ref_len,
            ),
            device=device,
        )
        if report.feasible:
            feasible.append(report)
    result = DseResult(feasible=tuple(feasible), explored=explored)
    if use_memo:
        with _memo_lock:
            _memo[key] = result
            _memo_misses += 1
    return result


def budget_caps(
    budget: Budget, device: FpgaDevice = XCVU9P
) -> Dict[str, float]:
    """Absolute per-kind resource caps a budget value denotes.

    A float is a fraction of the device's *usable* resources (shared
    uniformly across kinds); a mapping gives absolute caps per kind
    (``lut``/``ff``/``bram``/``dsp``; missing kinds are uncapped beyond
    device feasibility).
    """
    if isinstance(budget, Mapping):
        unknown = set(budget) - set(RESOURCE_KINDS)
        if unknown:
            raise ValueError(
                f"unknown resource kind(s) {sorted(unknown)}; "
                f"expected a subset of {RESOURCE_KINDS}"
            )
        caps = {kind: float(cap) for kind, cap in budget.items()}
        if any(cap < 0 for cap in caps.values()):
            raise ValueError(f"budget caps must be non-negative: {budget!r}")
        return caps
    fraction = float(budget)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(
            f"a fractional budget must be in (0, 1], got {fraction}"
        )
    return {kind: device.usable(kind) * fraction for kind in RESOURCE_KINDS}


def within_budget(report: SynthesisReport, budget: Budget) -> bool:
    """Whether a report's *total* resources fit under a budget."""
    caps = budget_caps(budget, report.device)
    usage = {
        "lut": report.total.luts,
        "ff": report.total.ffs,
        "bram": report.total.bram36,
        "dsp": report.total.dsps,
    }
    return all(usage[kind] <= cap for kind, cap in caps.items())


def find_optimal_config(
    spec: KernelSpec, budget: Optional[Budget] = None, **kwargs
) -> SynthesisReport:
    """The Table 2 procedure: best feasible throughput point.

    ``budget`` additionally caps the winning configuration's total
    resources (see :func:`budget_caps`) — the online-planner form of the
    search, where one kernel's deployment must leave room for the
    others.  Raises ``ValueError`` when nothing feasible fits the cap.
    """
    result = explore(spec, **kwargs)
    if budget is None:
        return result.best
    fitting = [r for r in result.feasible if within_budget(r, budget)]
    if not fitting:
        raise ValueError(
            f"no feasible configuration of {spec.name} fits the "
            f"resource budget {budget!r}"
        )
    return max(fitting, key=lambda r: r.alignments_per_sec)


def pareto_frontier(result: DseResult) -> List[SynthesisReport]:
    """Configurations not dominated in (throughput up, LUT down).

    Sorted by ascending LUT usage; each successive point strictly
    improves throughput.
    """
    by_lut = sorted(
        result.feasible, key=lambda r: (r.total.luts, -r.alignments_per_sec)
    )
    frontier: List[SynthesisReport] = []
    best_throughput = float("-inf")
    for report in by_lut:
        if report.alignments_per_sec > best_throughput:
            frontier.append(report)
            best_throughput = report.alignments_per_sec
    return frontier
