"""The "synthesis" entry point: spec + launch configuration -> report.

:func:`synthesize` plays the role of the Vitis HLS synthesis /
implementation / co-simulation flow of Fig. 2A: it traces the kernel's
datapath once, derives II and Fmax, estimates one block's resources,
scales them across the N_B x N_K parallel blocks, checks device
feasibility, and evaluates the cycle/throughput model at the configured
maximum sequence lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.spec import KernelSpec
from repro.synth.device import XCVU9P, FpgaDevice
from repro.synth.resources import ResourceEstimate, estimate_resources
from repro.synth.throughput import cycles_per_alignment, throughput_alignments_per_sec
from repro.synth.timing import estimate_fmax_mhz, estimate_ii


@dataclass(frozen=True)
class LaunchConfig:
    """The front-end's parallelism and sizing knobs (Section 4, steps 1 & 5).

    ``n_pe`` — PEs per systolic block (inner-loop parallelism);
    ``n_b``  — blocks per kernel sharing one arbiter;
    ``n_k``  — independent kernels/channels to the host;
    ``max_query_len`` / ``max_ref_len`` — memory sizing maxima;
    ``target_mhz`` — synthesis clock target (250 MHz in the paper).
    """

    n_pe: int = 32
    n_b: int = 1
    n_k: int = 1
    max_query_len: int = 256
    max_ref_len: int = 256
    target_mhz: float = 250.0

    def __post_init__(self) -> None:
        if min(self.n_pe, self.n_b, self.n_k) < 1:
            raise ValueError("n_pe, n_b and n_k must all be >= 1")
        if min(self.max_query_len, self.max_ref_len) < 1:
            raise ValueError("maximum sequence lengths must be >= 1")
        if self.target_mhz <= 0:
            raise ValueError("target frequency must be positive")

    @property
    def n_blocks(self) -> int:
        """Total independent systolic blocks on the device."""
        return self.n_b * self.n_k


@dataclass
class SynthesisReport:
    """Everything Table 2 reports for one kernel configuration."""

    kernel_name: str
    kernel_id: int
    config: LaunchConfig
    device: FpgaDevice
    block: ResourceEstimate
    total: ResourceEstimate
    fmax_mhz: float
    ii: int
    cycles: int
    alignments_per_sec: float

    @property
    def feasible(self) -> bool:
        """Whether the full design fits the device's usable resources."""
        return not self.overflows()

    def overflows(self) -> Dict[str, float]:
        """Resource kinds exceeding the device, with the excess amount."""
        usage = {
            "lut": self.total.luts,
            "ff": self.total.ffs,
            "bram": self.total.bram36,
            "dsp": self.total.dsps,
        }
        return {
            kind: amount - self.device.usable(kind)
            for kind, amount in usage.items()
            if amount > self.device.usable(kind)
        }

    def utilization_pct(self, kind: str, of_block: bool = False) -> float:
        """Utilization % of the device (Table 2 reports the single block)."""
        source = self.block if of_block else self.total
        amount = {
            "lut": source.luts,
            "ff": source.ffs,
            "bram": source.bram36,
            "dsp": source.dsps,
        }[kind]
        return self.device.utilization_pct(kind, amount)

    def summary(self) -> str:
        """A Vitis-style one-kernel report."""
        cfg = self.config
        lines = [
            f"== DP-HLS synthesis report: {self.kernel_name} (#{self.kernel_id}) ==",
            f"  device           : {self.device.name}",
            f"  config           : N_PE={cfg.n_pe} N_B={cfg.n_b} N_K={cfg.n_k} "
            f"max={cfg.max_query_len}x{cfg.max_ref_len}",
            f"  timing           : Fmax {self.fmax_mhz:.1f} MHz, II={self.ii}",
            f"  block resources  : LUT {self.utilization_pct('lut', True):.2f}%  "
            f"FF {self.utilization_pct('ff', True):.2f}%  "
            f"BRAM {self.utilization_pct('bram', True):.2f}%  "
            f"DSP {self.utilization_pct('dsp', True):.3f}%",
            f"  device resources : LUT {self.utilization_pct('lut'):.2f}%  "
            f"FF {self.utilization_pct('ff'):.2f}%  "
            f"BRAM {self.utilization_pct('bram'):.2f}%  "
            f"DSP {self.utilization_pct('dsp'):.3f}%",
            f"  cycles/alignment : {self.cycles}",
            f"  throughput       : {self.alignments_per_sec:.3e} alignments/s",
            f"  feasible         : {self.feasible}",
        ]
        return "\n".join(lines)


def synthesize(
    spec: KernelSpec,
    config: Optional[LaunchConfig] = None,
    device: FpgaDevice = XCVU9P,
    use_calibration: bool = True,
) -> SynthesisReport:
    """Run the modelled synthesis flow for one kernel configuration."""
    config = config or LaunchConfig()
    graph = spec.trace_datapath()
    ii = estimate_ii(spec, graph)
    fmax = min(
        config.target_mhz,
        estimate_fmax_mhz(spec, graph, use_calibration=use_calibration),
    )
    block = estimate_resources(
        spec,
        config.n_pe,
        max_query_len=config.max_query_len,
        max_ref_len=config.max_ref_len,
        graph=graph,
    )
    total = block.scaled(config.n_blocks)
    cycles = cycles_per_alignment(
        spec,
        config.n_pe,
        config.max_query_len,
        config.max_ref_len,
        ii=ii,
    )
    throughput = throughput_alignments_per_sec(cycles, fmax, config.n_blocks)
    return SynthesisReport(
        kernel_name=spec.name,
        kernel_id=spec.kernel_id,
        config=config,
        device=device,
        block=block,
        total=total,
        fmax_mhz=fmax,
        ii=ii,
        cycles=cycles,
        alignments_per_sec=throughput,
    )


def max_parallel_blocks(
    spec: KernelSpec,
    n_pe: int,
    device: FpgaDevice = XCVU9P,
    max_query_len: int = 256,
    max_ref_len: int = 256,
) -> int:
    """Largest N_B x N_K the device can host (Section 7.2's DTW cap)."""
    block = estimate_resources(
        spec, n_pe, max_query_len=max_query_len, max_ref_len=max_ref_len
    )
    limits = [
        device.usable("lut") / max(block.luts, 1e-9),
        device.usable("ff") / max(block.ffs, 1e-9),
        device.usable("bram") / max(block.bram36, 1e-9),
        device.usable("dsp") / max(block.dsps, 1e-9),
    ]
    return max(1, int(min(limits)))
