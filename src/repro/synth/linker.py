"""Multi-kernel linking: heterogeneous N_K channels on one device.

Section 4 (step 5) highlights that DP-HLS can link N_K *heterogeneous*
kernels — e.g. a mix of global and local aligners — into one design, "a
process that would be quite cumbersome with HDL"; Section 5.3 notes N_K
is handled by the linker.  This module models that link step: each channel
carries its own kernel and N_B/N_PE, the device hosts the union, and the
whole design closes timing at the slowest kernel's clock (a single clock
domain, as with v++ linked designs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.spec import KernelSpec
from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize
from repro.synth.device import XCVU9P, FpgaDevice
from repro.synth.throughput import throughput_alignments_per_sec


@dataclass(frozen=True)
class ChannelSpec:
    """One device channel: a kernel plus its parallelism/sizing."""

    kernel: KernelSpec
    n_pe: int = 32
    n_b: int = 1
    max_query_len: int = 256
    max_ref_len: int = 256


@dataclass
class LinkedDesign:
    """A linked multi-kernel design (the output of the v++ link step)."""

    channels: Tuple[ChannelSpec, ...]
    reports: Tuple[SynthesisReport, ...]
    device: FpgaDevice
    clock_mhz: float

    @property
    def feasible(self) -> bool:
        """Whether the union of all channels fits the device."""
        return not self.overflows()

    def overflows(self) -> dict:
        """Resource kinds exceeded by the combined design."""
        totals = {"lut": 0.0, "ff": 0.0, "bram": 0.0, "dsp": 0.0}
        for report in self.reports:
            totals["lut"] += report.total.luts
            totals["ff"] += report.total.ffs
            totals["bram"] += report.total.bram36
            totals["dsp"] += report.total.dsps
        return {
            kind: amount - self.device.usable(kind)
            for kind, amount in totals.items()
            if amount > self.device.usable(kind)
        }

    def channel_throughput(self, index: int) -> float:
        """Alignments/second of one channel at the linked clock."""
        report = self.reports[index]
        return throughput_alignments_per_sec(
            report.cycles, self.clock_mhz, self.channels[index].n_b
        )

    def total_throughput(self) -> float:
        """Aggregate alignments/second across all channels."""
        return sum(self.channel_throughput(k) for k in range(len(self.channels)))

    def summary(self) -> str:
        """A link-step report."""
        lines = [
            f"== DP-HLS linked design: {len(self.channels)} channels on "
            f"{self.device.name} @ {self.clock_mhz:.1f} MHz ==",
        ]
        for k, (channel, _report) in enumerate(zip(self.channels, self.reports)):
            lines.append(
                f"  ch{k}: {channel.kernel.name:28s} N_PE={channel.n_pe:<3d} "
                f"N_B={channel.n_b:<3d} -> {self.channel_throughput(k):.3e} aln/s"
            )
        lines.append(f"  total  : {self.total_throughput():.3e} aln/s")
        lines.append(f"  feasible: {self.feasible}")
        return "\n".join(lines)


def link(
    channels: Sequence[ChannelSpec],
    device: FpgaDevice = XCVU9P,
    target_mhz: float = 250.0,
) -> LinkedDesign:
    """Link heterogeneous channels into one design.

    Every channel is synthesised independently (N_K = 1 each); the linked
    clock is the minimum achievable Fmax across channels.
    """
    if not channels:
        raise ValueError("a linked design needs at least one channel")
    reports: List[SynthesisReport] = []
    for channel in channels:
        reports.append(
            synthesize(
                channel.kernel,
                LaunchConfig(
                    n_pe=channel.n_pe,
                    n_b=channel.n_b,
                    n_k=1,
                    max_query_len=channel.max_query_len,
                    max_ref_len=channel.max_ref_len,
                    target_mhz=target_mhz,
                ),
                device=device,
            )
        )
    clock = min(report.fmax_mhz for report in reports)
    return LinkedDesign(
        channels=tuple(channels),
        reports=tuple(reports),
        device=device,
        clock_mhz=clock,
    )
