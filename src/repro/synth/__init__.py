"""Synthesis models — the stand-in for Vitis HLS synthesis + implementation.

Given a :class:`~repro.core.spec.KernelSpec` and a
:class:`~repro.synth.compiler.LaunchConfig`, :func:`synthesize` produces a
:class:`~repro.synth.compiler.SynthesisReport` with the quantities the
paper's Table 2 reports: LUT/FF/BRAM/DSP utilization, the initiation
interval, the achievable clock frequency, per-alignment cycle counts and
device throughput.

All quantities derive from the kernel's *structure* (traced datapath,
layer count, pointer width, banking geometry) through documented
technology constants; a small calibration table pins the clock frequencies
of the 15 paper kernels to their published timing closure (see
:mod:`repro.synth.calibration`).
"""

from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize
from repro.synth.device import XCVU9P, FpgaDevice
from repro.synth.resources import ResourceEstimate, estimate_resources
from repro.synth.throughput import cycles_per_alignment, throughput_alignments_per_sec
from repro.synth.timing import estimate_fmax_mhz, estimate_ii

__all__ = [
    "LaunchConfig",
    "SynthesisReport",
    "synthesize",
    "FpgaDevice",
    "XCVU9P",
    "ResourceEstimate",
    "estimate_resources",
    "cycles_per_alignment",
    "throughput_alignments_per_sec",
    "estimate_fmax_mhz",
    "estimate_ii",
]
