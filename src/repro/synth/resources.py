"""Resource estimation: traced datapath + memory geometry -> LUT/FF/BRAM/DSP.

The model keeps the structural drivers the paper identifies in Section 7.1:

* LUT/FF scale with the complexity (operator count x bit-width) of the
  scoring equations and linearly with N_PE;
* BRAM is dominated by the banked traceback memory (N_PE banks of
  ptr_bits-wide pointers), plus the preserved-row buffer, sequence staging
  and any large substitution ROM replicated per PE (kernel #15's 20x20
  BLOSUM matrix);
* DSP comes from multipliers inside PE_func (kernels #8/#9) plus a couple
  of fixed multipliers pre-computing traceback addresses;
* at N_PE >= 64 the HLS compiler retargets small memories to LUTRAM,
  which is the BRAM dip of Fig. 3.

Technology constants are documented inline; absolute accuracy against
Vitis is not claimed (EXPERIMENTS.md records per-kernel deviations), but
orderings and scaling shapes follow from structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.spec import KernelSpec, StartRule
from repro.core.trace import DatapathGraph, OpKind

# -- technology constants ----------------------------------------------------

#: LUTs per result bit for each operator class.
LUT_PER_BIT = {
    OpKind.ADD: 1.0,
    OpKind.CMP: 1.0,
    OpKind.MUX: 1.0,
    OpKind.ABS: 1.5,
    OpKind.MUL: 0.5,   # glue around the DSP block
    OpKind.ROM: 0.0,   # handled separately (LUTRAM vs BRAM)
}

#: Pipeline/output register bits per operator result bit.
FF_PER_OP_BIT = 0.7

#: Fixed per-PE control logic (loop indices, enables).
PE_CONTROL_LUT = 60
PE_CONTROL_FF = 50

#: Extra per-PE logic when the kernel tracks a local optimum cell.
TRACKER_LUT = 40
TRACKER_FF_BASE = 28  # (i, j) coordinate registers

#: Extra per-PE comparators for fixed-band boundary checks.
BANDING_LUT = 40
BANDING_FF = 24

#: Per-block shared logic: chunk control, address generation, host interface.
BLOCK_CONTROL_LUT = 600
BLOCK_CONTROL_FF = 700

#: ROMs up to this many entries stay in LUTs (distributed RAM).
ROM_LUT_THRESHOLD_ENTRIES = 64

#: Above this N_PE the compiler retargets small memories to LUTRAM (Fig. 3).
LUTRAM_NPE_THRESHOLD = 64
#: ...for memories of at most this many bits.
LUTRAM_MAX_BITS = 16 * 1024
#: Distributed RAM density (RAM64M: a SLICEM LUT stores ~64 bits).
LUTRAM_BITS_PER_LUT = 64

#: Multiplier on packed BRAM18 counts.  Vitis reports somewhat higher BRAM
#: than minimal packing (port splitting); we keep the physical minimum so
#: the published optimal (N_PE, N_B, N_K) configurations remain placeable,
#: and EXPERIMENTS.md records the resulting ~1.5x per-block underestimate
#: against Table 2.
BRAM_OVERHEAD_FACTOR = 1.0

#: Per-block host-interface FIFOs.
INTERFACE_BRAM36 = 4

#: BRAM18 configurations as (depth, width) pairs.
_BRAM18_SHAPES = ((16384, 1), (8192, 2), (4096, 4), (2048, 9), (1024, 18), (512, 36))


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resources of one kernel block (N_PE PEs)."""

    luts: float
    ffs: float
    bram36: float
    dsps: float
    n_pe: int

    def scaled(self, blocks: int) -> "ResourceEstimate":
        """Resources of ``blocks`` identical parallel blocks (Section 5.3)."""
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        return ResourceEstimate(
            luts=self.luts * blocks,
            ffs=self.ffs * blocks,
            bram36=self.bram36 * blocks,
            dsps=self.dsps * blocks,
            n_pe=self.n_pe,
        )


def bram18_units(depth: int, width: int) -> int:
    """Minimum BRAM18 primitives for a ``depth x width``-bit memory."""
    if depth < 1 or width < 1:
        raise ValueError("memory depth and width must be >= 1")
    return min(
        math.ceil(width / w) * math.ceil(depth / d) for d, w in _BRAM18_SHAPES
    )


def dsp_for_multiplier(width_a: int, width_b: int) -> int:
    """DSP48E2 blocks for a ``width_a x width_b`` multiplier (27x18 slices)."""
    if width_a < 1 or width_b < 1:
        raise ValueError("multiplier operand widths must be >= 1")
    wide, narrow = max(width_a, width_b), min(width_a, width_b)
    return math.ceil(wide / 27) * math.ceil(narrow / 18)


def _tb_bank_geometry(spec: KernelSpec, n_pe: int, max_q: int, max_r: int):
    """(depth, width) of one PE's traceback bank (see TracebackMemory)."""
    n_chunks = math.ceil(max_q / n_pe)
    depth = n_chunks * (max_r + n_pe - 1)
    return depth, spec.tb_ptr_bits


def _rom_entries(spec: KernelSpec) -> int:
    """Total entries of runtime-indexed parameter tables (per ROM port)."""
    graph = spec.trace_datapath()
    rom_ports = graph.count(OpKind.ROM)
    if rom_ports == 0:
        return 0
    # Discrete alphabets index matrices sized alphabet.size ** ports-depth;
    # approximate with size^2 (all our matrix ROMs are 2-D).
    size = spec.alphabet.size or 4
    return size * size


def estimate_resources(
    spec: KernelSpec,
    n_pe: int,
    max_query_len: int = 256,
    max_ref_len: int = 256,
    graph: DatapathGraph = None,
) -> ResourceEstimate:
    """Estimate one block's LUT/FF/BRAM/DSP for ``n_pe`` PEs."""
    if n_pe < 1:
        raise ValueError(f"n_pe must be >= 1, got {n_pe}")
    graph = graph or spec.trace_datapath()
    width = spec.score_type.width
    has_tracker = spec.start_rule is not StartRule.BOTTOM_RIGHT
    banded = spec.banding is not None

    # ---- per-PE logic ----------------------------------------------------
    lut_pe = PE_CONTROL_LUT
    ff_pe = PE_CONTROL_FF
    for (kind, op_width), count in graph.op_counts.items():
        lut_pe += LUT_PER_BIT[kind] * op_width * count
        ff_pe += FF_PER_OP_BIT * op_width * count
    # Dataflow registers: left/diag/output per layer, plus symbol and pointer.
    ff_pe += 3 * spec.n_layers * width
    ff_pe += 2 * spec.alphabet.storage_bits + spec.tb_ptr_bits
    if has_tracker:
        lut_pe += TRACKER_LUT
        ff_pe += TRACKER_FF_BASE + width
    if banded:
        lut_pe += BANDING_LUT
        ff_pe += BANDING_FF

    # ---- ROMs (substitution / emission matrices) --------------------------
    rom_entries = _rom_entries(spec)
    rom_bram18 = 0
    if rom_entries:
        rom_bits = rom_entries * width
        if rom_entries <= ROM_LUT_THRESHOLD_ENTRIES:
            lut_pe += rom_bits / 2.0  # distributed RAM: ~2 bits per LUT
        else:
            rom_bram18 = bram18_units(rom_entries, width)  # replicated per PE

    # ---- DSPs --------------------------------------------------------------
    dsp_pe = sum(
        dsp_for_multiplier(wa, wb) for (wa, wb) in graph.multiplier_instances()
    )
    # Fixed multipliers pre-computing traceback addresses (Section 7.2).
    dsp_fixed = 2 if spec.has_traceback else 1

    # ---- memories ----------------------------------------------------------
    lutram_mode = n_pe >= LUTRAM_NPE_THRESHOLD
    bram18 = 0
    lut_mem = 0.0

    def place(depth: int, mem_width: int, replicas: int) -> None:
        nonlocal bram18, lut_mem
        bits = depth * mem_width
        if lutram_mode and bits <= LUTRAM_MAX_BITS:
            lut_mem += replicas * bits / LUTRAM_BITS_PER_LUT
        else:
            bram18 += replicas * bram18_units(depth, mem_width)

    if spec.has_traceback:
        tb_depth, tb_width = _tb_bank_geometry(spec, n_pe, max_query_len, max_ref_len)
        place(tb_depth, tb_width, replicas=n_pe)
    # Preserved-row score buffer (Section 5.1).
    place(max_ref_len + 1, spec.n_layers * width, replicas=1)
    # Query/reference staging buffers (double-buffered per block).
    place(max_ref_len, spec.alphabet.storage_bits, replicas=2)
    place(max_query_len, spec.alphabet.storage_bits, replicas=2)
    if rom_bram18:
        bram18 += rom_bram18 * n_pe

    bram36 = bram18 / 2.0 * BRAM_OVERHEAD_FACTOR + INTERFACE_BRAM36

    return ResourceEstimate(
        luts=lut_pe * n_pe + lut_mem + BLOCK_CONTROL_LUT,
        ffs=ff_pe * n_pe + BLOCK_CONTROL_FF,
        bram36=bram36,
        dsps=dsp_pe * n_pe + dsp_fixed,
        n_pe=n_pe,
    )
