"""Calibration of the synthesis models against the paper's Table 2.

Vitis HLS timing closure depends on placement/routing effects no
structural model can derive; like any technology model, ours is calibrated
on measured data — here the published Fmax of the 15 DP-HLS kernels.
Everything else (resources, II, cycle counts, throughput) remains purely
structural; EXPERIMENTS.md records model-vs-paper deviations per cell.
"""

from __future__ import annotations

from typing import Dict

#: Published maximum clock frequencies (Table 2), by kernel name.
CALIBRATED_FMAX_MHZ: Dict[str, float] = {
    "global_linear": 250.0,
    "global_affine": 250.0,
    "local_linear": 250.0,
    "local_affine": 250.0,
    "global_two_piece_affine": 150.0,
    "overlap": 250.0,
    "semiglobal": 250.0,
    "profile_alignment": 166.7,
    "dtw": 200.0,
    "viterbi": 125.0,
    "banded_global_linear": 166.7,
    "banded_local_affine": 200.0,
    "banded_global_two_piece": 125.0,
    "sdtw": 250.0,
    "protein_local_linear": 200.0,
}

#: Published optimal (N_PE, N_B, N_K) per kernel number (Table 2).
OPTIMAL_CONFIG: Dict[int, tuple] = {
    1: (64, 16, 4),
    2: (32, 16, 4),
    3: (32, 16, 5),
    4: (32, 16, 4),
    5: (32, 8, 5),
    6: (32, 16, 4),
    7: (32, 16, 4),
    8: (16, 1, 5),
    9: (64, 4, 3),
    10: (16, 4, 7),
    11: (64, 8, 7),
    12: (16, 16, 7),
    13: (16, 8, 7),
    14: (32, 16, 5),
    15: (32, 8, 5),
}
