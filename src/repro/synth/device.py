"""FPGA device model: the AWS EC2 F1 instance's XCVU9P.

Utilization percentages in the paper are fractions of the total resources
of the XCVU9P-FLGB2104-2-I; placement feasibility additionally accounts
for the F1 shell (the fixed AWS interface logic) and a routing headroom
factor, which is what caps N_B for DSP-hungry kernels (Section 7.2's
DTW N_B <= 24 observation).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Resource inventory of one FPGA part."""

    name: str
    luts: int
    ffs: int
    bram36: int
    dsps: int
    #: fraction of resources usable by the customer design (shell + routing)
    usable_fraction: float = 0.92

    def usable(self, kind: str) -> float:
        """Resources available to the design after shell/routing headroom.

        LUTs route denser than the default headroom suggests (the paper's
        kernel #1 at (64, 16, 4) packs ~92 % of the device's LUTs), so the
        LUT budget uses a higher ceiling.
        """
        if kind == "lut":
            return self.total(kind) * 0.98
        return self.total(kind) * self.usable_fraction

    def total(self, kind: str) -> int:
        """Total on-die resources of ``kind`` (lut/ff/bram/dsp)."""
        try:
            return {
                "lut": self.luts,
                "ff": self.ffs,
                "bram": self.bram36,
                "dsp": self.dsps,
            }[kind]
        except KeyError:
            raise ValueError(f"unknown resource kind {kind!r}") from None

    def utilization_pct(self, kind: str, amount: float) -> float:
        """``amount`` as a percentage of the device total (Table 2's unit)."""
        return 100.0 * amount / self.total(kind)


#: The AWS F1 FPGA (xcvu9p-flgb2104-2-i).
XCVU9P = FpgaDevice(
    name="xcvu9p-flgb2104-2-i",
    luts=1_182_240,
    ffs=2_364_480,
    bram36=2_160,
    dsps=6_840,
)

#: A mid-range datacenter card (Alveo U50's xcu50 part) — roughly 3/4 of
#: the F1's logic with a leaner BRAM budget.  Used by the portability
#: experiment to show the generator retargets.
ALVEO_U50 = FpgaDevice(
    name="xcu50-fsvh2104-2-e",
    luts=872_000,
    ffs=1_743_000,
    bram36=1_344,
    dsps=5_952,
)

#: An embedded-class part (ZCU104's Zynq UltraScale+ ZU7EV) — an order of
#: magnitude smaller; kernels must shrink N_PE/N_B drastically to fit.
ZU7EV = FpgaDevice(
    name="xczu7ev-ffvc1156-2-e",
    luts=230_400,
    ffs=460_800,
    bram36=312,
    dsps=1_728,
)

#: The discrete clock targets DP-HLS designs close timing at (Table 2).
FREQUENCY_GRID_MHZ = (250.0, 200.0, 166.7, 150.0, 125.0)
