"""Serialization of synthesis artifacts to plain dicts / JSON.

Experiment harnesses and CI pipelines want machine-readable reports; this
module flattens :class:`~repro.synth.compiler.SynthesisReport` and
:class:`~repro.synth.linker.LinkedDesign` into JSON-safe dictionaries
(and back to text via ``json.dumps``).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.synth.compiler import SynthesisReport
from repro.synth.linker import LinkedDesign
from repro.synth.resources import ResourceEstimate


def resources_to_dict(estimate: ResourceEstimate) -> Dict[str, Any]:
    """Flatten a resource estimate."""
    return {
        "lut": estimate.luts,
        "ff": estimate.ffs,
        "bram36": estimate.bram36,
        "dsp": estimate.dsps,
        "n_pe": estimate.n_pe,
    }


def report_to_dict(report: SynthesisReport) -> Dict[str, Any]:
    """Flatten one synthesis report (everything Table 2 needs)."""
    config = report.config
    return {
        "kernel": report.kernel_name,
        "kernel_id": report.kernel_id,
        "device": report.device.name,
        "config": {
            "n_pe": config.n_pe,
            "n_b": config.n_b,
            "n_k": config.n_k,
            "max_query_len": config.max_query_len,
            "max_ref_len": config.max_ref_len,
        },
        "fmax_mhz": report.fmax_mhz,
        "ii": report.ii,
        "cycles_per_alignment": report.cycles,
        "alignments_per_sec": report.alignments_per_sec,
        "feasible": report.feasible,
        "block": resources_to_dict(report.block),
        "total": resources_to_dict(report.total),
        "utilization_pct": {
            kind: report.utilization_pct(kind)
            for kind in ("lut", "ff", "bram", "dsp")
        },
    }


def linked_design_to_dict(design: LinkedDesign) -> Dict[str, Any]:
    """Flatten a linked multi-kernel design."""
    return {
        "device": design.device.name,
        "clock_mhz": design.clock_mhz,
        "feasible": design.feasible,
        "total_alignments_per_sec": design.total_throughput(),
        "channels": [
            {
                "kernel": channel.kernel.name,
                "n_pe": channel.n_pe,
                "n_b": channel.n_b,
                "alignments_per_sec": design.channel_throughput(k),
            }
            for k, channel in enumerate(design.channels)
        ],
    }


def report_to_json(report: SynthesisReport, indent: int = 2) -> str:
    """JSON text of one synthesis report."""
    return json.dumps(report_to_dict(report), indent=indent)
