"""Serialization of synthesis artifacts to plain dicts / JSON.

Experiment harnesses and CI pipelines want machine-readable reports; this
module flattens :class:`~repro.synth.compiler.SynthesisReport` and
:class:`~repro.synth.linker.LinkedDesign` into JSON-safe dictionaries
(and back to text via ``json.dumps``).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.synth.compiler import SynthesisReport
from repro.synth.linker import LinkedDesign
from repro.synth.resources import ResourceEstimate


def resources_to_dict(estimate: ResourceEstimate) -> Dict[str, Any]:
    """Flatten a resource estimate."""
    return {
        "lut": estimate.luts,
        "ff": estimate.ffs,
        "bram36": estimate.bram36,
        "dsp": estimate.dsps,
        "n_pe": estimate.n_pe,
    }


def report_to_dict(report: SynthesisReport) -> Dict[str, Any]:
    """Flatten one synthesis report (everything Table 2 needs)."""
    config = report.config
    return {
        "kernel": report.kernel_name,
        "kernel_id": report.kernel_id,
        "device": report.device.name,
        "config": {
            "n_pe": config.n_pe,
            "n_b": config.n_b,
            "n_k": config.n_k,
            "max_query_len": config.max_query_len,
            "max_ref_len": config.max_ref_len,
        },
        "fmax_mhz": report.fmax_mhz,
        "ii": report.ii,
        "cycles_per_alignment": report.cycles,
        "alignments_per_sec": report.alignments_per_sec,
        "feasible": report.feasible,
        "block": resources_to_dict(report.block),
        "total": resources_to_dict(report.total),
        "utilization_pct": {
            kind: report.utilization_pct(kind)
            for kind in ("lut", "ff", "bram", "dsp")
        },
    }


def linked_design_to_dict(design: LinkedDesign) -> Dict[str, Any]:
    """Flatten a linked multi-kernel design."""
    return {
        "device": design.device.name,
        "target_mhz": design.reports[0].config.target_mhz,
        "clock_mhz": design.clock_mhz,
        "feasible": design.feasible,
        "total_alignments_per_sec": design.total_throughput(),
        "channels": [
            {
                "kernel": channel.kernel.name,
                "n_pe": channel.n_pe,
                "n_b": channel.n_b,
                "max_query_len": channel.max_query_len,
                "max_ref_len": channel.max_ref_len,
                "alignments_per_sec": design.channel_throughput(k),
            }
            for k, channel in enumerate(design.channels)
        ],
    }


def linked_design_from_dict(payload: Dict[str, Any]) -> LinkedDesign:
    """Re-link a design from its exported dict.

    The dict pins *inputs* (device, channel kernels and sizing) and the
    link step is deterministic, so re-linking reproduces the exported
    *outputs* (clock, throughput, feasibility) — the round-trip the
    device pool relies on when a deployment is described as JSON.
    Raises ``KeyError``/``ValueError`` on unknown devices or kernels.
    """
    from repro.kernels import get_kernel
    from repro.synth import device as device_module
    from repro.synth.linker import ChannelSpec, link

    devices = {
        dev.name: dev
        for dev in vars(device_module).values()
        if isinstance(dev, device_module.FpgaDevice)
    }
    device_name = payload["device"]
    if device_name not in devices:
        raise KeyError(
            f"unknown device {device_name!r}; known: {sorted(devices)}"
        )
    channels = [
        ChannelSpec(
            kernel=get_kernel(entry["kernel"]),
            n_pe=entry["n_pe"],
            n_b=entry["n_b"],
            max_query_len=entry["max_query_len"],
            max_ref_len=entry["max_ref_len"],
        )
        for entry in payload["channels"]
    ]
    return link(
        channels,
        device=devices[device_name],
        target_mhz=payload.get("target_mhz", 250.0),
    )


def linked_design_to_json(design: LinkedDesign, indent: int = 2) -> str:
    """JSON text of a linked multi-kernel design."""
    return json.dumps(linked_design_to_dict(design), indent=indent)


def linked_design_from_json(text: str) -> LinkedDesign:
    """Re-link a design from its exported JSON text."""
    return linked_design_from_dict(json.loads(text))


def report_to_json(report: SynthesisReport, indent: int = 2) -> str:
    """JSON text of one synthesis report."""
    return json.dumps(report_to_dict(report), indent=indent)
