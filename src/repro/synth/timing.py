"""Timing model: datapath structure -> initiation interval and Fmax.

Two rules drive the model, matching the paper's observations:

* **II** — the wavefront loop carries a dependency through ``PE_func``
  (cell (i, j) feeds (i, j+1) on the next wavefront), so multi-cycle
  operators on that path force II > 1.  Multiplier-based kernels
  (#8 profile, #9 DTW) pay the DSP pipeline latency: II = 4; everything
  else achieves II = 1 (Section 7.1 reports exactly II = 4 for #8).
* **Fmax** — deeper combinational paths close timing at lower clocks.
  An *effective delay* combines traced logic depth with bit-width, ROM
  access, extra layers and banding control, then snaps to the discrete
  grid Table 2 exhibits.  A calibration table pins the 15 published
  kernels to their measured closure (HLS timing is famously quirky);
  unknown kernels fall back to the structural estimate.
"""

from __future__ import annotations

from typing import Optional

from repro.core.spec import KernelSpec
from repro.core.trace import DatapathGraph, OpKind
from repro.synth.calibration import CALIBRATED_FMAX_MHZ
from repro.synth.device import FREQUENCY_GRID_MHZ

#: Effective-delay weights (abstract logic levels).
_WIDTH_WEIGHT = 0.10       # carry-chain length contribution per score bit
_ROM_PENALTY = 1.5         # block/LUT RAM access on the critical path
_BANDING_PENALTY = 2.5     # band-boundary comparators and muxes
_LAYER_WEIGHT = 1.0        # routing pressure of extra score layers

#: Effective-delay thresholds mapping to the frequency grid.
_FMAX_THRESHOLDS = ((10.0, 250.0), (14.0, 200.0), (18.0, 166.7), (22.0, 150.0))
_FMAX_FLOOR = 125.0


def effective_delay(spec: KernelSpec, graph: Optional[DatapathGraph] = None) -> float:
    """Abstract critical-path length of one ``PE_func`` evaluation."""
    graph = graph or spec.trace_datapath()
    delay = graph.critical_depth
    delay += _WIDTH_WEIGHT * spec.score_type.width
    if graph.count(OpKind.ROM):
        delay += _ROM_PENALTY
    if spec.banding is not None:
        delay += _BANDING_PENALTY
    delay += _LAYER_WEIGHT * spec.n_layers
    return delay


def estimate_ii(spec: KernelSpec, graph: Optional[DatapathGraph] = None) -> int:
    """Initiation interval of the wavefront loop."""
    graph = graph or spec.trace_datapath()
    return 4 if graph.count(OpKind.MUL) > 0 else 1


def estimate_fmax_mhz(
    spec: KernelSpec,
    graph: Optional[DatapathGraph] = None,
    use_calibration: bool = True,
) -> float:
    """Achievable clock frequency, snapped to the device grid."""
    if use_calibration and spec.name in CALIBRATED_FMAX_MHZ:
        return CALIBRATED_FMAX_MHZ[spec.name]
    delay = effective_delay(spec, graph)
    for threshold, fmax in _FMAX_THRESHOLDS:
        if delay <= threshold:
            return fmax
    return _FMAX_FLOOR


def snap_to_grid(frequency_mhz: float) -> float:
    """Snap an arbitrary frequency to the nearest achievable grid point."""
    return min(FREQUENCY_GRID_MHZ, key=lambda f: abs(f - frequency_mhz))
