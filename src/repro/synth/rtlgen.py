"""Structural RTL skeleton generation.

Section 7.2 argues the HLS compiler's output "exhibits the expected linear
systolic array behavior" but is not easily interpretable.  This module
makes the expected structure explicit: given a KernelSpec and a launch
configuration it emits a *Verilog skeleton* of the design the back-end
implies — the PE module with its datapath port widths, the N_PE-instance
systolic chain with the up/diag/left register plumbing, the banked
traceback memories, the preserved-row buffer and the block-level
generate loop over N_B.

The emitted text is structural documentation (and a target for tests that
assert the systolic topology), not synthesizable logic: PE internals are
summarised as operator counts from the datapath trace.
"""

from __future__ import annotations

from typing import List

from repro.core.spec import KernelSpec
from repro.core.trace import OpKind
from repro.synth.compiler import LaunchConfig


def _pe_module(spec: KernelSpec, score_bits: int) -> List[str]:
    graph = spec.trace_datapath()
    char_bits = spec.alphabet.storage_bits
    lines = [
        f"module {spec.name}_pe #(",
        f"    parameter SCORE_W = {score_bits},",
        f"    parameter CHAR_W  = {char_bits},",
        f"    parameter TB_W    = {spec.tb_ptr_bits}",
        ") (",
        "    input  wire                     clk,",
        "    input  wire                     enable,",
        "    input  wire [CHAR_W-1:0]        qry_char,   // latched per chunk",
        "    input  wire [CHAR_W-1:0]        ref_char,   // streams through",
    ]
    for layer in range(spec.n_layers):
        lines += [
            f"    input  wire signed [SCORE_W-1:0] up_l{layer},    // from PE p-1 bus",
            f"    input  wire signed [SCORE_W-1:0] diag_l{layer},  // delay register",
            f"    input  wire signed [SCORE_W-1:0] left_l{layer},  // own output reg",
        ]
    for layer in range(spec.n_layers):
        lines.append(
            f"    output reg  signed [SCORE_W-1:0] score_l{layer},"
        )
    lines += [
        "    output reg  [TB_W-1:0]           tb_ptr",
        ");",
        "    // datapath summary (from the traced PE function):",
        f"    //   adders        : {graph.count(OpKind.ADD)}",
        f"    //   multipliers   : {graph.count(OpKind.MUL)}",
        f"    //   comparators   : {graph.count(OpKind.CMP)}",
        f"    //   multiplexers  : {graph.count(OpKind.MUX)}",
        f"    //   ROM ports     : {graph.count(OpKind.ROM)}",
        f"    //   logic depth   : {graph.critical_depth:.1f} levels",
        "endmodule",
    ]
    return lines


def _block_module(spec: KernelSpec, config: LaunchConfig, score_bits: int) -> List[str]:
    n_pe = config.n_pe
    max_r = config.max_ref_len
    n_chunks = -(-config.max_query_len // n_pe)
    tb_depth = n_chunks * (max_r + n_pe - 1)
    lines = [
        f"module {spec.name}_block #(",
        f"    parameter N_PE = {n_pe}",
        ") (",
        "    input wire clk, input wire rst",
        ");",
        "",
        "    // systolic chain registers",
        f"    wire signed [{score_bits - 1}:0] bus   [0:N_PE-1][0:{spec.n_layers - 1}];",
        f"    reg  signed [{score_bits - 1}:0] diag_r [0:N_PE-1][0:{spec.n_layers - 1}];",
        f"    reg  signed [{score_bits - 1}:0] left_r [0:N_PE-1][0:{spec.n_layers - 1}];",
        "",
        "    // preserved-row score buffer (last PE -> next chunk's PE 0)",
        f"    reg signed [{score_bits * spec.n_layers - 1}:0] "
        f"row_buffer [0:{max_r}];",
        "",
    ]
    if spec.has_traceback:
        lines += [
            "    // banked traceback memory: one bank per PE, coalesced addressing",
            "    genvar b;",
            "    generate",
            "        for (b = 0; b < N_PE; b = b + 1) begin : tb_banks",
            f"            reg [{spec.tb_ptr_bits - 1}:0] bank [0:{tb_depth - 1}];",
            "        end",
            "    endgenerate",
            "",
        ]
    lines += [
        "    // linear systolic array of PEs",
        "    genvar p;",
        "    generate",
        "        for (p = 0; p < N_PE; p = p + 1) begin : pe_chain",
        f"            {spec.name}_pe pe_i (",
        "                .clk(clk),",
        "                .up_l0(p == 0 ? row_buffer_rd : bus[p-1][0]),",
        "                .diag_l0(diag_r[p][0]),",
        "                .left_l0(left_r[p][0])",
        "                /* remaining layers wired identically */",
        "            );",
        "        end",
        "    endgenerate",
        "endmodule",
    ]
    return lines


def generate_rtl_skeleton(
    spec: KernelSpec, config: LaunchConfig = None
) -> str:
    """Emit the Verilog skeleton of the design the back-end implies."""
    config = config or LaunchConfig()
    score_bits = spec.score_type.width
    lines: List[str] = [
        f"// DP-HLS generated structure for kernel #{spec.kernel_id} "
        f"({spec.name})",
        f"// N_PE={config.n_pe} N_B={config.n_b} N_K={config.n_k} "
        f"max={config.max_query_len}x{config.max_ref_len}",
        "",
    ]
    lines += _pe_module(spec, score_bits)
    lines.append("")
    lines += _block_module(spec, config, score_bits)
    lines += [
        "",
        f"module {spec.name}_kernel;",
        "    // N_B parallel blocks behind one arbiter (Section 5.3)",
        "    genvar blk;",
        "    generate",
        f"        for (blk = 0; blk < {config.n_b}; blk = blk + 1) "
        "begin : blocks",
        f"            {spec.name}_block block_i (.clk(clk), .rst(rst));",
        "        end",
        "    endgenerate",
        "endmodule",
    ]
    return "\n".join(lines)
