"""A pool of deployed runtimes with least-loaded routing.

The paper links ``N_K`` (possibly heterogeneous) kernels into one design
and lets the host spread work over them; a serving deployment does the
same across whole :class:`~repro.host.runtime.DeviceRuntime` instances.
:class:`DevicePool` indexes its members by kernel id — several members
may serve the same kernel (replicas), and one pool may serve several
kernels (a heterogeneous deployment, buildable directly from a
:class:`~repro.synth.linker.LinkedDesign` via :meth:`from_linked_design`).

Routing is least-loaded: a flushed batch goes to the member currently
holding the fewest in-flight pairs for that kernel.  Execution goes
through ``DeviceRuntime.run``, so functional work can fan across the
:mod:`repro.parallel` process pool (``workers > 1``) while per-pair
failures stay isolated as structured errors — and with
``backend="compiled"`` and the default ``workers=1``, the whole flushed
batch runs as *one* :func:`repro.backend.compiled_align_batch` lockstep
sweep, so the batcher's work of assembling per-kernel batches is paid
back as amortized NumPy dispatch instead of N serialized calls.

Passing a :class:`~repro.cache.CacheStack` wraps every member in a
:class:`~repro.cache.CachedRuntime`: the whole pool shares one
content-addressed cache, so a pair served by any replica is a hit on
every other, and batch outcomes carry per-pair ``fingerprints``/
``cached`` attribution the serving core forwards to clients.

Membership is *online*: :meth:`DevicePool.add_member` deploys another
runtime into a live pool and :meth:`DevicePool.retire_member` removes
one with drain-before-retire semantics — the member leaves the routing
table immediately (no new batches land on it) but stays until every
in-flight pair it holds has resolved, so retirement never drops work.
Each member also executes exclusively (one batch at a time), which is
what makes a replica an honest unit of serving capacity: a simulated
device channel, like the FPGA block it models, cannot time-slice two
batches.  The :mod:`repro.autoscale` actuator drives both operations.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.host.runtime import BatchOutcome, DeviceRuntime, RunOptions
from repro.obs.recorder import get_recorder
from repro.synth.compiler import LaunchConfig
from repro.synth.linker import LinkedDesign


@dataclass
class PoolMember:
    """One runtime plus its live load accounting."""

    runtime: DeviceRuntime
    name: str
    in_flight: int = 0
    batches_served: int = 0
    pairs_served: int = 0
    draining: bool = False
    #: One batch at a time per member — the device-channel exclusivity
    #: that makes replica count equal serving concurrency.
    exclusive: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def kernel_id(self) -> int:
        """Kernel this member serves."""
        return self.runtime.spec.kernel_id

    def stats(self) -> Dict[str, Any]:
        """JSON-safe load summary."""
        return {
            "name": self.name,
            "kernel_id": self.kernel_id,
            "kernel": self.runtime.spec.name,
            "n_pe": self.runtime.config.n_pe,
            "n_b": self.runtime.config.n_b,
            "in_flight": self.in_flight,
            "batches_served": self.batches_served,
            "pairs_served": self.pairs_served,
            "draining": self.draining,
        }


@dataclass(frozen=True)
class PoolRejection(RuntimeError):
    """Raised when a batch cannot be routed (unsupported kernel)."""

    kernel_id: int
    reason: str

    def __str__(self) -> str:
        return f"kernel #{self.kernel_id}: {self.reason}"


class DevicePool:
    """Kernel-indexed runtime pool with least-loaded batch routing."""

    def __init__(
        self,
        runtimes: Sequence[DeviceRuntime],
        workers: int = 1,
        cache: Optional[Any] = None,
    ) -> None:
        if not runtimes:
            raise ValueError("a device pool needs at least one runtime")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        runtimes = [self._wrap(rt) for rt in runtimes]
        self.members: List[PoolMember] = [
            PoolMember(runtime=rt, name=f"rt{k}:{rt.spec.name}")
            for k, rt in enumerate(runtimes)
        ]
        self._by_kernel: Dict[int, List[PoolMember]] = {}
        for member in self.members:
            self._by_kernel.setdefault(member.kernel_id, []).append(member)
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._next_index = len(self.members)

    def _wrap(self, runtime: DeviceRuntime) -> DeviceRuntime:
        """Apply the pool's shared cache to a runtime (idempotent)."""
        if self.cache is None:
            return runtime
        from repro.cache import CachedRuntime

        if isinstance(runtime, CachedRuntime):
            return runtime
        return CachedRuntime(runtime, self.cache)

    @classmethod
    def from_linked_design(
        cls,
        design: LinkedDesign,
        workers: int = 1,
        params_by_kernel: Optional[Dict[int, Any]] = None,
        cache: Optional[Any] = None,
        backend: str = "systolic",
    ) -> "DevicePool":
        """Deploy every channel of a linked design as one pool member.

        Each channel becomes a :class:`DeviceRuntime` with the channel's
        ``N_PE``/``N_B`` sizing (``N_K = 1``: the channel *is* one of the
        design's K channels) at the design's linked clock target.
        ``cache`` (a :class:`~repro.cache.CacheStack`) is shared across
        every channel, exactly as in the main constructor.  ``backend``
        selects the alignment implementation every channel runs
        (``"systolic"`` cycle simulator or the bit-identical
        ``"compiled"`` NumPy backend — see ``docs/backends.md``).
        """
        params_by_kernel = params_by_kernel or {}
        runtimes = [
            DeviceRuntime(
                channel.kernel,
                LaunchConfig(
                    n_pe=channel.n_pe,
                    n_b=channel.n_b,
                    n_k=1,
                    max_query_len=channel.max_query_len,
                    max_ref_len=channel.max_ref_len,
                ),
                params=params_by_kernel.get(channel.kernel.kernel_id),
                backend=backend,
            )
            for channel in design.channels
        ]
        return cls(runtimes, workers=workers, cache=cache)

    # -- online membership --------------------------------------------

    def add_member(
        self, runtime: DeviceRuntime, name: Optional[str] = None
    ) -> PoolMember:
        """Deploy another runtime into the live pool.

        The new member joins the routing table immediately and is
        eligible for the next flushed batch of its kernel.  Returns the
        created :class:`PoolMember` (its ``name`` is unique within the
        pool's lifetime).
        """
        runtime = self._wrap(runtime)
        with self._lock:
            if name is None:
                name = f"rt{self._next_index}:{runtime.spec.name}"
            self._next_index += 1
            if any(m.name == name for m in self.members):
                raise ValueError(f"pool already has a member named {name!r}")
            member = PoolMember(runtime=runtime, name=name)
            self.members.append(member)
            self._by_kernel.setdefault(member.kernel_id, []).append(member)
        get_recorder().count("pool.members_added_total")
        return member

    def retire_member(
        self,
        name: str,
        timeout_s: Optional[float] = 30.0,
        allow_last: bool = False,
    ) -> PoolMember:
        """Drain and remove one member; in-flight work always completes.

        The member leaves the routing table at once — no further batch
        acquires it — then this call blocks until its booked load drains
        to zero before removing it from ``members``.  Nothing in flight
        is dropped: every pair the member holds resolves normally.

        Retiring the last active member of a kernel is refused (it would
        turn that kernel's traffic into rejections) unless
        ``allow_last=True``.  On drain timeout the member stays out of
        the routing table, marked ``draining``, and ``TimeoutError`` is
        raised — a later call with the same name finishes the removal.
        """
        with self._drained:
            member = next((m for m in self.members if m.name == name), None)
            if member is None:
                raise KeyError(f"no pool member named {name!r}")
            siblings = self._by_kernel.get(member.kernel_id, [])
            if not allow_last and not member.draining and len(siblings) <= 1:
                raise ValueError(
                    f"refusing to retire {name!r}: it is the last active "
                    f"member serving kernel #{member.kernel_id} "
                    f"(pass allow_last=True to undeploy the kernel)"
                )
            member.draining = True
            if member in siblings:
                siblings.remove(member)
                if not siblings:
                    del self._by_kernel[member.kernel_id]
            deadline = (
                None if timeout_s is None
                else time.monotonic() + timeout_s
            )
            while member.in_flight > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"member {name!r} still holds {member.in_flight} "
                        f"in-flight pair(s) after {timeout_s}s; it is out "
                        f"of routing — retry retire_member to finish"
                    )
                self._drained.wait(remaining)
            self.members.remove(member)
        get_recorder().count("pool.members_retired_total")
        return member

    def active_members(self, kernel_id: int) -> List[PoolMember]:
        """Routable (non-draining) members serving ``kernel_id``."""
        with self._lock:
            return list(self._by_kernel.get(kernel_id, []))

    def replica_counts(self) -> Dict[int, int]:
        """Routable member count per kernel id."""
        with self._lock:
            return {
                kernel_id: len(members)
                for kernel_id, members in sorted(self._by_kernel.items())
            }

    # -- routing ------------------------------------------------------

    def kernel_ids(self) -> List[int]:
        """Kernels this pool can serve, ascending."""
        return sorted(self._by_kernel)

    def supports(self, kernel_id: int) -> bool:
        """Whether any member serves ``kernel_id``."""
        return kernel_id in self._by_kernel

    def max_lengths(self, kernel_id: int) -> Tuple[int, int]:
        """Largest (query, reference) lengths any member accepts."""
        members = self._by_kernel.get(kernel_id)
        if not members:
            raise PoolRejection(kernel_id, "no runtime serves this kernel")
        return (
            max(m.runtime.config.max_query_len for m in members),
            max(m.runtime.config.max_ref_len for m in members),
        )

    def _acquire(self, kernel_id: int, n_pairs: int) -> PoolMember:
        """Pick the least-loaded member for a kernel and book the load."""
        with self._lock:
            members = self._by_kernel.get(kernel_id)
            if not members:
                raise PoolRejection(kernel_id, "no runtime serves this kernel")
            member = min(members, key=lambda m: (m.in_flight, m.name))
            member.in_flight += n_pairs
            return member

    def _release(self, member: PoolMember, n_pairs: int) -> None:
        """Return booked load after a batch drains."""
        with self._lock:
            member.in_flight -= n_pairs
            member.batches_served += 1
            member.pairs_served += n_pairs
            if member.draining and member.in_flight <= 0:
                self._drained.notify_all()

    def execute(
        self,
        kernel_id: int,
        pairs: Sequence[Tuple[Sequence[Any], Sequence[Any]]],
    ) -> Tuple[BatchOutcome, PoolMember]:
        """Run one flushed batch on the least-loaded member.

        Returns the runtime's :class:`BatchOutcome` (index-aligned with
        ``pairs``; per-pair failures isolated in ``errors``) plus the
        member that served it.
        """
        member = self._acquire(kernel_id, len(pairs))
        try:
            with get_recorder().span(
                "pool.execute", member=member.name, kernel=kernel_id,
                pairs=len(pairs),
            ):
                with member.exclusive:
                    outcome = member.runtime.run(
                        list(pairs),
                        options=RunOptions(workers=self.workers),
                    )
        finally:
            self._release(member, len(pairs))
        return outcome, member

    def stats(self) -> List[Dict[str, Any]]:
        """Load summaries of every member."""
        with self._lock:
            return [member.stats() for member in self.members]
