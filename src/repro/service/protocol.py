"""Wire protocol of the alignment service: JSON lines, one message each.

Requests and responses are frozen dataclasses with a *deterministic*
JSON-line encoding (sorted keys, compact separators, no NaN), so the same
logical message always serializes to the same bytes.  The end-to-end
tests rely on that: a response produced by the service must be
byte-identical to one built locally from ``DeviceRuntime.run`` on the
same pair.

Message types on the wire (the ``type`` field):

* ``"align"``        — an :class:`AlignRequest`;
* ``"result"``       — an :class:`AlignResponse`;
* ``"metrics"``      — metrics snapshot request (id echoed in the reply);
* ``"metrics_text"`` — plain-text rendering of the metrics snapshot;
* ``"trace"``        — Chrome trace-event JSON of the server's recorder;
* ``"ping"``         — liveness probe, answered with ``"pong"``.

Sequences travel as lists of integer symbol codes (the engine's native
representation for DNA/protein/quantised-signal alphabets); kernels with
struct alphabets are not servable over this protocol and are rejected
with an ``error`` response at admission.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Protocol revision; bumped on incompatible wire changes.
WIRE_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or unsupported wire message."""


class Status(str, enum.Enum):
    """Terminal status of one request.

    ``OK`` — aligned; ``REJECTED`` — refused at admission (backpressure:
    the request was answered, never silently dropped); ``ERROR`` — the
    request was admitted but could not be aligned.
    """

    OK = "ok"
    REJECTED = "rejected"
    ERROR = "error"


def encode_line(payload: Dict[str, Any]) -> bytes:
    """Serialize one message dict to a deterministic JSON line."""
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return text.encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable wire line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"wire line must be a JSON object, got {type(payload).__name__}"
        )
    return payload


@dataclass(frozen=True)
class AlignRequest:
    """One alignment request.

    ``deadline_ms`` is the client's latency budget: the batcher flushes a
    partial batch early enough to honour the tightest deadline it holds.
    ``priority`` breaks ties when a flush cannot take the whole queue —
    higher values board earlier batches.
    """

    request_id: str
    kernel_id: int
    query: Tuple[Any, ...]
    reference: Tuple[Any, ...]
    deadline_ms: Optional[float] = None
    priority: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to a JSON-safe wire dict."""
        payload: Dict[str, Any] = {
            "type": "align",
            "v": WIRE_VERSION,
            "id": self.request_id,
            "kernel": self.kernel_id,
            "query": list(self.query),
            "reference": list(self.reference),
            "priority": self.priority,
        }
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AlignRequest":
        """Parse a wire dict, validating shape and field types."""
        if payload.get("type") != "align":
            raise ProtocolError(f"not an align request: {payload.get('type')!r}")
        try:
            request_id = payload["id"]
            kernel_id = payload["kernel"]
            query = payload["query"]
            reference = payload["reference"]
        except KeyError as exc:
            raise ProtocolError(f"align request missing field {exc}") from None
        if not isinstance(request_id, str) or not request_id:
            raise ProtocolError("request id must be a non-empty string")
        if not isinstance(kernel_id, int):
            raise ProtocolError("kernel must be an integer id")
        for name, seq in (("query", query), ("reference", reference)):
            if not isinstance(seq, list) or not seq:
                raise ProtocolError(f"{name} must be a non-empty list")
        deadline = payload.get("deadline_ms")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ProtocolError("deadline_ms must be a positive number")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError("priority must be an integer")
        return cls(
            request_id=request_id,
            kernel_id=kernel_id,
            query=tuple(query),
            reference=tuple(reference),
            deadline_ms=None if deadline is None else float(deadline),
            priority=priority,
        )

    def to_line(self) -> bytes:
        """Deterministic JSON-line encoding."""
        return encode_line(self.to_dict())


@dataclass(frozen=True)
class AlignResponse:
    """The service's terminal answer to one request.

    ``fingerprint`` is the content-addressed cache key of the request
    (present when the service runs with caching enabled) — a pure
    function of kernel config and sequence bytes, so it lands in the
    deterministic payload.  ``cached`` tells whether *this* execution
    was served without engine work; like ``latency_ms`` it varies
    between identical requests, so it travels only in the full wire
    form and is dropped from the deterministic encoding.
    """

    request_id: str
    status: Status
    score: Optional[float] = None
    cigar: str = ""
    start: Optional[Tuple[int, int]] = None
    end: Optional[Tuple[int, int]] = None
    cycles: Optional[int] = None
    latency_ms: Optional[float] = None
    error: str = ""
    fingerprint: Optional[str] = None
    cached: Optional[bool] = None

    @property
    def ok(self) -> bool:
        """Whether the request was aligned."""
        return self.status is Status.OK

    def to_dict(self, with_latency: bool = True) -> Dict[str, Any]:
        """Flatten to a JSON-safe wire dict.

        ``with_latency=False`` drops the execution-dependent fields —
        wall-clock latency and the ``cached`` attribution flag — leaving
        only the deterministic alignment payload, the form the
        byte-identity tests compare.  The ``fingerprint`` is itself
        deterministic, so it stays in both forms.
        """
        payload: Dict[str, Any] = {
            "type": "result",
            "v": WIRE_VERSION,
            "id": self.request_id,
            "status": self.status.value,
        }
        if self.status is Status.OK:
            payload["score"] = self.score
            payload["cigar"] = self.cigar
            payload["start"] = list(self.start)
            payload["end"] = list(self.end)
            payload["cycles"] = self.cycles
        else:
            payload["error"] = self.error
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        if with_latency and self.latency_ms is not None:
            payload["latency_ms"] = self.latency_ms
        if with_latency and self.cached is not None:
            payload["cached"] = self.cached
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AlignResponse":
        """Parse a wire dict back into a response."""
        if payload.get("type") != "result":
            raise ProtocolError(f"not a result message: {payload.get('type')!r}")
        try:
            status = Status(payload["status"])
            request_id = payload["id"]
        except (KeyError, ValueError) as exc:
            raise ProtocolError(f"malformed result message: {exc}") from None
        start = payload.get("start")
        end = payload.get("end")
        return cls(
            request_id=request_id,
            status=status,
            score=payload.get("score"),
            cigar=payload.get("cigar", ""),
            start=None if start is None else tuple(start),
            end=None if end is None else tuple(end),
            cycles=payload.get("cycles"),
            latency_ms=payload.get("latency_ms"),
            error=payload.get("error", ""),
            fingerprint=payload.get("fingerprint"),
            cached=payload.get("cached"),
        )

    def to_line(self, with_latency: bool = True) -> bytes:
        """Deterministic JSON-line encoding."""
        return encode_line(self.to_dict(with_latency=with_latency))


def response_from_result(
    request_id: str,
    result: Any,
    latency_ms: Optional[float] = None,
    fingerprint: Optional[str] = None,
    cached: Optional[bool] = None,
) -> AlignResponse:
    """Build an OK response from an engine :class:`AlignmentResult`.

    Normalizes the score to ``float`` so serial/pooled/local executions
    encode identically regardless of numpy scalar types.  ``fingerprint``
    and ``cached`` carry the cache attribution when the serving pool
    runs with a cache stack.
    """
    return AlignResponse(
        request_id=request_id,
        status=Status.OK,
        score=float(result.score),
        cigar=result.cigar,
        start=(int(result.start[0]), int(result.start[1])),
        end=(int(result.end[0]), int(result.end[1])),
        cycles=int(result.cycles.total) if result.cycles else None,
        latency_ms=latency_ms,
        fingerprint=fingerprint,
        cached=cached,
    )


def rejection(request_id: str, reason: str) -> AlignResponse:
    """Build a backpressure rejection (answered, never dropped)."""
    return AlignResponse(
        request_id=request_id, status=Status.REJECTED, error=reason
    )


def error_response(request_id: str, reason: str) -> AlignResponse:
    """Build an error response for an admitted-but-failed request."""
    return AlignResponse(request_id=request_id, status=Status.ERROR, error=reason)
