"""The serving core and its threaded TCP front end.

:class:`ServiceCore` is the transport-agnostic engine: requests enter
through :meth:`ServiceCore.submit` and resolve a :class:`ReplySlot`
(a minimal future) with an :class:`~repro.service.protocol.AlignResponse`.
Internally a request flows

    submit → validate → batcher.offer → (size/deadline flush)
           → dispatch executor → DevicePool.execute → resolve slots

with every hop reported to the core's :mod:`repro.obs` recorder (counters
and histograms always; spans too when tracing).  Admission failures
(backpressure, unknown kernel, overlong pair, struct alphabet) resolve
immediately — every submitted request is *answered*, never dropped.

:class:`AlignmentServer` wraps the core in a ``ThreadingTCPServer``
speaking the JSON-line protocol: one handler thread per connection reads
requests; responses are written by whichever dispatch thread resolves
them (a per-connection write lock keeps lines atomic), so responses may
legally arrive out of request order — clients demultiplex by id.
"""

from __future__ import annotations

import socketserver
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.kernels import get_kernel
from repro.obs.export import chrome_trace, render_text_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import MetricsRecorder, Recorder
from repro.service.batcher import BatcherConfig, DynamicBatcher, PendingEntry
from repro.service.pool import DevicePool, PoolRejection
from repro.service.protocol import (
    AlignRequest,
    AlignResponse,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    rejection,
    response_from_result,
)

class ReplySlot:
    """A minimal thread-safe future holding one response.

    Done callbacks run on the resolving thread (or inline when already
    resolved); exceptions they raise are swallowed so one broken client
    connection cannot poison a dispatch thread.
    """

    def __init__(self, request: AlignRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Optional[AlignResponse] = None
        self._callbacks: List[Callable[[AlignResponse], None]] = []
        self._lock = threading.Lock()

    def resolve(self, response: AlignResponse) -> None:
        """Deliver the response exactly once (later calls are ignored)."""
        with self._lock:
            if self._response is not None:
                return
            self._response = response
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        self._event.set()
        for callback in callbacks:
            try:
                callback(response)
            except Exception:  # noqa: BLE001 - callbacks must not poison dispatch
                pass

    def add_done_callback(
        self, callback: Callable[[AlignResponse], None]
    ) -> None:
        """Run ``callback(response)`` on resolution (inline if done)."""
        with self._lock:
            if self._response is None:
                self._callbacks.append(callback)
                return
            response = self._response
        try:
            callback(response)
        except Exception:  # noqa: BLE001 - same contract as resolve()
            pass

    def result(self, timeout: Optional[float] = None) -> AlignResponse:
        """Block until resolved; raises ``TimeoutError`` on expiry."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} unresolved after {timeout}s"
            )
        assert self._response is not None
        return self._response

    @property
    def done(self) -> bool:
        """Whether the response has been delivered."""
        return self._event.is_set()


class ServiceCore:
    """Transport-agnostic serving engine: batcher + pool + observability.

    Every hop records through ``self.recorder`` — by default a
    :class:`~repro.obs.recorder.MetricsRecorder` over the service's
    :class:`~repro.obs.metrics.MetricsRegistry` (always-on counters and
    histograms, no trace buffer).  Pass a
    :class:`~repro.obs.recorder.TraceRecorder` to additionally capture
    request/batch spans exportable as Chrome trace JSON (the ``repro
    trace`` command and the server's ``trace`` endpoint do this).
    """

    def __init__(
        self,
        pool: DevicePool,
        config: Optional[BatcherConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        dispatchers: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.pool = pool
        self.config = config or BatcherConfig()
        if recorder is None:
            recorder = MetricsRecorder(metrics or MetricsRegistry())
        self.recorder = recorder
        self.metrics = getattr(recorder, "metrics", None) or metrics \
            or MetricsRegistry()
        self._clock = clock
        self.batcher = DynamicBatcher(self.config, self._on_flush, clock=clock)
        workers = dispatchers if dispatchers is not None else len(pool.members)
        if workers < 1:
            raise ValueError(f"dispatchers must be >= 1, got {workers}")
        self._dispatch = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="service-dispatch"
        )
        self._running = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "ServiceCore":
        """Start the batcher's flusher thread."""
        self._running = True
        self.batcher.start()
        return self

    def stop(self) -> None:
        """Flush residual work, drain dispatches, and refuse new traffic."""
        self._running = False
        self.batcher.stop()
        self._dispatch.shutdown(wait=True)

    def __enter__(self) -> "ServiceCore":
        """Context-manager start."""
        return self.start()

    def __exit__(self, *_exc) -> None:
        """Context-manager stop."""
        self.stop()

    # -- request path -------------------------------------------------

    def submit(self, request: AlignRequest) -> ReplySlot:
        """Admit one request; the returned slot always resolves."""
        slot = ReplySlot(request)
        with self.recorder.span(
            "service.submit", kernel=request.kernel_id,
            request_id=request.request_id,
        ):
            self.recorder.count("requests_total")
            problem = self._validate(request)
            if problem is not None:
                self.recorder.count("errors_total")
                slot.resolve(error_response(request.request_id, problem))
                return slot
            if not self._running:
                self.recorder.count("rejected_total")
                slot.resolve(
                    rejection(request.request_id, "service is stopped")
                )
                return slot
            admitted = self.batcher.offer(
                request.kernel_id,
                payload=slot,
                priority=request.priority,
                deadline_ms=request.deadline_ms,
            )
            if not admitted:
                self.recorder.count("rejected_total")
                self.recorder.count(
                    f"kernel.{request.kernel_id}.rejected_total"
                )
                slot.resolve(
                    rejection(
                        request.request_id,
                        f"kernel #{request.kernel_id} queue is full "
                        f"(depth {self.config.max_queue_depth}); retry later",
                    )
                )
                return slot
            self.recorder.count("admitted_total")
            # Per-kernel admission/queue/latency instruments carry the
            # demand signal the autoscale watcher differentiates.
            self.recorder.count(f"kernel.{request.kernel_id}.admitted_total")
        return slot

    def _validate(self, request: AlignRequest) -> Optional[str]:
        """Admission-time checks; a string describes the refusal."""
        if not self.pool.supports(request.kernel_id):
            known = self.pool.kernel_ids()
            return (
                f"kernel #{request.kernel_id} is not deployed on this "
                f"service (deployed: {known})"
            )
        try:
            spec = get_kernel(request.kernel_id)
        except KeyError:
            spec = None
        if spec is not None and spec.alphabet.is_struct:
            return (
                f"kernel #{request.kernel_id} consumes struct symbols, "
                f"which the JSON-line protocol cannot carry"
            )
        max_q, max_r = self.pool.max_lengths(request.kernel_id)
        if len(request.query) > max_q or len(request.reference) > max_r:
            return (
                f"pair {len(request.query)}x{len(request.reference)} exceeds "
                f"the deployed maxima {max_q}x{max_r}"
            )
        return None

    # -- batch execution ----------------------------------------------

    def _on_flush(
        self, kernel_id: int, entries: List[PendingEntry], trigger: str
    ) -> None:
        """Batcher callback: account the flush and hand off to dispatch."""
        self.recorder.count("flushes_total")
        self.recorder.count(f"flush_{trigger}_total")
        self.recorder.observe(
            "batch_size", len(entries),
            bounds=[float(b) for b in range(1, 129)],
        )
        self.recorder.observe(
            "batch_occupancy", len(entries) / self.config.max_batch,
            bounds=[k / 64.0 for k in range(1, 65)],
        )
        try:
            self._dispatch.submit(self._run_batch, kernel_id, entries, trigger)
        except RuntimeError:
            # Executor already shut down: answer rather than drop.
            for entry in entries:
                self._resolve_entry(
                    entry,
                    rejection(
                        entry.payload.request.request_id,
                        "service shut down before dispatch",
                    ),
                )

    def _run_batch(
        self,
        kernel_id: int,
        entries: List[PendingEntry],
        trigger: str = "size",
    ) -> None:
        """Execute one flushed batch on the pool and resolve its slots."""
        pairs = [
            (entry.payload.request.query, entry.payload.request.reference)
            for entry in entries
        ]
        dispatched_at = self._clock()
        for entry in entries:
            queued_ms = (dispatched_at - entry.enqueued_at) * 1000.0
            self.recorder.observe("queue_ms", queued_ms)
            self.recorder.observe(f"kernel.{kernel_id}.queue_ms", queued_ms)
        try:
            with self.recorder.span(
                "service.batch", kernel=kernel_id, size=len(entries),
                trigger=trigger,
            ):
                outcome, _member = self.pool.execute(kernel_id, pairs)
        except (PoolRejection, ValueError) as exc:
            self.recorder.count("errors_total", len(entries))
            self.recorder.count(
                f"kernel.{kernel_id}.completed_total", len(entries)
            )
            for entry in entries:
                self._resolve_entry(
                    entry,
                    error_response(entry.payload.request.request_id, str(exc)),
                )
            return
        errors = {err.index: err for err in outcome.errors}
        fingerprints = getattr(outcome, "fingerprints", None)
        cached_flags = getattr(outcome, "cached", None)
        if cached_flags:
            hits = sum(1 for flag in cached_flags if flag)
            if hits:
                self.recorder.count("cache_hits_total", hits)
            if hits < len(cached_flags):
                self.recorder.count(
                    "cache_misses_total", len(cached_flags) - hits
                )
        now = self._clock()
        for index, entry in enumerate(entries):
            request = entry.payload.request
            latency_ms = (now - entry.enqueued_at) * 1000.0
            if index in errors:
                self.recorder.count("errors_total")
                response = error_response(
                    request.request_id, errors[index].message
                )
            else:
                self.recorder.count("aligned_total")
                response = response_from_result(
                    request.request_id,
                    outcome.results[index],
                    latency_ms=latency_ms,
                    fingerprint=(
                        fingerprints[index] if fingerprints else None
                    ),
                    cached=(
                        cached_flags[index] if cached_flags is not None
                        else None
                    ),
                )
            self.recorder.observe("latency_ms", latency_ms)
            self.recorder.observe(f"kernel.{kernel_id}.latency_ms", latency_ms)
            self.recorder.count(f"kernel.{kernel_id}.completed_total")
            # The queueing + compute interval of this request, anchored at
            # its enqueue time — visible as an async lane in trace exports.
            self.recorder.record_span(
                "service.request", entry.enqueued_at, now,
                kernel=kernel_id, request_id=request.request_id,
                ok=index not in errors,
            )
            self._resolve_entry(entry, response)

    @staticmethod
    def _resolve_entry(entry: PendingEntry, response: AlignResponse) -> None:
        """Resolve the reply slot riding in a pending entry."""
        slot: ReplySlot = entry.payload
        slot.resolve(response)

    # -- introspection ------------------------------------------------

    def metrics_snapshot(self) -> Dict:
        """Service metrics plus live pool stats (JSON-safe)."""
        snapshot = self.recorder.snapshot()
        snapshot["pool"] = self.pool.stats()
        snapshot["kernels"] = self.pool.kernel_ids()
        cache = getattr(self.pool, "cache", None)
        if cache is not None:
            snapshot["cache"] = cache.stats()
        return snapshot

    def trace_snapshot(self) -> Dict:
        """Chrome trace JSON of whatever the recorder has captured.

        With the default :class:`MetricsRecorder` the event list is empty
        (only counters are kept); a :class:`TraceRecorder` yields the full
        span/counter timeline.
        """
        return chrome_trace(self.recorder)


class _ServiceHandler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, answer asynchronously."""

    def handle(self) -> None:
        """Pump requests until EOF; responses write as they resolve."""
        core: ServiceCore = self.server.core  # type: ignore[attr-defined]
        write_lock = threading.Lock()

        def send(payload: bytes) -> None:
            try:
                with write_lock:
                    self.wfile.write(payload)
                    self.wfile.flush()
            except (OSError, ValueError):
                pass  # connection gone; the metrics still counted the work

        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                message = decode_line(line)
                kind = message.get("type")
                if kind == "align":
                    request = AlignRequest.from_dict(message)
                    slot = core.submit(request)
                    slot.add_done_callback(
                        lambda response: send(response.to_line())
                    )
                elif kind == "metrics":
                    send(encode_line({
                        "type": "metrics",
                        "id": message.get("id"),
                        "snapshot": core.metrics_snapshot(),
                    }))
                elif kind == "metrics_text":
                    send(encode_line({
                        "type": "metrics_text",
                        "id": message.get("id"),
                        "text": render_text_snapshot(core.metrics_snapshot()),
                    }))
                elif kind == "trace":
                    send(encode_line({
                        "type": "trace",
                        "id": message.get("id"),
                        "trace": core.trace_snapshot(),
                    }))
                elif kind == "ping":
                    send(encode_line({"type": "pong", "id": message.get("id")}))
                else:
                    raise ProtocolError(f"unknown message type {kind!r}")
            except ProtocolError as exc:
                send(encode_line({
                    "type": "result",
                    "id": message.get("id") if isinstance(message, dict) else None,
                    "status": "error",
                    "error": str(exc),
                }))


class AlignmentServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-line TCP front end over a :class:`ServiceCore`.

    Binds immediately; call :meth:`serve_in_thread` (tests, loadgen) or
    ``serve_forever`` (CLI).  ``server_address`` reports the bound
    (host, port) — pass port 0 to let the OS choose.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: Tuple[str, int], core: ServiceCore
    ) -> None:
        self.core = core
        super().__init__(address, _ServiceHandler)

    def serve_in_thread(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread and return it."""
        thread = threading.Thread(
            target=self.serve_forever, name="alignment-server", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, close the socket, and stop the core."""
        self.shutdown()
        self.server_close()
        self.core.stop()
