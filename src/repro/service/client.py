"""Clients of the alignment service, plus an open-loop load generator.

:class:`AlignmentClient` speaks the JSON-line protocol over TCP: a
reader thread demultiplexes responses by request id, so many requests
can be in flight on one connection (the wire analogue of ``N_K``
channels).  :class:`InProcClient` offers the same surface directly over
a :class:`~repro.service.server.ServiceCore` — no sockets — which is
what the CI smoke job and the latency benchmark use.

:class:`LoadGenerator` drives either client *open-loop*: arrival times
are drawn from a seeded Poisson process at the offered rate and requests
fire at their scheduled instants regardless of completions, so queueing
delay shows up in the measured latency instead of throttling the
offered load (closed-loop generators hide saturation).

Failure handling is explicit rather than hung: ``connect_timeout``
bounds the TCP handshake, ``read_timeout`` bounds how long an
*outstanding* request may wait for any byte from the server (an idle
connection is never torn down), and :func:`connect_with_retry` wraps
construction in a bounded exponential backoff — the shape a caller
needs when the server is still spawning shards.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import (
    AlignRequest,
    AlignResponse,
    ProtocolError,
    Status,
    decode_line,
    encode_line,
)
from repro.service.server import ReplySlot, ServiceCore


def exact_percentile(samples: Sequence[float], q: float) -> float:
    """Exact ``q``-percentile (nearest-rank) of a non-empty sample list.

    >>> exact_percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.0
    """
    if not samples:
        raise ValueError("need at least one sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(frozen=True)
class LoadProfile:
    """A deterministic time-varying multiplier on the offered rate.

    Three shapes cover the non-stationary traffic the autoscale demo
    (and any capacity experiment) needs:

    * ``const[:mult]`` — a flat multiplier (default 1.0; the identity
      profile, equivalent to not passing one);
    * ``step:<t>:<mult>`` — 1.0 until ``t`` seconds into the run, then
      ``mult`` (the overload step an SLO-recovery demo applies);
    * ``ramp:<t0>:<t1>:<mult>`` — 1.0 until ``t0``, linear up (or down)
      to ``mult`` by ``t1``, then flat.

    ``at(t)`` is the instantaneous multiplier; the generator draws each
    Poisson gap at ``rate * at(elapsed)``, so the arrival process stays
    open-loop and seeded-reproducible while its intensity shifts.
    """

    kind: str = "const"
    t0_s: float = 0.0
    t1_s: float = 0.0
    multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("const", "step", "ramp"):
            raise ValueError(
                f"profile kind must be const/step/ramp, got {self.kind!r}"
            )
        if self.multiplier <= 0:
            raise ValueError(
                f"profile multiplier must be positive, got {self.multiplier}"
            )
        if self.t0_s < 0:
            raise ValueError(f"profile start must be >= 0, got {self.t0_s}")
        if self.kind == "ramp" and self.t1_s <= self.t0_s:
            raise ValueError(
                f"ramp needs t1 > t0, got t0={self.t0_s} t1={self.t1_s}"
            )

    @staticmethod
    def parse(text: str) -> "LoadProfile":
        """Parse the CLI spelling (``step:<t>:<mult>`` etc.)."""
        parts = text.split(":")
        try:
            if parts[0] == "const" and len(parts) in (1, 2):
                mult = float(parts[1]) if len(parts) == 2 else 1.0
                return LoadProfile(kind="const", multiplier=mult)
            if parts[0] == "step" and len(parts) == 3:
                return LoadProfile(
                    kind="step", t0_s=float(parts[1]),
                    multiplier=float(parts[2]),
                )
            if parts[0] == "ramp" and len(parts) == 4:
                return LoadProfile(
                    kind="ramp", t0_s=float(parts[1]), t1_s=float(parts[2]),
                    multiplier=float(parts[3]),
                )
        except ValueError as exc:
            if "profile" in str(exc):
                raise
            raise ValueError(
                f"cannot parse load profile {text!r}: {exc}"
            ) from None
        raise ValueError(
            f"cannot parse load profile {text!r}; expected const[:mult], "
            f"step:<t>:<mult> or ramp:<t0>:<t1>:<mult>"
        )

    def at(self, t_s: float) -> float:
        """Instantaneous rate multiplier ``t_s`` seconds into the run."""
        if self.kind == "const":
            return self.multiplier
        if self.kind == "step":
            return self.multiplier if t_s >= self.t0_s else 1.0
        if t_s <= self.t0_s:
            return 1.0
        if t_s >= self.t1_s:
            return self.multiplier
        fraction = (t_s - self.t0_s) / (self.t1_s - self.t0_s)
        return 1.0 + (self.multiplier - 1.0) * fraction

    def phase_bounds(self) -> List[float]:
        """Run offsets (seconds) where the offered intensity changes."""
        if self.kind == "step":
            return [self.t0_s]
        if self.kind == "ramp":
            return [self.t0_s, self.t1_s]
        return []

    def describe(self) -> str:
        """The parseable spelling back."""
        if self.kind == "const":
            return f"const:{self.multiplier:g}"
        if self.kind == "step":
            return f"step:{self.t0_s:g}:{self.multiplier:g}"
        return f"ramp:{self.t0_s:g}:{self.t1_s:g}:{self.multiplier:g}"


class InProcClient:
    """The client surface over an in-process :class:`ServiceCore`."""

    def __init__(self, core: ServiceCore) -> None:
        self.core = core
        self._ids = itertools.count()

    def _next_id(self) -> str:
        return f"inproc-{next(self._ids)}"

    def submit(
        self,
        kernel_id: int,
        query: Sequence[Any],
        reference: Sequence[Any],
        deadline_ms: Optional[float] = None,
        priority: int = 0,
        request_id: Optional[str] = None,
    ) -> ReplySlot:
        """Fire one request; returns its reply slot immediately."""
        request = AlignRequest(
            request_id=request_id or self._next_id(),
            kernel_id=kernel_id,
            query=tuple(query),
            reference=tuple(reference),
            deadline_ms=deadline_ms,
            priority=priority,
        )
        return self.core.submit(request)

    def align(
        self,
        kernel_id: int,
        query: Sequence[Any],
        reference: Sequence[Any],
        timeout: Optional[float] = 30.0,
        **kwargs: Any,
    ) -> AlignResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(kernel_id, query, reference, **kwargs).result(timeout)

    def metrics(self) -> Dict:
        """Live metrics snapshot."""
        return self.core.metrics_snapshot()

    def metrics_text(self) -> str:
        """Plain-text rendering of the metrics snapshot."""
        from repro.obs.export import render_text_snapshot

        return render_text_snapshot(self.core.metrics_snapshot())

    def trace(self) -> Dict:
        """Chrome trace JSON captured by the core's recorder."""
        return self.core.trace_snapshot()

    def close(self) -> None:
        """No-op (the core's owner stops it)."""


class ConnectError(ConnectionError):
    """Raised when every connection attempt of a retry budget failed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for connection attempts.

    Attempt ``i`` (0-based) sleeps
    ``min(max_delay_s, base_delay_s * multiplier ** i)`` before the
    next try; after ``attempts`` failures the caller gives up.  The
    schedule is deterministic — reproducible tests beat jittered ones
    here, and a handful of clients retrying a local service do not
    need thundering-herd protection.
    """

    attempts: int = 5
    base_delay_s: float = 0.1
    max_delay_s: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, attempt: int) -> float:
        """Backoff before the attempt after ``attempt`` (0-based)."""
        return min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** attempt
        )


def connect_with_retry(
    host: str,
    port: int,
    policy: Optional[RetryPolicy] = None,
    connect_timeout: float = 10.0,
    read_timeout: Optional[float] = None,
) -> "AlignmentClient":
    """Connect to a service, retrying with backoff while it comes up.

    Raises :class:`ConnectError` (chaining the last socket error) once
    the policy's attempt budget is exhausted.
    """
    policy = policy or RetryPolicy()
    last: Optional[OSError] = None
    for attempt in range(policy.attempts):
        try:
            return AlignmentClient(
                host, port,
                connect_timeout=connect_timeout,
                read_timeout=read_timeout,
            )
        except OSError as exc:
            last = exc
            if attempt + 1 < policy.attempts:
                time.sleep(policy.delay_s(attempt))
    raise ConnectError(
        f"could not connect to {host}:{port} after "
        f"{policy.attempts} attempts: {last}"
    ) from last


class AlignmentClient:
    """JSON-line TCP client with response demultiplexing by id.

    ``read_timeout`` bounds how long any *outstanding* request may go
    without the server producing a byte; when it trips, every pending
    request resolves as an error and the connection closes.  A quiet
    connection with nothing in flight is left alone.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        read_timeout: Optional[float] = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), connect_timeout)
        self._read_timeout = read_timeout
        self._sock.settimeout(read_timeout)
        self._wfile = self._sock.makefile("wb")
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[str, ReplySlot] = {}
        self._metrics_waiters: Dict[str, "_Mailbox"] = {}
        self._ids = itertools.count()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="alignment-client-reader", daemon=True
        )
        self._reader.start()

    def _next_id(self) -> str:
        return f"req-{next(self._ids)}"

    def _send(self, payload: bytes) -> None:
        with self._write_lock:
            self._wfile.write(payload)
            self._wfile.flush()

    def _read_loop(self) -> None:
        """Demultiplex every incoming line to its waiting slot.

        Reads raw ``recv`` chunks into a line buffer rather than
        iterating a file object: a read timeout must be able to fire
        *without* corrupting a partially received line, because an
        idle-connection timeout is ignored and reading continues.
        """
        buffer = bytearray()
        reason = "connection closed before a response arrived"
        try:
            while True:
                try:
                    chunk = self._sock.recv(65536)
                except socket.timeout:
                    with self._pending_lock:
                        overdue = bool(self._pending)
                    if not overdue:
                        continue
                    reason = (
                        "no response within the read timeout "
                        f"({self._read_timeout}s)"
                    )
                    break
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line = bytes(buffer[:newline]).strip()
                    del buffer[:newline + 1]
                    if line:
                        self._dispatch_line(line)
        except (OSError, ValueError):
            pass
        finally:
            self._fail_pending(reason)
            self.close()

    def _dispatch_line(self, line: bytes) -> None:
        """Route one decoded server line to its waiter."""
        try:
            message = decode_line(line)
        except ProtocolError:
            return
        kind = message.get("type")
        message_id = message.get("id")
        if kind == "result" and message_id is not None:
            with self._pending_lock:
                slot = self._pending.pop(message_id, None)
            if slot is not None:
                slot.resolve(AlignResponse.from_dict(message))
        elif (
            kind in ("metrics", "metrics_text", "trace", "pong")
            and message_id is not None
        ):
            with self._pending_lock:
                box = self._metrics_waiters.pop(message_id, None)
            if box is not None:
                box.put(message)

    def _fail_pending(self, reason: str) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.resolve(AlignResponse(
                request_id=slot.request.request_id,
                status=Status.ERROR,
                error=reason,
            ))

    def submit(
        self,
        kernel_id: int,
        query: Sequence[Any],
        reference: Sequence[Any],
        deadline_ms: Optional[float] = None,
        priority: int = 0,
        request_id: Optional[str] = None,
    ) -> ReplySlot:
        """Fire one request over the wire; returns its reply slot."""
        request = AlignRequest(
            request_id=request_id or self._next_id(),
            kernel_id=kernel_id,
            query=tuple(query),
            reference=tuple(reference),
            deadline_ms=deadline_ms,
            priority=priority,
        )
        slot = ReplySlot(request)
        with self._pending_lock:
            self._pending[request.request_id] = slot
        try:
            self._send(request.to_line())
        except (OSError, ValueError):
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
            slot.resolve(AlignResponse(
                request_id=request.request_id,
                status=Status.ERROR,
                error="connection lost while sending",
            ))
        return slot

    def align(
        self,
        kernel_id: int,
        query: Sequence[Any],
        reference: Sequence[Any],
        timeout: Optional[float] = 30.0,
        **kwargs: Any,
    ) -> AlignResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(kernel_id, query, reference, **kwargs).result(timeout)

    def metrics(self, timeout: float = 10.0) -> Dict:
        """Fetch the server's live metrics snapshot."""
        message_id = self._next_id()
        box = _Mailbox()
        with self._pending_lock:
            self._metrics_waiters[message_id] = box
        self._send(encode_line({"type": "metrics", "id": message_id}))
        reply = box.get(timeout)
        return reply["snapshot"]

    def metrics_text(self, timeout: float = 10.0) -> str:
        """Fetch the server's metrics snapshot as plain text."""
        message_id = self._next_id()
        box = _Mailbox()
        with self._pending_lock:
            self._metrics_waiters[message_id] = box
        self._send(encode_line({"type": "metrics_text", "id": message_id}))
        return box.get(timeout)["text"]

    def trace(self, timeout: float = 10.0) -> Dict:
        """Fetch the server-side Chrome trace JSON (empty if not tracing)."""
        message_id = self._next_id()
        box = _Mailbox()
        with self._pending_lock:
            self._metrics_waiters[message_id] = box
        self._send(encode_line({"type": "trace", "id": message_id}))
        return box.get(timeout)["trace"]

    def ping(self, timeout: float = 10.0) -> bool:
        """Round-trip liveness probe."""
        message_id = self._next_id()
        box = _Mailbox()
        with self._pending_lock:
            self._metrics_waiters[message_id] = box
        self._send(encode_line({"type": "ping", "id": message_id}))
        return box.get(timeout).get("type") == "pong"

    def close(self) -> None:
        """Close the connection (pending requests resolve as errors)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class _Mailbox:
    """A one-shot blocking slot for control-plane replies."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[Dict] = None

    def put(self, value: Dict) -> None:
        """Deliver the reply."""
        self._value = value
        self._event.set()

    def get(self, timeout: Optional[float]) -> Dict:
        """Wait for the reply."""
        if not self._event.wait(timeout):
            raise TimeoutError("no control-plane reply from the server")
        assert self._value is not None
        return self._value


@dataclass
class LoadReport:
    """Outcome of one open-loop run at one offered load."""

    offered_rps: float
    sent: int
    ok: int
    rejected: int
    errors: int
    elapsed_s: float
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    #: (completion offset seconds, latency ms) per OK response — the
    #: time-resolved view a shifting-load run is analysed with.
    samples: List[Tuple[float, float]] = field(
        default_factory=list, repr=False
    )

    @property
    def achieved_rps(self) -> float:
        """Completed-OK throughput over the run."""
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile_ms(self, q: float) -> Optional[float]:
        """Exact latency percentile of the OK responses."""
        if not self.latencies_ms:
            return None
        return exact_percentile(self.latencies_ms, q)

    def window_latencies_ms(self, t0_s: float, t1_s: float) -> List[float]:
        """OK latencies whose requests completed in ``[t0_s, t1_s)``."""
        return [
            latency for done_s, latency in self.samples
            if t0_s <= done_s < t1_s
        ]

    def window_percentile_ms(
        self, t0_s: float, t1_s: float, q: float
    ) -> Optional[float]:
        """Exact latency percentile within one completion window.

        This is how a non-stationary run is judged: the percentile of
        the *recovery* window, not the whole-run percentile the overload
        phase dominates.
        """
        window = self.window_latencies_ms(t0_s, t1_s)
        if not window:
            return None
        return exact_percentile(window, q)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (what the benchmark persists)."""
        return {
            "offered_rps": self.offered_rps,
            "sent": self.sent,
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": self.errors,
            "elapsed_s": self.elapsed_s,
            "achieved_rps": self.achieved_rps,
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
        }

    @staticmethod
    def merge(reports: Sequence["LoadReport"]) -> "LoadReport":
        """Combine per-worker reports of one concurrent run.

        Counts and offered load add; elapsed time is the slowest
        worker's (they run simultaneously); latency samples pool, so
        percentiles of the merged report are exact over every request.
        """
        if not reports:
            raise ValueError("need at least one report to merge")
        merged_latencies: List[float] = []
        merged_samples: List[Tuple[float, float]] = []
        for report in reports:
            merged_latencies.extend(report.latencies_ms)
            merged_samples.extend(report.samples)
        merged_samples.sort()
        return LoadReport(
            offered_rps=sum(r.offered_rps for r in reports),
            sent=sum(r.sent for r in reports),
            ok=sum(r.ok for r in reports),
            rejected=sum(r.rejected for r in reports),
            errors=sum(r.errors for r in reports),
            elapsed_s=max(r.elapsed_s for r in reports),
            latencies_ms=merged_latencies,
            samples=merged_samples,
        )

    def summary(self) -> str:
        """One-line human rendering."""
        p50 = self.percentile_ms(0.50)
        p99 = self.percentile_ms(0.99)
        return (
            f"offered {self.offered_rps:8.1f} rps | achieved "
            f"{self.achieved_rps:8.1f} rps | ok {self.ok} rej {self.rejected} "
            f"err {self.errors} | p50 "
            f"{p50 if p50 is None else format(p50, '.2f')} ms | p99 "
            f"{p99 if p99 is None else format(p99, '.2f')} ms"
        )


class LoadGenerator:
    """Seeded open-loop Poisson traffic over any client.

    ``workload`` is a list of ``(kernel_id, query, reference)`` tuples;
    requests cycle through it.  Arrival gaps are ``Exp(rate)`` draws
    from ``random.Random(seed)``, so a run is reproducible end to end.
    """

    def __init__(
        self,
        client: Any,
        workload: Sequence[Tuple[int, Sequence[Any], Sequence[Any]]],
        seed: int = 0,
    ) -> None:
        if not workload:
            raise ValueError("the load generator needs a non-empty workload")
        self.client = client
        self.workload = list(workload)
        self.seed = seed

    def run(
        self,
        rate_rps: float,
        n_requests: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        result_timeout: float = 120.0,
        duration_s: Optional[float] = None,
        profile: Optional[LoadProfile] = None,
    ) -> LoadReport:
        """Offer open-loop Poisson load and collect every answer.

        The run is bounded by ``n_requests``, ``duration_s``, or both
        (whichever trips first); at least one must be given.  ``profile``
        modulates the instantaneous rate over the run (step/ramp — see
        :class:`LoadProfile`): each arrival gap is drawn at
        ``rate_rps * profile.at(elapsed)``, keeping the process seeded
        and reproducible while its intensity shifts.  The report's
        ``samples`` carry per-response completion offsets, so phase-wise
        percentiles (baseline / overload / recovery) come from
        :meth:`LoadReport.window_percentile_ms`.
        """
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive, got {rate_rps}")
        if n_requests is None and duration_s is None:
            raise ValueError("bound the run with n_requests or duration_s")
        if n_requests is not None and n_requests < 1:
            raise ValueError(f"need at least one request, got {n_requests}")
        if duration_s is not None and duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        rng = random.Random(self.seed)
        started = time.perf_counter()
        next_fire = started
        slots: List[ReplySlot] = []
        done_at: List[Optional[float]] = []
        index = 0
        while True:
            if n_requests is not None and index >= n_requests:
                break
            if duration_s is not None and next_fire - started >= duration_s:
                break
            delay = next_fire - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            kernel_id, query, reference = self.workload[index % len(self.workload)]
            slot = self.client.submit(
                kernel_id, query, reference, deadline_ms=deadline_ms
            )
            slots.append(slot)
            done_at.append(None)

            def _stamp(_response, _i=index, _list=done_at):
                _list[_i] = time.perf_counter() - started

            slot.add_done_callback(_stamp)
            instant_rate = rate_rps * (
                profile.at(next_fire - started) if profile is not None else 1.0
            )
            next_fire += rng.expovariate(instant_rate)
            index += 1
        ok = rejected = errors = 0
        latencies: List[float] = []
        samples: List[Tuple[float, float]] = []
        for slot_index, slot in enumerate(slots):
            response = slot.result(timeout=result_timeout)
            if response.status is Status.OK:
                ok += 1
                if response.latency_ms is not None:
                    latencies.append(response.latency_ms)
                    completed = done_at[slot_index]
                    if completed is None:
                        # done-callback raced result(); harvest time is
                        # an upper bound good enough for windowing
                        completed = time.perf_counter() - started
                    samples.append((completed, response.latency_ms))
            elif response.status is Status.REJECTED:
                rejected += 1
            else:
                errors += 1
        elapsed = time.perf_counter() - started
        samples.sort()
        return LoadReport(
            offered_rps=rate_rps,
            sent=len(slots),
            ok=ok,
            rejected=rejected,
            errors=errors,
            elapsed_s=elapsed,
            latencies_ms=latencies,
            samples=samples,
        )

    def replay(
        self,
        deadline_ms: Optional[float] = None,
        result_timeout: float = 120.0,
        window: int = 64,
    ) -> LoadReport:
        """Replay the workload once, in order, closed-loop.

        The trace-replay mode: instead of Poisson arrivals at a chosen
        rate, every workload entry is submitted exactly once in its
        recorded order, with at most ``window`` requests in flight —
        the shape of a pipeline driving the service as fast as it will
        go.  ``offered_rps`` on the report is the achieved submission
        rate (there is no synthetic arrival process to offer).
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        started = time.perf_counter()
        pending: List[ReplySlot] = []
        ok = rejected = errors = 0
        latencies: List[float] = []

        def settle(slot: ReplySlot) -> None:
            nonlocal ok, rejected, errors
            response = slot.result(timeout=result_timeout)
            if response.status is Status.OK:
                ok += 1
                if response.latency_ms is not None:
                    latencies.append(response.latency_ms)
            elif response.status is Status.REJECTED:
                rejected += 1
            else:
                errors += 1

        for kernel_id, query, reference in self.workload:
            if len(pending) >= window:
                settle(pending.pop(0))
            pending.append(self.client.submit(
                kernel_id, query, reference, deadline_ms=deadline_ms
            ))
        for slot in pending:
            settle(slot)
        elapsed = time.perf_counter() - started
        sent = len(self.workload)
        return LoadReport(
            offered_rps=sent / elapsed if elapsed > 0 else 0.0,
            sent=sent,
            ok=ok,
            rejected=rejected,
            errors=errors,
            elapsed_s=elapsed,
            latencies_ms=latencies,
        )

    def run_concurrent(
        self,
        rate_rps: float,
        n_requests: int,
        concurrency: int,
        deadline_ms: Optional[float] = None,
        result_timeout: float = 120.0,
        profile: Optional[LoadProfile] = None,
    ) -> LoadReport:
        """Offer the load from ``concurrency`` firing threads.

        One open-loop thread caps out when the per-request submit cost
        approaches the inter-arrival gap; splitting the offered rate
        across workers keeps the *aggregate* arrival process honest at
        rates a single thread cannot sustain (each worker draws its own
        seeded Poisson gaps at ``rate/concurrency``).  Worker ``i``
        starts at a rotated offset of the workload so concurrent
        workers exercise different keys, and the merged report pools
        every latency sample.
        """
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if concurrency == 1:
            return self.run(
                rate_rps, n_requests,
                deadline_ms=deadline_ms, result_timeout=result_timeout,
                profile=profile,
            )
        share, remainder = divmod(n_requests, concurrency)
        results: List[Optional[LoadReport]] = [None] * concurrency
        errors: List[BaseException] = []

        def worker(index: int) -> None:
            count = share + (1 if index < remainder else 0)
            if count == 0:
                return
            offset = (index * len(self.workload)) // concurrency
            rotated = self.workload[offset:] + self.workload[:offset]
            generator = LoadGenerator(
                self.client, rotated, seed=self.seed + index
            )
            try:
                results[index] = generator.run(
                    rate_rps / concurrency, count,
                    deadline_ms=deadline_ms, result_timeout=result_timeout,
                    profile=profile,
                )
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(
                target=worker, args=(index,),
                name=f"loadgen-{index}", daemon=True,
            )
            for index in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return LoadReport.merge([r for r in results if r is not None])
