"""Compatibility re-export: the metrics primitives live in :mod:`repro.obs`.

PR 4 unified the service-local metrics with the end-to-end observability
layer; :class:`Counter`, :class:`Histogram` and :class:`MetricsRegistry`
moved to :mod:`repro.obs.metrics` so the engine, host and parallel layers
can record through the same registry without importing the service
package.  This module keeps the historical import path working.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    geometric_bounds,
)

__all__ = ["Counter", "Histogram", "MetricsRegistry", "geometric_bounds"]
