"""Online alignment serving: the always-on face of the simulated FPGA.

Everything below the :mod:`repro.host` layer is batch-offline: you hand
``DeviceRuntime.run`` a pre-formed batch and wait for it to drain.
This package turns that into a request path, mirroring the paper's host
design (Section 4, step 6) one level up:

* :mod:`repro.service.protocol` — request/response dataclasses with a
  deterministic JSON-line wire encoding;
* :mod:`repro.service.batcher`  — per-kernel dynamic batching with size-
  and deadline-triggered flush plus admission control (the software twin
  of the arbiter filling ``N_B`` blocks);
* :mod:`repro.service.pool`     — a pool of :class:`DeviceRuntime`\\ s
  (optionally built from a linked multi-kernel design) with least-loaded
  routing;
* :mod:`repro.service.server`   — the serving core and a threaded TCP
  front end;
* :mod:`repro.service.client`   — TCP/in-proc clients and an open-loop
  Poisson load generator.

Counters, histograms and (optionally) spans are reported through
:mod:`repro.obs` — the core's default recorder keeps the always-on
metrics; install a :class:`~repro.obs.TraceRecorder` for Chrome-trace
timelines (``repro trace``).  :mod:`repro.service.metrics` remains as a
compatibility re-export of :mod:`repro.obs.metrics`.
"""

from repro.service.batcher import BatcherConfig, DynamicBatcher
from repro.service.client import (
    AlignmentClient,
    InProcClient,
    LoadGenerator,
    LoadReport,
)
from repro.service.metrics import Counter, Histogram, MetricsRegistry
from repro.service.pool import DevicePool
from repro.service.protocol import (
    AlignRequest,
    AlignResponse,
    ProtocolError,
    Status,
)
from repro.service.server import AlignmentServer, ReplySlot, ServiceCore

__all__ = [
    "AlignRequest",
    "AlignResponse",
    "AlignmentClient",
    "AlignmentServer",
    "BatcherConfig",
    "Counter",
    "DevicePool",
    "DynamicBatcher",
    "Histogram",
    "InProcClient",
    "LoadGenerator",
    "LoadReport",
    "MetricsRegistry",
    "ProtocolError",
    "ReplySlot",
    "ServiceCore",
    "Status",
]
