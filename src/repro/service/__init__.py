"""Online alignment serving: the always-on face of the simulated FPGA.

Everything below the :mod:`repro.host` layer is batch-offline: you hand
``DeviceRuntime.submit`` a pre-formed batch and wait for it to drain.
This package turns that into a request path, mirroring the paper's host
design (Section 4, step 6) one level up:

* :mod:`repro.service.protocol` — request/response dataclasses with a
  deterministic JSON-line wire encoding;
* :mod:`repro.service.batcher`  — per-kernel dynamic batching with size-
  and deadline-triggered flush plus admission control (the software twin
  of the arbiter filling ``N_B`` blocks);
* :mod:`repro.service.pool`     — a pool of :class:`DeviceRuntime`\\ s
  (optionally built from a linked multi-kernel design) with least-loaded
  routing;
* :mod:`repro.service.server`   — the serving core and a threaded TCP
  front end;
* :mod:`repro.service.client`   — TCP/in-proc clients and an open-loop
  Poisson load generator;
* :mod:`repro.service.metrics`  — counters and latency/occupancy
  histograms with p50/p95/p99 snapshots.
"""

from repro.service.batcher import BatcherConfig, DynamicBatcher
from repro.service.client import (
    AlignmentClient,
    InProcClient,
    LoadGenerator,
    LoadReport,
)
from repro.service.metrics import Counter, Histogram, MetricsRegistry
from repro.service.pool import DevicePool
from repro.service.protocol import (
    AlignRequest,
    AlignResponse,
    ProtocolError,
    Status,
)
from repro.service.server import AlignmentServer, ReplySlot, ServiceCore

__all__ = [
    "AlignRequest",
    "AlignResponse",
    "AlignmentClient",
    "AlignmentServer",
    "BatcherConfig",
    "Counter",
    "DevicePool",
    "DynamicBatcher",
    "Histogram",
    "InProcClient",
    "LoadGenerator",
    "LoadReport",
    "MetricsRegistry",
    "ProtocolError",
    "ReplySlot",
    "ServiceCore",
    "Status",
]
