"""Online alignment serving: the always-on face of the simulated FPGA.

Everything below the :mod:`repro.host` layer is batch-offline: you hand
``DeviceRuntime.run`` a pre-formed batch and wait for it to drain.
This package turns that into a request path, mirroring the paper's host
design (Section 4, step 6) one level up:

* :mod:`repro.service.protocol` — request/response dataclasses with a
  deterministic JSON-line wire encoding;
* :mod:`repro.service.batcher`  — per-kernel dynamic batching with size-
  and deadline-triggered flush plus admission control (the software twin
  of the arbiter filling ``N_B`` blocks);
* :mod:`repro.service.pool`     — a pool of :class:`DeviceRuntime`\\ s
  (optionally built from a linked multi-kernel design) with least-loaded
  routing;
* :mod:`repro.service.server`   — the serving core and a threaded TCP
  front end;
* :mod:`repro.service.client`   — TCP/in-proc clients and an open-loop
  Poisson load generator.

Counters, histograms and (optionally) spans are reported through
:mod:`repro.obs` — the core's default recorder keeps the always-on
metrics; install a :class:`~repro.obs.TraceRecorder` for Chrome-trace
timelines (``repro trace``).  The metric primitives themselves
(``Counter``/``Histogram``/``MetricsRegistry``) live in
:mod:`repro.obs.metrics` and are re-exported here for convenience.

For scale-out beyond one process, :mod:`repro.shard` fronts N worker
processes — each running this package's server unchanged — behind one
asyncio endpoint with consistent-hash routing on cache fingerprints.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.service.batcher import BatcherConfig, DynamicBatcher
from repro.service.client import (
    AlignmentClient,
    ConnectError,
    InProcClient,
    LoadGenerator,
    LoadProfile,
    LoadReport,
    RetryPolicy,
    connect_with_retry,
)
from repro.service.pool import DevicePool
from repro.service.protocol import (
    AlignRequest,
    AlignResponse,
    ProtocolError,
    Status,
)
from repro.service.server import AlignmentServer, ReplySlot, ServiceCore

__all__ = [
    "AlignRequest",
    "AlignResponse",
    "AlignmentClient",
    "AlignmentServer",
    "BatcherConfig",
    "ConnectError",
    "Counter",
    "DevicePool",
    "DynamicBatcher",
    "Histogram",
    "InProcClient",
    "LoadGenerator",
    "LoadProfile",
    "LoadReport",
    "MetricsRegistry",
    "ProtocolError",
    "ReplySlot",
    "RetryPolicy",
    "ServiceCore",
    "Status",
    "connect_with_retry",
]
