"""Per-kernel dynamic batching: the software twin of the block arbiter.

On the device, an arbiter keeps ``N_B`` blocks fed from a channel queue;
online, the equivalent problem is deciding *when to stop waiting for more
requests*.  :class:`DynamicBatcher` implements the classic two-trigger
policy:

* **size trigger** — the moment a kernel's queue holds ``max_batch``
  requests, a full batch flushes (blocks never idle while work is ready);
* **deadline trigger** — a background flusher thread flushes a partial
  batch when its oldest request has lingered ``max_delay_ms``, tightened
  further by any request-carried ``deadline_ms`` (a fraction of the
  budget is reserved for queueing, the rest for execution).

Admission control is the backpressure half: when a kernel's pending
queue is at ``max_queue_depth``, :meth:`DynamicBatcher.offer` refuses
the request (the caller answers it with a ``rejected`` response — never
a silent drop), bounding both memory and worst-case queueing delay.

The batcher is policy only: it never touches a runtime.  Flushed batches
are handed to the ``flush`` callable (the service core routes them to
the device pool), keeping the layer unit-testable with a stub.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: Fraction of a request's deadline budget the batcher may spend queueing;
#: the remainder is left for dispatch + execution.
QUEUE_BUDGET_FRACTION = 0.5

#: Flush trigger labels (also the metrics counter suffixes).
TRIGGER_SIZE = "size"
TRIGGER_DEADLINE = "deadline"
TRIGGER_SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class BatcherConfig:
    """Batching policy knobs.

    ``max_batch`` mirrors ``N_B`` — a flush should fill the blocks of
    one runtime; ``max_delay_ms`` bounds how long the first request of a
    partial batch waits; ``max_queue_depth`` is the per-kernel admission
    bound (queued-but-unflushed requests).
    """

    max_batch: int = 8
    max_delay_ms: float = 20.0
    max_queue_depth: int = 256

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms <= 0:
            raise ValueError(
                f"max_delay_ms must be positive, got {self.max_delay_ms}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass
class PendingEntry:
    """One queued request plus its bookkeeping.

    ``payload`` is opaque to the batcher (the service core stores the
    reply slot there).  ``flush_at`` is the absolute monotonic time by
    which this entry must leave the queue.
    """

    kernel_id: int
    priority: int
    payload: Any
    enqueued_at: float
    flush_at: float
    seq: int = 0

    @property
    def boarding_key(self):
        """Sort key deciding who boards a flush first."""
        return (-self.priority, self.seq)


class DynamicBatcher:
    """Size- and deadline-triggered per-kernel batching with admission.

    ``flush(kernel_id, entries, trigger)`` is invoked with the boarded
    entries (priority order) and the trigger label.  Size-triggered
    flushes run on the offering thread; deadline flushes on the internal
    flusher thread — the callable must therefore hand real work off
    quickly (the service core enqueues to its dispatch executor).
    """

    def __init__(
        self,
        config: BatcherConfig,
        flush: Callable[[int, List[PendingEntry], str], None],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._flush = flush
        self._clock = clock
        self._queues: Dict[int, List[PendingEntry]] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._seq = 0
        self._running = False
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Start the deadline flusher thread (idempotent)."""
        with self._lock:
            if self._running:
                return
            self._running = True
        self._thread = threading.Thread(
            target=self._flusher_loop, name="batcher-flusher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the flusher and flush every residual entry."""
        with self._lock:
            was_running = self._running
            self._running = False
            self._wakeup.notify_all()
        if was_running and self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for kernel_id, entries in self._drain_all():
            if entries:
                self._flush(kernel_id, entries, TRIGGER_SHUTDOWN)

    # -- admission ----------------------------------------------------

    def offer(
        self,
        kernel_id: int,
        payload: Any,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> bool:
        """Admit one request; ``False`` means backpressure-rejected.

        The entry's flush deadline is ``max_delay_ms``, tightened to a
        :data:`QUEUE_BUDGET_FRACTION` share of any request deadline.
        """
        now = self._clock()
        linger_ms = self.config.max_delay_ms
        if deadline_ms is not None:
            linger_ms = min(linger_ms, deadline_ms * QUEUE_BUDGET_FRACTION)
        batch: Optional[List[PendingEntry]] = None
        with self._lock:
            queue = self._queues.setdefault(kernel_id, [])
            if len(queue) >= self.config.max_queue_depth:
                return False
            entry = PendingEntry(
                kernel_id=kernel_id,
                priority=priority,
                payload=payload,
                enqueued_at=now,
                flush_at=now + linger_ms / 1000.0,
                seq=self._seq,
            )
            self._seq += 1
            queue.append(entry)
            if len(queue) >= self.config.max_batch:
                batch = self._board(queue)
            else:
                self._wakeup.notify_all()
        if batch is not None:
            self._flush(kernel_id, batch, TRIGGER_SIZE)
        return True

    def depth(self, kernel_id: int) -> int:
        """Currently queued (unflushed) entries for one kernel."""
        with self._lock:
            return len(self._queues.get(kernel_id, ()))

    # -- internals ----------------------------------------------------

    def _board(self, queue: List[PendingEntry]) -> List[PendingEntry]:
        """Pop up to ``max_batch`` entries in boarding order (lock held)."""
        queue.sort(key=lambda e: e.boarding_key)
        boarded = queue[: self.config.max_batch]
        del queue[: self.config.max_batch]
        return boarded

    def _drain_all(self) -> List:
        """Pop every queue completely, in batch-sized slices (shutdown)."""
        drained: List = []
        with self._lock:
            for kernel_id, queue in self._queues.items():
                while queue:
                    drained.append((kernel_id, self._board(queue)))
        return drained

    def _earliest_flush_at(self) -> Optional[float]:
        """Soonest deadline across all queues (lock held)."""
        deadlines = [
            min(entry.flush_at for entry in queue)
            for queue in self._queues.values()
            if queue
        ]
        return min(deadlines) if deadlines else None

    def _flusher_loop(self) -> None:
        """Wake at the earliest deadline and flush expired queues."""
        while True:
            expired: List = []
            with self._lock:
                if not self._running:
                    return
                earliest = self._earliest_flush_at()
                now = self._clock()
                if earliest is None:
                    self._wakeup.wait(timeout=0.5)
                    continue
                if earliest > now:
                    self._wakeup.wait(timeout=min(earliest - now, 0.5))
                    continue
                for kernel_id, queue in self._queues.items():
                    if queue and min(e.flush_at for e in queue) <= now:
                        expired.append((kernel_id, self._board(queue)))
            for kernel_id, batch in expired:
                if batch:
                    self._flush(kernel_id, batch, TRIGGER_DEADLINE)
