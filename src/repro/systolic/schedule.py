"""Wavefront schedule geometry of the chunked linear systolic array.

The DP matrix has the query along rows (1..Q) and the reference along
columns (1..R); row 0 and column 0 hold initialization scores.  Rows are
split into chunks of ``n_pe`` consecutive rows; within a chunk, PE ``p``
owns row ``chunk_base + p + 1`` and at wavefront ``w`` computes column
``j = w - p + 1``.  With a fixed band of half-width ``B``, only wavefronts
containing at least one in-band cell are issued (the band-tightened loop
bounds of banded RTL designs such as BSW).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.spec import band_contains


@dataclass(frozen=True)
class ChunkSchedule:
    """One chunk's geometry.

    ``base`` is the 0-based row offset (the chunk covers matrix rows
    ``base+1 .. base+rows``); ``wavefronts`` lists, per issued wavefront,
    its wavefront index ``w`` (which fixes every PE's column).
    """

    base: int
    rows: int
    wavefronts: Tuple[int, ...]


def _wavefront_active(
    w: int, base: int, rows: int, n_cols: int, banding: Optional[int]
) -> bool:
    """Whether wavefront ``w`` of a chunk touches any in-band cell."""
    for p in range(rows):
        j = w - p + 1
        if not 1 <= j <= n_cols:
            continue
        i = base + p + 1
        if band_contains(banding, i, j):
            return True
    return False


def chunk_schedules(
    n_rows: int, n_cols: int, n_pe: int, banding: Optional[int] = None
) -> List[ChunkSchedule]:
    """Build the full chunk/wavefront schedule for a Q x R matrix.

    ``n_rows`` = query length Q, ``n_cols`` = reference length R.
    """
    if n_rows < 1 or n_cols < 1:
        raise ValueError(f"matrix must be at least 1x1, got {n_rows}x{n_cols}")
    if n_pe < 1:
        raise ValueError(f"n_pe must be >= 1, got {n_pe}")
    chunks: List[ChunkSchedule] = []
    for base in range(0, n_rows, n_pe):
        rows = min(n_pe, n_rows - base)
        total = n_cols + rows - 1
        if banding is None:
            wavefronts = tuple(range(total))
        else:
            wavefronts = tuple(
                w
                for w in range(total)
                if _wavefront_active(w, base, rows, n_cols, banding)
            )
        chunks.append(ChunkSchedule(base=base, rows=rows, wavefronts=wavefronts))
    return chunks


def count_cycles(
    n_rows: int,
    n_cols: int,
    n_pe: int,
    ii: int = 1,
    banding: Optional[int] = None,
) -> Tuple[int, int]:
    """Closed-form (compute_cycles, load_cycles) of the wavefront pipeline.

    ``compute`` is issued wavefronts × II; ``load`` is one cycle per query
    symbol (each chunk serially loads its rows' symbols into the PEs,
    which DP-HLS does not overlap with computation — Section 7.3).
    """
    chunks = chunk_schedules(n_rows, n_cols, n_pe, banding)
    compute = sum(len(c.wavefronts) for c in chunks) * ii
    load = sum(c.rows for c in chunks)
    return compute, load
