"""The DP-HLS back-end: a linear systolic array simulator.

This package is the functional model of what the paper's fixed HLS pragmas
make the compiler produce (Section 5): the query is processed in chunks of
``N_PE`` rows, a wavefront pipeline sweeps each chunk while the reference
streams through the PE array, a preserved-row buffer carries the last PE's
outputs into the next chunk, traceback pointers land in per-PE memory banks
with coalesced addresses, and per-PE local-maximum tracking plus a reduction
locates the traceback start cell.

The simulator is *register-accurate*: every value a PE consumes comes from
the register or buffer the hardware would read, so a kernel that works here
has a correct systolic dataflow by construction.
"""

from repro.systolic.engine import SystolicAlignmentError, align
from repro.systolic.schedule import ChunkSchedule, chunk_schedules, count_cycles
from repro.systolic.tb_memory import TracebackMemory
from repro.systolic.traceback import BestCellTracker, TracebackError, walk_traceback

__all__ = [
    "align",
    "SystolicAlignmentError",
    "ChunkSchedule",
    "chunk_schedules",
    "count_cycles",
    "TracebackMemory",
    "BestCellTracker",
    "TracebackError",
    "walk_traceback",
]
