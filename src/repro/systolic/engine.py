"""Top-level systolic alignment engine.

``align`` runs one sequence pair through the full back-end pipeline the
paper's generated RTL implements:

1. sequential row/column score initialization (DP-HLS does not overlap this
   with compute — the source of its 7.7-16.8 % gap to hand-tuned RTL),
2. chunked wavefront computation on ``n_pe`` register-modelled PEs,
3. per-PE best-cell tracking and the cross-PE reduction,
4. the traceback FSM walk over banked pointer memory,
5. host-interface overhead accounting.

The PE dataflow is register-accurate: PE ``p`` reads its *up* input from PE
``p-1``'s output bus (one wavefront old), its *diag* input from a one-stage
delay register, its *left* input from its own output register, and PE 0
reads the preserved-row buffer filled by the last PE of the previous chunk.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import AlignmentResult, CycleReport
from repro.core.spec import KernelSpec, PEInput, StartRule, band_contains
from repro.obs.recorder import Recorder, get_recorder
from repro.systolic.schedule import chunk_schedules
from repro.systolic.tb_memory import TracebackMemory
from repro.systolic.traceback import BestCellTracker, walk_traceback

#: Host-interface cycles per transferred base — models the OpenCL transfer
#: and kernel-invocation overhead the paper's co-simulation includes.
#: Calibrated so kernel #1/#2 cycle totals land near Table 2.
INTERFACE_CYCLES_PER_BASE = 4

#: Fixed cycles to compute the traceback start address (the DSP-backed
#: pre-computation Section 7.1 mentions).
TRACEBACK_SETUP_CYCLES = 8


class SystolicAlignmentError(ValueError):
    """Raised for inputs the configured hardware could not process."""


def validate_pair(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    max_q: int,
    max_r: int,
) -> None:
    """Input checks shared by every backend (systolic and compiled).

    Raises :class:`SystolicAlignmentError` with identical messages
    regardless of which backend runs the pair — part of the backends'
    bit-identical contract.
    """
    n_rows, n_cols = len(query), len(reference)
    if n_rows < 1 or n_cols < 1:
        raise SystolicAlignmentError("query and reference must be non-empty")
    if n_rows > max_q or n_cols > max_r:
        raise SystolicAlignmentError(
            f"sequence pair {n_rows}x{n_cols} exceeds configured maximums "
            f"{max_q}x{max_r}; use host-side tiling (repro.tiling) for "
            f"longer alignments"
        )
    # Spot-check the first symbol of each input against the alphabet so a
    # mis-encoded sequence fails with a clear message instead of deep in
    # the PE function.
    for label, sequence in (("query", query), ("reference", reference)):
        if not spec.alphabet.validate_symbol(sequence[0]):
            raise SystolicAlignmentError(
                f"{spec.name}: {label} symbol {sequence[0]!r} does not "
                f"match alphabet {spec.alphabet.name!r}"
            )
    if spec.banding is not None and spec.start_rule is StartRule.BOTTOM_RIGHT:
        if abs(n_rows - n_cols) > spec.banding:
            raise SystolicAlignmentError(
                f"banded global alignment needs |Q - R| <= band "
                f"({abs(n_rows - n_cols)} > {spec.banding})"
            )


def check_corner(spec: KernelSpec, row0: np.ndarray, col0: np.ndarray) -> None:
    """Shared init consistency check: cell (0, 0) must be unambiguous."""
    if not np.allclose(row0[0], col0[0]):
        raise SystolicAlignmentError(
            f"{spec.name}: init_row[0] and init_col[0] disagree on the "
            f"corner cell: {row0[0]} vs {col0[0]}"
        )


def align(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    params: Any = None,
    n_pe: int = 32,
    ii: int = 1,
    max_query_len: Optional[int] = None,
    max_ref_len: Optional[int] = None,
    collect_matrix: bool = False,
    model_interface: bool = True,
) -> AlignmentResult:
    """Align one sequence pair on a modelled ``n_pe``-PE systolic block.

    Parameters mirror the front-end knobs: ``params`` defaults to the
    kernel's ``default_params``; ``max_query_len``/``max_ref_len`` size the
    traceback memory (defaulting to the actual lengths); ``ii`` is the
    wavefront initiation interval the synthesis model derived;
    ``collect_matrix`` additionally returns the full score matrix for
    debugging and oracle comparison.

    Execution reports through the current :mod:`repro.obs` recorder:
    an ``engine.align`` span wrapping per-chunk ``engine.chunk`` spans,
    plus cell/wavefront/traceback-write counters.  With the default
    :class:`~repro.obs.recorder.NullRecorder` every recording call is a
    no-op whose overhead is bounded by ``benchmarks/test_obs_overhead``.
    """
    recorder = get_recorder()
    if not recorder.enabled:
        return _align_impl(
            spec, query, reference, params, n_pe, ii, max_query_len,
            max_ref_len, collect_matrix, model_interface, recorder,
        )
    with recorder.span(
        "engine.align", kernel=spec.name, query_len=len(query),
        ref_len=len(reference), n_pe=n_pe, ii=ii,
    ):
        return _align_impl(
            spec, query, reference, params, n_pe, ii, max_query_len,
            max_ref_len, collect_matrix, model_interface, recorder,
        )


def _align_impl(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    params: Any,
    n_pe: int,
    ii: int,
    max_query_len: Optional[int],
    max_ref_len: Optional[int],
    collect_matrix: bool,
    model_interface: bool,
    recorder: Recorder,
) -> AlignmentResult:
    n_rows, n_cols = len(query), len(reference)
    max_q = max_query_len if max_query_len is not None else n_rows
    max_r = max_ref_len if max_ref_len is not None else n_cols
    validate_pair(spec, query, reference, max_q, max_r)
    if params is None:
        params = spec.default_params

    n_layers = spec.n_layers
    sentinel = spec.sentinel()
    sentinel_row = (sentinel,) * n_layers
    quantize = spec.score_type.quantize

    row0 = spec.init_row_scores(params, n_cols + 1)
    col0 = spec.init_col_scores(params, n_rows + 1)
    check_corner(spec, row0, col0)

    matrix: Optional[np.ndarray] = None
    if collect_matrix:
        matrix = np.full((n_layers, n_rows + 1, n_cols + 1), sentinel)
        matrix[:, 0, :] = row0.T
        matrix[:, :, 0] = col0.T

    tb_mem: Optional[TracebackMemory] = None
    if spec.has_traceback:
        tb_mem = TracebackMemory(n_pe, max_q, max_r, spec.tb_ptr_bits)
        tb_mem.begin_alignment(n_cols)

    tracker = BestCellTracker(spec, n_pe, n_rows, n_cols)
    cell = PEInput(
        up=sentinel_row, diag=sentinel_row, left=sentinel_row,
        qry=None, ref=None, params=params,
    )
    pe_func = spec.pe_func
    score_layer = spec.score_layer
    banding = spec.banding

    preserved: List[Tuple[float, ...]] = [tuple(row0[j]) for j in range(n_cols + 1)]
    bottom_right: Optional[Tuple[float, ...]] = None
    stride = n_cols + n_pe - 1
    chunks = chunk_schedules(n_rows, n_cols, n_pe, banding)
    total_wavefronts = 0
    cells_evaluated = 0
    tracing = recorder.enabled

    for chunk_idx, chunk in enumerate(chunks):
        chunk_started = time.monotonic() if tracing else 0.0
        base, rows = chunk.base, chunk.rows
        total_wavefronts += len(chunk.wavefronts)
        # Register state at chunk start (see module docstring).
        left_reg: List[Tuple[float, ...]] = [
            tuple(col0[base + p + 1]) for p in range(rows)
        ]
        diag_reg: List[Tuple[float, ...]] = [
            tuple(col0[base + p]) for p in range(rows)
        ]
        bus: List[Tuple[float, ...]] = [sentinel_row] * rows
        new_preserved: List[Tuple[float, ...]] = [sentinel_row] * (n_cols + 1)
        next_row = base + rows
        if next_row <= n_rows:
            new_preserved[0] = tuple(col0[next_row])
        addr_base = chunk_idx * stride

        for w in chunk.wavefronts:
            # Descending PE order so PE p reads PE p-1's *previous* output.
            for p in range(rows - 1, -1, -1):
                j = w - p + 1
                if not 1 <= j <= n_cols:
                    continue
                i = base + p + 1
                if p == 0:
                    up = preserved[j]
                    diag = preserved[j - 1]
                else:
                    up = bus[p - 1]
                    diag = diag_reg[p]
                    diag_reg[p] = up  # becomes diag of (i, j+1)
                if band_contains(banding, i, j):
                    if banding is not None:
                        # Skipped leading wavefronts leave registers stale;
                        # any neighbour outside the band reads as sentinel
                        # (the boundary mux of banded RTL designs).
                        if not band_contains(banding, i - 1, j):
                            up = sentinel_row
                        if not band_contains(banding, i - 1, j - 1):
                            diag = sentinel_row
                        if not band_contains(banding, i, j - 1):
                            left_reg[p] = sentinel_row
                    cell.up = up
                    cell.diag = diag
                    cell.left = left_reg[p]
                    cell.qry = query[i - 1]
                    cell.ref = reference[j - 1]
                    scores, ptr = pe_func(cell)
                    cells_evaluated += 1
                    out = tuple(quantize(s) for s in scores)
                    tracker.observe(p, i, j, out[score_layer])
                    if tb_mem is not None:
                        tb_mem.write(p, addr_base + w, ptr)
                    if matrix is not None:
                        for layer in range(n_layers):
                            matrix[layer, i, j] = out[layer]
                else:
                    out = sentinel_row
                left_reg[p] = out
                bus[p] = out
                if p == rows - 1:
                    new_preserved[j] = out
                if i == n_rows and j == n_cols:
                    bottom_right = out
        preserved = new_preserved
        if tracing:
            recorder.record_span(
                "engine.chunk", chunk_started, time.monotonic(),
                index=chunk_idx, rows=rows, wavefronts=len(chunk.wavefronts),
            )

    # ------------------------------------------------------------------
    # locate the reported score / traceback start cell
    # ------------------------------------------------------------------
    if spec.start_rule is StartRule.BOTTOM_RIGHT:
        if bottom_right is None:
            raise SystolicAlignmentError(
                f"{spec.name}: bottom-right cell was never computed"
            )
        score = bottom_right[score_layer]
        start = (n_rows, n_cols)
    else:
        score, si, sj = tracker.reduce()
        start = (si, sj)

    alignment = None
    traceback_cycles = 0
    if tb_mem is not None:
        with recorder.span("engine.traceback", start_row=start[0],
                           start_col=start[1]):
            alignment = walk_traceback(spec, tb_mem, start)
        traceback_cycles = alignment.aligned_length + TRACEBACK_SETUP_CYCLES

    if tracing:
        recorder.count("engine.alignments")
        recorder.count("engine.wavefronts", total_wavefronts)
        recorder.count("engine.cells", cells_evaluated)
        recorder.count("engine.cells_total{backend=systolic}", cells_evaluated)
        if total_wavefronts:
            recorder.gauge(
                "engine.pe_utilization",
                cells_evaluated / (total_wavefronts * n_pe),
            )
        if tb_mem is not None:
            recorder.count("engine.tb_writes", tb_mem.writes)
            recorder.count("engine.tb_bank_conflicts", tb_mem.bank_conflicts)

    cycles = CycleReport(
        init_cycles=(n_cols + 1) + (n_rows + 1),
        load_cycles=n_rows,
        compute_cycles=total_wavefronts * ii,
        reduction_cycles=(
            0 if spec.start_rule is StartRule.BOTTOM_RIGHT
            else tracker.reduction_cycles()
        ),
        traceback_cycles=traceback_cycles,
        interface_cycles=(
            INTERFACE_CYCLES_PER_BASE * (n_rows + n_cols)
            if model_interface else 0
        ),
        wavefronts=total_wavefronts,
        ii=ii,
    )
    if alignment is not None:
        end = (alignment.query_start, alignment.ref_start)
    else:
        end = (0, 0)
    return AlignmentResult(
        score=score,
        start=start,
        end=end,
        alignment=alignment,
        cycles=cycles,
        matrix=matrix,
    )
