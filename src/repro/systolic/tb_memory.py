"""Banked traceback-pointer memory with coalesced addressing (Section 5.2).

Each PE owns a dedicated memory bank so all ``N_PE`` pointers of a wavefront
can be written in the same cycle.  Addresses are *coalesced*: every PE active
in a given wavefront writes to the same address, and consecutive wavefronts
map to consecutive addresses, which is what gives the real design its regular
BRAM access pattern.

For matrix cell (i, j) with i, j >= 1:

* bank     = (i - 1) mod N_PE
* chunk    = (i - 1) // N_PE
* address  = chunk * (R + N_PE - 1) + (j - 1) + bank

so that during wavefront ``w`` of chunk ``c`` every PE writes address
``c * (R + N_PE - 1) + w``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class TracebackMemory:
    """Per-PE banked pointer storage sized for the configured maximums."""

    def __init__(
        self,
        n_pe: int,
        max_query_len: int,
        max_ref_len: int,
        ptr_bits: int,
    ) -> None:
        if n_pe < 1:
            raise ValueError(f"n_pe must be >= 1, got {n_pe}")
        if max_query_len < 1 or max_ref_len < 1:
            raise ValueError("maximum sequence lengths must be >= 1")
        if ptr_bits < 2:
            raise ValueError("traceback pointers need at least 2 bits")
        self.n_pe = n_pe
        self.max_query_len = max_query_len
        self.max_ref_len = max_ref_len
        self.ptr_bits = ptr_bits
        n_chunks = -(-max_query_len // n_pe)  # ceil division
        self.depth = n_chunks * (max_ref_len + n_pe - 1)
        self._banks = np.zeros((n_pe, self.depth), dtype=np.int64)
        self._ref_len = max_ref_len  # stride of the current alignment
        self.writes = 0
        #: Per-bank write tallies for the current alignment.
        self.bank_writes: List[int] = [0] * n_pe
        #: Writes that revisited an already-written slot of their bank.
        #: Coalesced addressing gives every bank a strictly increasing
        #: address sequence, so any non-increasing write means two cells
        #: collided on one BRAM slot — a correctness hazard the real
        #: design cannot have, surfaced here as an observable counter.
        self.bank_conflicts = 0
        self._last_addr: List[int] = [-1] * n_pe

    # ------------------------------------------------------------------
    def begin_alignment(self, ref_len: int) -> None:
        """Reset write accounting and fix the address stride for one run."""
        if not 1 <= ref_len <= self.max_ref_len:
            raise ValueError(
                f"reference length {ref_len} exceeds configured maximum "
                f"{self.max_ref_len}"
            )
        self._ref_len = ref_len
        self.writes = 0
        self.bank_writes = [0] * self.n_pe
        self.bank_conflicts = 0
        self._last_addr = [-1] * self.n_pe

    @property
    def stride(self) -> int:
        """Addresses per chunk for the current alignment."""
        return self._ref_len + self.n_pe - 1

    def address(self, i: int, j: int) -> Tuple[int, int]:
        """Map matrix cell (i, j), both >= 1, to (bank, address)."""
        if i < 1 or j < 1:
            raise ValueError(f"cell ({i}, {j}) has no traceback pointer")
        bank = (i - 1) % self.n_pe
        chunk = (i - 1) // self.n_pe
        return bank, chunk * self.stride + (j - 1) + bank

    def write(self, bank: int, addr: int, ptr: int) -> None:
        """Store one pointer (one PE, one cycle)."""
        max_ptr = (1 << self.ptr_bits) - 1
        if not 0 <= ptr <= max_ptr:
            raise ValueError(
                f"pointer {ptr} does not fit in {self.ptr_bits} bits"
            )
        self._banks[bank][addr] = ptr
        self.writes += 1
        self.bank_writes[bank] += 1
        if addr <= self._last_addr[bank]:
            self.bank_conflicts += 1
        else:
            self._last_addr[bank] = addr

    def read(self, i: int, j: int) -> int:
        """Fetch the pointer stored for matrix cell (i, j)."""
        bank, addr = self.address(i, j)
        return int(self._banks[bank][addr])

    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Total pointer storage the design must provision."""
        return self.n_pe * self.depth * self.ptr_bits

    def bank_shape(self) -> Tuple[int, int]:
        """(depth, width_bits) of one PE's bank."""
        return self.depth, self.ptr_bits
