"""PE activity analysis: make the systolic schedule visible.

Section 7.2 infers systolic behaviour indirectly (from scaling curves)
because HLS output is unreadable.  Our schedule is explicit, so this
module computes the per-PE occupancy timeline directly: which PE evaluates
which cell on which issue slot, how many slots each PE idles at chunk
edges, and the resulting array utilization — the quantity whose decay
explains the N_PE throughput saturation of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.spec import band_contains
from repro.systolic.schedule import chunk_schedules


@dataclass(frozen=True)
class ActivityReport:
    """Occupancy statistics of one alignment's wavefront schedule."""

    n_pe: int
    issue_slots: int               # wavefronts issued (cycles at II=1)
    cell_evaluations: int          # PE-slots doing useful work
    per_pe_active: Tuple[int, ...]

    @property
    def utilization(self) -> float:
        """Fraction of PE-slots that evaluated a cell."""
        if self.issue_slots == 0:
            return 0.0
        return self.cell_evaluations / (self.issue_slots * self.n_pe)

    @property
    def idle_slots(self) -> int:
        """PE-slots wasted on pipeline fill/drain and band edges."""
        return self.issue_slots * self.n_pe - self.cell_evaluations


def analyze_activity(
    n_rows: int,
    n_cols: int,
    n_pe: int,
    banding: Optional[int] = None,
) -> ActivityReport:
    """Compute the occupancy of the chunked wavefront schedule."""
    chunks = chunk_schedules(n_rows, n_cols, n_pe, banding)
    per_pe = [0] * n_pe
    slots = 0
    for chunk in chunks:
        slots += len(chunk.wavefronts)
        for w in chunk.wavefronts:
            for p in range(chunk.rows):
                j = w - p + 1
                if not 1 <= j <= n_cols:
                    continue
                if band_contains(banding, chunk.base + p + 1, j):
                    per_pe[p] += 1
    return ActivityReport(
        n_pe=n_pe,
        issue_slots=slots,
        cell_evaluations=sum(per_pe),
        per_pe_active=tuple(per_pe),
    )


def render_occupancy(
    n_rows: int,
    n_cols: int,
    n_pe: int,
    banding: Optional[int] = None,
    max_width: int = 100,
) -> str:
    """ASCII Gantt of PE activity ('#' = evaluating, '.' = idle).

    Rows are PEs, columns are issue slots (truncated to ``max_width``);
    chunk boundaries appear as the characteristic staircase of a linear
    systolic array.
    """
    chunks = chunk_schedules(n_rows, n_cols, n_pe, banding)
    timeline: List[List[str]] = [[] for _ in range(n_pe)]
    for chunk in chunks:
        for w in chunk.wavefronts:
            for p in range(n_pe):
                j = w - p + 1
                active = (
                    p < chunk.rows
                    and 1 <= j <= n_cols
                    and band_contains(banding, chunk.base + p + 1, j)
                )
                timeline[p].append("#" if active else ".")
    lines = [
        f"PE occupancy: {n_rows}x{n_cols} matrix, N_PE={n_pe}"
        + (f", band={banding}" if banding else "")
    ]
    for p, row in enumerate(timeline):
        text = "".join(row)
        if len(text) > max_width:
            text = text[:max_width] + "…"
        lines.append(f"PE{p:<3d} {text}")
    report = analyze_activity(n_rows, n_cols, n_pe, banding)
    lines.append(
        f"utilization {100 * report.utilization:.1f}% "
        f"({report.cell_evaluations} evaluations / "
        f"{report.issue_slots} slots x {n_pe} PEs)"
    )
    return "\n".join(lines)
