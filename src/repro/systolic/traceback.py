"""Traceback-start reduction and the FSM traceback walker (Section 5.2).

``BestCellTracker`` models the per-PE local-optimum registers: each PE
remembers the best score among the cells it computed that satisfy the
kernel's start rule, and a log-depth reduction across PEs yields the global
start cell.  Ties are broken toward the smallest (i, j), which the reference
oracles replicate so systolic and oracle results are comparable cell-for-cell.

``walk_traceback`` replays the kernel's traceback finite state machine over
the banked pointer memory, applying the end rule (Section 2.2.3) and the
matrix-boundary moves along row 0 / column 0.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.result import Alignment, Move
from repro.core.spec import EndRule, KernelSpec, StartRule
from repro.systolic.tb_memory import TracebackMemory


class TracebackError(RuntimeError):
    """Raised when a kernel's traceback FSM misbehaves (loops or escapes)."""


class BestCellTracker:
    """Per-PE best-cell registers plus the cross-PE reduction."""

    def __init__(self, spec: KernelSpec, n_pe: int, n_rows: int, n_cols: int):
        self._spec = spec
        self._rule = spec.start_rule
        self._n_rows = n_rows
        self._n_cols = n_cols
        self.n_pe = n_pe
        #: per-PE (score, i, j) or None
        self._best: List[Optional[Tuple[float, int, int]]] = [None] * n_pe

    def eligible(self, i: int, j: int) -> bool:
        """Whether cell (i, j) can be a traceback start under the rule."""
        if self._rule is StartRule.GLOBAL_MAX:
            return True
        if self._rule is StartRule.BOTTOM_RIGHT:
            return i == self._n_rows and j == self._n_cols
        if self._rule is StartRule.LAST_ROW_MAX:
            return i == self._n_rows
        return i == self._n_rows or j == self._n_cols  # LAST_ROW_OR_COL_MAX

    def observe(self, pe: int, i: int, j: int, score: float) -> None:
        """One PE sees one computed cell (called every active cycle)."""
        if not self.eligible(i, j):
            return
        current = self._best[pe]
        if current is None or self._spec.better(score, current[0]):
            self._best[pe] = (score, i, j)
            return
        # Equal scores: keep the smallest (i, j) for deterministic ties.
        if not self._spec.better(current[0], score):
            if (i, j) < (current[1], current[2]):
                self._best[pe] = (score, i, j)

    def reduce(self) -> Tuple[float, int, int]:
        """Cross-PE reduction to the global optimum start cell."""
        winner: Optional[Tuple[float, int, int]] = None
        for entry in self._best:
            if entry is None:
                continue
            if winner is None or self._spec.better(entry[0], winner[0]):
                winner = entry
            elif not self._spec.better(winner[0], entry[0]):
                if (entry[1], entry[2]) < (winner[1], winner[2]):
                    winner = entry
        if winner is None:
            raise TracebackError(
                f"{self._spec.name}: no cell satisfied start rule "
                f"{self._rule.value}"
            )
        return winner

    def reduction_cycles(self) -> int:
        """Cycles of the log-depth maximum reduction (Section 5.2)."""
        if self._rule is StartRule.BOTTOM_RIGHT:
            return 0
        return max(1, math.ceil(math.log2(max(2, self.n_pe)))) + 2


def walk_traceback(
    spec: KernelSpec,
    memory: TracebackMemory,
    start: Tuple[int, int],
) -> Alignment:
    """Replay the traceback FSM from ``start`` until the end rule fires."""
    if spec.traceback is None or spec.tb_transition is None:
        raise TracebackError(f"{spec.name} has no traceback stage")
    end_rule = spec.traceback.end
    state = spec.traceback.initial_state
    i, j = start
    moves: List[Move] = []
    max_steps = i + j + 5
    for _step in range(max_steps):
        if _boundary_done(end_rule, i, j):
            break
        if i == 0:
            # Row 0: only leftward (reference-consuming) moves remain.
            moves.append(Move.INS)
            j -= 1
            continue
        if j == 0:
            moves.append(Move.DEL)
            i -= 1
            continue
        ptr = memory.read(i, j)
        move, state = spec.tb_transition(state, ptr)
        if move is Move.END:
            break
        if move is Move.MATCH:
            i -= 1
            j -= 1
        elif move is Move.DEL:
            i -= 1
        elif move is Move.INS:
            j -= 1
        else:  # pragma: no cover - defensive
            raise TracebackError(f"{spec.name}: FSM produced {move!r}")
        moves.append(move)
    else:
        raise TracebackError(
            f"{spec.name}: traceback did not terminate within {max_steps} "
            f"steps from cell {start} (end rule {end_rule.value})"
        )
    moves.reverse()
    return Alignment(
        moves=tuple(moves),
        query_start=i,
        query_end=start[0],
        ref_start=j,
        ref_end=start[1],
    )


def _boundary_done(end_rule: EndRule, i: int, j: int) -> bool:
    if end_rule is EndRule.TOP_LEFT:
        return i == 0 and j == 0
    if end_rule is EndRule.TOP_ROW:
        return i == 0
    if end_rule is EndRule.TOP_ROW_OR_LEFT_COL:
        return i == 0 or j == 0
    # SENTINEL endings normally stop via a TB_END pointer, but a path that
    # reaches row 0 / column 0 has arrived at a zero-score init cell and
    # must terminate there as well.
    return i == 0 or j == 0
