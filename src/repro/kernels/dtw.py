"""Kernel #9 — Dynamic Time Warping over complex signals (basecalling).

Symbols are complex temporal samples (Listing 1, right); the substitution
value is the squared Euclidean distance between samples — computed
dynamically with two multiplications per cell, which makes DSP usage scale
with N_PE (Fig. 3E).  The objective is *minimization* and the warping path
is recovered by a standard 2-bit traceback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import COMPLEX_SIGNAL
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ApFixedType
from repro.kernels.common import constant_init, linear_tb, pick_best

SCORE_T = ApFixedType(32, 20)
POS = SCORE_T.sentinel_high()

#: Indices into the complex sample tuple.
RE, IM = 0, 1


@dataclass(frozen=True)
class ScoringParams:
    """DTW has no runtime scoring parameters (Fig. 1: the substitution
    value is computed dynamically from the samples themselves)."""


def pe_func(cell: PEInput) -> PEOutput:
    """D(i,j) = |q - r|^2 + min(diag, up, left)."""
    d_re = cell.qry[RE] - cell.ref[RE]
    d_im = cell.qry[IM] - cell.ref[IM]
    cost = d_re * d_re + d_im * d_im
    best, ptr = pick_best(
        [(cell.diag[0], TB_DIAG), (cell.up[0], TB_UP), (cell.left[0], TB_LEFT)],
        minimize=True,
    )
    return (cost + best,), ptr


SPEC = KernelSpec(
    name="dtw",
    kernel_id=9,
    alphabet=COMPLEX_SIGNAL,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MINIMIZE,
    pe_func=pe_func,
    init_row=constant_init(1, boundary=POS, corner=0.0),
    init_col=constant_init(1, boundary=POS, corner=0.0),
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Dynamic Time Warping (DTW)",
    applications=("Basecalling",),
    reference_tools=("SquiggleKit",),
    modifications="Sequence Alphabet and Scoring",
)
