"""Kernel #15 — Local Linear Alignment of protein sequences.

Smith-Waterman over the 20-letter amino-acid alphabet with a BLOSUM62
substitution ROM — the larger ScoringParams matrix is what raises this
kernel's BRAM usage in Table 2 (20x20 versus 4x4 for DNA kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.alphabet import PROTEIN
from repro.core.ops import lookup, select
from repro.core.spec import (
    TB_DIAG,
    TB_END,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.data.blosum import BLOSUM62
from repro.hdl_types import ap_int
from repro.kernels.common import linear_tb, pick_best, zero_init

SCORE_T = ap_int(16)


@dataclass(frozen=True)
class ScoringParams:
    """A 20x20 substitution matrix plus a linear gap penalty."""

    matrix: Tuple[Tuple[int, ...], ...] = field(default_factory=lambda: BLOSUM62)
    linear_gap: int = -5


def pe_func(cell: PEInput) -> PEOutput:
    """Smith-Waterman cell with a substitution-matrix ROM lookup."""
    params = cell.params
    sub = lookup(params.matrix, cell.qry, cell.ref)
    match = cell.diag[0] + sub
    del_ = cell.up[0] + params.linear_gap
    ins = cell.left[0] + params.linear_gap
    score, ptr = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    clamped = score < 0
    score = select(clamped, 0, score)
    ptr = select(clamped, TB_END, ptr)
    return (score,), ptr


SPEC = KernelSpec(
    name="protein_local_linear",
    kernel_id=15,
    alphabet=PROTEIN,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=zero_init(1),
    init_col=zero_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.GLOBAL_MAX,
    traceback=TracebackSpec(end=EndRule.SENTINEL),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Local Linear Alignment with protein sequences",
    applications=("Protein Sequence Alignment",),
    reference_tools=("EMBOSS Water", "BLASTp", "DIAMOND"),
    modifications="Sequence Alphabet and Scoring",
)
