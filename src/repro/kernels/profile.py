"""Kernel #8 — Profile Alignment (multiple sequence alignment).

Each "symbol" is a profile column: the frequencies of {A, C, G, T, gap} at
one position of an existing alignment (Fig. 1).  The substitution score is
the Sum-of-Pairs value q . S . r — two matrix-vector multiplications per
cell, which is why this kernel dominates DSP usage in Table 2 and needs an
initiation interval of 4 (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.core.alphabet import PROFILE_DNA
from repro.core.ops import lookup
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ApFixedType
from repro.kernels.common import linear_gap_init, linear_tb, pick_best

SCORE_T = ApFixedType(32, 20)

#: Number of profile channels: four nucleotides plus the gap character.
N_CHANNELS = 5


def default_sop_matrix() -> Tuple[Tuple[float, ...], ...]:
    """A simple Sum-of-Pairs scoring matrix over {A, C, G, T, -}."""
    match, mismatch, gap_vs_base, gap_vs_gap = 2.0, -2.0, -3.0, 0.0
    rows = []
    for a in range(N_CHANNELS):
        row = []
        for b in range(N_CHANNELS):
            if a == 4 or b == 4:
                row.append(gap_vs_gap if a == b else gap_vs_base)
            else:
                row.append(match if a == b else mismatch)
        rows.append(tuple(row))
    return tuple(rows)


@dataclass(frozen=True)
class ScoringParams:
    """Sum-of-Pairs matrix plus a linear gap penalty for new gaps."""

    sop: Tuple[Tuple[float, ...], ...] = field(default_factory=default_sop_matrix)
    linear_gap: float = -3.0


def make_profile_pe(n_channels: int):
    """Build a profile PE function for ``n_channels``-tuple symbols.

    ``inner[a] = sum_b S[a][b] * r[b]`` (first matrix-vector product,
    n^2 multiplies) followed by ``sub = sum_a q[a] * inner[a]`` (second
    product, n multiplies) — the paper's two matrix-vector
    multiplications per cell, for DNA (n=5) or protein (n=21) profiles.
    """

    def pe(cell: PEInput) -> PEOutput:
        params = cell.params
        qry, ref = cell.qry, cell.ref
        sub = None
        for a in range(n_channels):
            inner = None
            for b in range(n_channels):
                term = lookup(params.sop, a, b) * ref[b]
                inner = term if inner is None else inner + term
            weighted = qry[a] * inner
            sub = weighted if sub is None else sub + weighted
        match = cell.diag[0] + sub
        del_ = cell.up[0] + params.linear_gap
        ins = cell.left[0] + params.linear_gap
        score, ptr = pick_best(
            [(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)]
        )
        return (score,), ptr

    return pe


#: The DNA profile PE (Table 1's kernel #8).
pe_func = make_profile_pe(N_CHANNELS)


SPEC = KernelSpec(
    name="profile_alignment",
    kernel_id=8,
    alphabet=PROFILE_DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=linear_gap_init(1),
    init_col=linear_gap_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Profile Alignment",
    applications=("Multiple Sequence Alignment",),
    reference_tools=("CLUSTALW", "MUSCLE"),
    modifications="Sequence Alphabet and Scoring",
)


def profile_column(a: float, c: float, g: float, t: float, gap: float) -> Tuple[float, ...]:
    """Build one profile symbol, validating that frequencies sum to ~1."""
    column = (a, c, g, t, gap)
    total = sum(column)
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"profile column frequencies sum to {total}, not 1")
    return column
