"""Kernel #3 — Local Linear Alignment (Smith-Waterman).

Scores are clamped at zero (the ``TB_END`` pointer of Listing 6), the
traceback starts at the global maximum cell and ends at the first
zero-score cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import DNA
from repro.core.ops import select
from repro.core.spec import (
    TB_DIAG,
    TB_END,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import linear_tb, pick_best, substitution, zero_init

SCORE_T = ap_int(16)


@dataclass(frozen=True)
class ScoringParams:
    """Linear-gap local alignment parameters."""

    match: int = 2
    mismatch: int = -2
    linear_gap: int = -3


def pe_func(cell: PEInput) -> PEOutput:
    """Listing 5/6: Smith-Waterman cell with zero clamp."""
    params = cell.params
    gap = params.linear_gap
    match = cell.diag[0] + substitution(
        cell.qry, cell.ref, params.match, params.mismatch
    )
    del_ = cell.up[0] + gap
    ins = cell.left[0] + gap
    score, ptr = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    clamped = score < 0
    score = select(clamped, 0, score)
    ptr = select(clamped, TB_END, ptr)
    return (score,), ptr


SPEC = KernelSpec(
    name="local_linear",
    kernel_id=3,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=zero_init(1),
    init_col=zero_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.GLOBAL_MAX,
    traceback=TracebackSpec(end=EndRule.SENTINEL),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Local Linear Alignment (Smith-Waterman)",
    applications=("Homology Search",),
    reference_tools=("BLAST", "FASTA", "BLAT"),
    modifications="Initialization and Traceback",
)
