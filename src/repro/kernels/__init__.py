"""The 15 bioinformatics DP kernels of Table 1, built on the front-end.

Every kernel module exposes a module-level ``SPEC`` (its
:class:`~repro.core.spec.KernelSpec`) plus its ``ScoringParams`` dataclass.
:mod:`repro.kernels.registry` indexes them by the paper's kernel numbers.
"""

from repro.kernels.registry import (
    KERNELS,
    get_kernel,
    is_registered,
    kernel_ids,
    list_kernels,
)

__all__ = ["KERNELS", "get_kernel", "is_registered", "kernel_ids",
           "list_kernels"]
