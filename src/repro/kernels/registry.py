"""Registry of the 15 implemented kernels, indexed as in Table 1."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.core.spec import KernelSpec
from repro.kernels import (
    banded_global,
    banded_local_affine,
    banded_two_piece,
    dtw,
    global_affine,
    global_linear,
    local_affine,
    local_linear,
    overlap,
    profile,
    protein_local,
    sdtw,
    semiglobal,
    two_piece_affine,
    viterbi,
)

#: Kernel number (the paper's '#') -> specification.
KERNELS: Dict[int, KernelSpec] = {
    spec.kernel_id: spec
    for spec in (
        global_linear.SPEC,
        global_affine.SPEC,
        local_linear.SPEC,
        local_affine.SPEC,
        two_piece_affine.SPEC,
        overlap.SPEC,
        semiglobal.SPEC,
        profile.SPEC,
        dtw.SPEC,
        viterbi.SPEC,
        banded_global.SPEC,
        banded_local_affine.SPEC,
        banded_two_piece.SPEC,
        sdtw.SPEC,
        protein_local.SPEC,
    )
}

_BY_NAME: Dict[str, KernelSpec] = {spec.name: spec for spec in KERNELS.values()}


def kernel_ids() -> List[int]:
    """All registered kernel numbers, ascending."""
    return sorted(KERNELS)


def get_kernel(key: Union[int, str]) -> KernelSpec:
    """Look a kernel up by its Table 1 number or by name.

    >>> get_kernel(1).name
    'global_linear'
    >>> get_kernel("local_linear").kernel_id
    3
    """
    if isinstance(key, int):
        try:
            return KERNELS[key]
        except KeyError:
            raise KeyError(
                f"no kernel #{key}; known ids: {kernel_ids()}"
            ) from None
    try:
        return _BY_NAME[key]
    except KeyError:
        raise KeyError(
            f"no kernel named {key!r}; known names: {sorted(_BY_NAME)}"
        ) from None
