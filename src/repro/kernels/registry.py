"""Registry of the 15 implemented kernels, indexed as in Table 1."""

from __future__ import annotations

from typing import Any, Dict, List, Union

from repro.core.spec import KernelSpec
from repro.kernels import (
    banded_global,
    banded_local_affine,
    banded_two_piece,
    dtw,
    global_affine,
    global_linear,
    local_affine,
    local_linear,
    overlap,
    profile,
    protein_local,
    sdtw,
    semiglobal,
    two_piece_affine,
    viterbi,
)

#: Kernel number (the paper's '#') -> specification.
KERNELS: Dict[int, KernelSpec] = {
    spec.kernel_id: spec
    for spec in (
        global_linear.SPEC,
        global_affine.SPEC,
        local_linear.SPEC,
        local_affine.SPEC,
        two_piece_affine.SPEC,
        overlap.SPEC,
        semiglobal.SPEC,
        profile.SPEC,
        dtw.SPEC,
        viterbi.SPEC,
        banded_global.SPEC,
        banded_local_affine.SPEC,
        banded_two_piece.SPEC,
        sdtw.SPEC,
        protein_local.SPEC,
    )
}

_BY_NAME: Dict[str, KernelSpec] = {spec.name: spec for spec in KERNELS.values()}


def kernel_ids() -> List[int]:
    """All registered kernel numbers, ascending."""
    return sorted(KERNELS)


def get_kernel(key: Union[int, str, KernelSpec]) -> KernelSpec:
    """Look a kernel up by Table 1 number, stable name, or spec.

    This is the single kernel-lookup path: every layer (CLI, service
    validation, campaigns, fuzzing) resolves kernels here, so ids,
    names and numeric strings are interchangeable everywhere.  Passing
    a :class:`KernelSpec` returns it unchanged, which lets call sites
    normalize heterogeneous arguments in one call.

    >>> get_kernel(1).name
    'global_linear'
    >>> get_kernel("local_linear").kernel_id
    3
    >>> get_kernel("3").name
    'local_linear'
    """
    if isinstance(key, KernelSpec):
        return key
    if isinstance(key, str) and key.lstrip("-").isdigit():
        key = int(key)
    if isinstance(key, int):
        try:
            return KERNELS[key]
        except KeyError:
            raise KeyError(
                f"no kernel #{key}; known ids: {kernel_ids()}"
            ) from None
    try:
        return _BY_NAME[key]
    except KeyError:
        raise KeyError(
            f"no kernel named {key!r}; known names: {sorted(_BY_NAME)}"
        ) from None


def is_registered(spec: KernelSpec) -> bool:
    """Whether ``spec`` is *the* registered kernel for its id.

    Pooled execution paths need this: worker processes re-resolve
    kernels by id, so a locally mutated or unregistered spec must be
    refused rather than silently swapped for the registry's copy.
    """
    return KERNELS.get(spec.kernel_id) is spec


def list_kernels() -> List[Dict[str, Any]]:
    """JSON-safe metadata for every registered kernel, id-ascending.

    One dict per kernel with the fields the CLI listing, the serving
    admission checks and the fuzz harness all need — keeping those
    layers free of per-module spec spelunking.
    """
    out: List[Dict[str, Any]] = []
    for kid in kernel_ids():
        spec = KERNELS[kid]
        out.append({
            "id": kid,
            "name": spec.name,
            "layers": spec.n_layers,
            "objective": spec.objective.value,
            "traceback": spec.has_traceback,
            "banding": spec.banding,
            "alphabet": spec.alphabet.name,
            "struct_alphabet": spec.alphabet.is_struct,
            "reference_tools": list(spec.reference_tools),
        })
    return out
