"""Kernel #13 — Banded Global Two-piece Affine Alignment (Minimap2).

Kernel #5's five-layer recurrences inside a fixed band, with the full
7-bit traceback.  The most complex kernel in the suite: banding logic,
five layers and a five-state FSM together push its clock frequency to the
lowest tier of Table 2 (125 MHz).
"""

from __future__ import annotations

from repro.core.alphabet import DNA
from repro.core.spec import (
    EndRule,
    KernelSpec,
    Objective,
    StartRule,
    TracebackSpec,
)
from repro.kernels.common import two_piece_tb
from repro.kernels.two_piece_affine import (
    SCORE_T,
    ScoringParams,
    pe_func,
    two_piece_init,
)

#: Fixed band half-width.
BAND = 32

SPEC = KernelSpec(
    name="banded_global_two_piece",
    kernel_id=13,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=5,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=two_piece_init,
    init_col=two_piece_init,
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=two_piece_tb,
    tb_ptr_bits=7,
    tb_states=("MM", "INS", "DEL", "LONG_INS", "LONG_DEL"),
    banding=BAND,
    description="Banded Global Two-piece Affine Alignment",
    applications=("Long Read Assembly",),
    reference_tools=("Minimap2",),
    modifications="Scoring, Initialization and Traceback",
)

__all__ = ["SPEC", "ScoringParams", "BAND"]
