"""Kernel #12 — Banded Local Affine Alignment, score only (Minimap2).

The seed-extension stage of long-read assemblers: kernel #4's recurrences
inside a fixed band, reporting only the best local score (Table 1 lists
"no Traceback"), which is why its BRAM usage is among the lowest in
Table 2.
"""

from __future__ import annotations

from repro.core.alphabet import DNA
from repro.core.spec import KernelSpec, Objective, StartRule
from repro.kernels.local_affine import (
    SCORE_T,
    ScoringParams,
    local_affine_init,
    pe_func,
)

#: Fixed band half-width, matching the BSW baseline's banding.
BAND = 32

SPEC = KernelSpec(
    name="banded_local_affine",
    kernel_id=12,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=3,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=local_affine_init,
    init_col=local_affine_init,
    default_params=ScoringParams(),
    start_rule=StartRule.GLOBAL_MAX,
    traceback=None,
    tb_transition=None,
    tb_ptr_bits=4,
    tb_states=(),
    banding=BAND,
    description="Banded Local Affine Alignment (score only)",
    applications=("Long Read Assembly",),
    reference_tools=("Minimap2",),
    modifications="Initialization, Scoring (no Traceback)",
)

__all__ = ["SPEC", "ScoringParams", "BAND"]
