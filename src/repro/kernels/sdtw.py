"""Kernel #14 — Semi-global Dynamic Time Warping (SquiggleFilter).

Aligns a short nanopore signal (query) against any position of a longer
reference signal: the first row is free (the query may start anywhere
along the reference) and the reported value is the *minimum* distance in
the last row.  Symbols are 8-bit integer-quantised current levels; the
cost is the absolute difference (no multiplier — DSP usage stays flat,
unlike kernel #9).  Score only, like the SquiggleFilter accelerator with
its match-bonus feature removed (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import INT_SIGNAL
from repro.core.ops import vabs, vmin
from repro.core.spec import KernelSpec, Objective, PEInput, PEOutput, StartRule
from repro.hdl_types import ap_int
from repro.kernels.common import constant_init, zero_init

SCORE_T = ap_int(24)
POS = SCORE_T.sentinel_high()


@dataclass(frozen=True)
class ScoringParams:
    """sDTW carries no runtime scoring parameters (pure distance
    accumulation over the quantised samples)."""


def pe_func(cell: PEInput) -> PEOutput:
    """D(i,j) = |q - r| + min(diag, up, left)."""
    cost = vabs(cell.qry - cell.ref)
    best = vmin(cell.diag[0], cell.up[0], cell.left[0])
    return (cost + best,), 0


SPEC = KernelSpec(
    name="sdtw",
    kernel_id=14,
    alphabet=INT_SIGNAL,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MINIMIZE,
    pe_func=pe_func,
    init_row=zero_init(1),
    init_col=constant_init(1, boundary=POS, corner=0.0),
    default_params=ScoringParams(),
    start_rule=StartRule.LAST_ROW_MAX,
    traceback=None,
    tb_transition=None,
    tb_ptr_bits=2,
    tb_states=(),
    description="Semi-global DTW (sDTW)",
    applications=("Basecalling", "Viral Surveillance"),
    reference_tools=("SquiggleFilter", "RawHash"),
    modifications="Sequence Alphabet and Scoring",
)
