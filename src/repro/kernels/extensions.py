"""Extension kernels beyond Table 1.

The paper's central productivity claim is that *new* kernels take days:
these three are combinations the 15 shipped kernels don't cover, each
built purely from front-end pieces (and spec transformers), and each
verified by the same oracle/rescore machinery as the core set:

* :data:`GLOBAL_LINEAR_N` — global alignment over the 5-letter DNA-with-N
  alphabet, scoring ambiguous bases neutrally (BLAST/LASTZ handle Ns this
  way, Section 2.2.1).
* :data:`SEMIGLOBAL_AFFINE` — BWA-MEM-style read mapping with the affine
  gap model (Table 1's #7 is linear-gap only).
* :data:`SAKOE_CHIBA_DTW` — DTW under a Sakoe-Chiba band, the classic
  time-series pruning, derived from kernel #9 with ``make_banded``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.alphabet import DNA, Alphabet
from repro.core.ops import lookup, select
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels import dtw
from repro.kernels.common import (
    affine_ptr,
    affine_tb,
    linear_gap_init,
    linear_tb,
    pick_best,
    substitution,
)
from repro.kernels.variants import make_banded

# ---------------------------------------------------------------------------
# Global linear alignment with ambiguous bases (DNA5: A, C, G, T, N)
# ---------------------------------------------------------------------------

#: 3-bit DNA with the ambiguous base N (code 4).
DNA5 = Alphabet("dna5", storage_bits=3, size=5)
N_CODE = 4


def default_dna5_matrix():
    """Match/mismatch over ACGT; N scores neutrally against everything."""
    match, mismatch, n_score = 2.0, -2.0, 0.0
    rows = []
    for a in range(5):
        row = []
        for b in range(5):
            if a == N_CODE or b == N_CODE:
                row.append(n_score)
            else:
                row.append(match if a == b else mismatch)
        rows.append(tuple(row))
    return tuple(rows)


@dataclass(frozen=True)
class Dna5Params:
    """5x5 substitution matrix plus a linear gap."""

    matrix: tuple = default_dna5_matrix()
    linear_gap: int = -3


def dna5_pe(cell: PEInput) -> PEOutput:
    """Kernel #1's recurrence with a matrix-ROM substitution."""
    params = cell.params
    sub = lookup(params.matrix, cell.qry, cell.ref)
    match = cell.diag[0] + sub
    del_ = cell.up[0] + params.linear_gap
    ins = cell.left[0] + params.linear_gap
    score, ptr = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    return (score,), ptr


GLOBAL_LINEAR_N = KernelSpec(
    name="global_linear_dna5",
    kernel_id=17,
    alphabet=DNA5,
    score_type=ap_int(16),
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=dna5_pe,
    init_row=linear_gap_init(1),
    init_col=linear_gap_init(1),
    default_params=Dna5Params(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Global Linear Alignment with ambiguous bases (DNA5)",
    applications=("Similarity Search with masked references",),
    modifications="Sequence Alphabet and Scoring",
)

# ---------------------------------------------------------------------------
# Semi-global alignment with affine gaps (BWA-MEM-style read mapping)
# ---------------------------------------------------------------------------

SG_SCORE_T = ap_int(16)
SG_NEG = SG_SCORE_T.sentinel_low()


@dataclass(frozen=True)
class SemiglobalAffineParams:
    """Affine penalties for end-to-end read placement."""

    match: int = 2
    mismatch: int = -4
    gap_open: int = -4
    gap_extend: int = -2


def semiglobal_affine_row_init(_params: Any, length: int) -> np.ndarray:
    """Free reference prefix: H = 0; gap layers at sentinel."""
    scores = np.full((length, 3), float(SG_NEG))
    scores[:, 0] = 0.0
    return scores


def semiglobal_affine_col_init(params: Any, length: int) -> np.ndarray:
    """The query must align end-to-end: affine boundary costs."""
    scores = np.full((length, 3), float(SG_NEG))
    scores[:, 0] = params.gap_open + params.gap_extend * np.arange(length)
    scores[0, 0] = 0.0
    return scores


def semiglobal_affine_pe(cell: PEInput) -> PEOutput:
    """Gotoh recurrences; strategy handled by start/end rules."""
    p = cell.params
    open_cost = p.gap_open + p.gap_extend
    ins_open = cell.left[0] + open_cost
    ins_ext = cell.left[1] + p.gap_extend
    i_ext = ins_ext > ins_open
    ins = select(i_ext, ins_ext, ins_open)
    del_open = cell.up[0] + open_cost
    del_ext = cell.up[2] + p.gap_extend
    d_ext = del_ext > del_open
    del_ = select(d_ext, del_ext, del_open)
    match = cell.diag[0] + substitution(cell.qry, cell.ref, p.match, p.mismatch)
    score, h_src = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    return (score, ins, del_), affine_ptr(h_src, i_ext, d_ext)


SEMIGLOBAL_AFFINE = KernelSpec(
    name="semiglobal_affine",
    kernel_id=18,
    alphabet=DNA,
    score_type=SG_SCORE_T,
    n_layers=3,
    objective=Objective.MAXIMIZE,
    pe_func=semiglobal_affine_pe,
    init_row=semiglobal_affine_row_init,
    init_col=semiglobal_affine_col_init,
    default_params=SemiglobalAffineParams(),
    start_rule=StartRule.LAST_ROW_MAX,
    traceback=TracebackSpec(end=EndRule.TOP_ROW),
    tb_transition=affine_tb,
    tb_ptr_bits=4,
    tb_states=("MM", "INS", "DEL"),
    description="Semi-global Alignment with affine gaps",
    applications=("Short Read Alignment",),
    modifications="Initialization, Scoring and Traceback",
)

# ---------------------------------------------------------------------------
# Sakoe-Chiba banded DTW, derived from kernel #9 with a spec transformer
# ---------------------------------------------------------------------------

SAKOE_CHIBA_BAND = 16
SAKOE_CHIBA_DTW = make_banded(
    dtw.SPEC, SAKOE_CHIBA_BAND, name="sakoe_chiba_dtw"
)

# ---------------------------------------------------------------------------
# Protein profile alignment: the 21-tuple variant of kernel #8
# (Section 2.2.1: protein profiles carry 20 residue frequencies + gap)
# ---------------------------------------------------------------------------

from repro.core.alphabet import PROTEIN_LETTERS  # noqa: E402
from repro.hdl_types import ApFixedType  # noqa: E402
from repro.kernels.common import linear_tb as _linear_tb  # noqa: E402
from repro.kernels.profile import make_profile_pe  # noqa: E402

N_PROTEIN_CHANNELS = 21  # 20 amino acids + gap


def default_protein_sop():
    """BLOSUM62 extended by a gap channel for Sum-of-Pairs scoring."""
    from repro.data.blosum import BLOSUM62

    gap_vs_residue, gap_vs_gap = -4.0, 0.0
    rows = []
    for a in range(N_PROTEIN_CHANNELS):
        row = []
        for b in range(N_PROTEIN_CHANNELS):
            if a == 20 or b == 20:
                row.append(gap_vs_gap if a == b else gap_vs_residue)
            else:
                row.append(float(BLOSUM62[a][b]))
        rows.append(tuple(row))
    return tuple(rows)


@dataclass(frozen=True)
class ProteinProfileParams:
    """21x21 Sum-of-Pairs matrix plus a linear gap for new columns."""

    sop: tuple = default_protein_sop()
    linear_gap: float = -5.0


PROFILE_PROTEIN_ALPHABET = Alphabet(
    "profile_protein",
    storage_bits=N_PROTEIN_CHANNELS * 16,
    fields=tuple((ch.lower(), 16) for ch in PROTEIN_LETTERS) + (("gap", 16),),
)

PROFILE_PROTEIN = KernelSpec(
    name="profile_alignment_protein",
    kernel_id=19,
    alphabet=PROFILE_PROTEIN_ALPHABET,
    score_type=ApFixedType(32, 20),
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=make_profile_pe(N_PROTEIN_CHANNELS),
    init_row=linear_gap_init(1),
    init_col=linear_gap_init(1),
    default_params=ProteinProfileParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=_linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Profile Alignment over protein profiles (21 channels)",
    applications=("Protein Multiple Sequence Alignment",),
    modifications="Sequence Alphabet and Scoring",
)

EXTENSION_KERNELS = (
    GLOBAL_LINEAR_N, SEMIGLOBAL_AFFINE, SAKOE_CHIBA_DTW, PROFILE_PROTEIN
)
