"""Kernel #6 — Overlap Alignment (genome assembly).

Matches a suffix of one sequence against a prefix of the other: both the
first row and column initialize to zero (free leading ends), the traceback
starts at the best cell in the last row or column and ends when it reaches
the top row or leftmost column (Section 2.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import DNA
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import linear_tb, pick_best, substitution, zero_init

SCORE_T = ap_int(16)


@dataclass(frozen=True)
class ScoringParams:
    """Linear-gap overlap alignment parameters."""

    match: int = 2
    mismatch: int = -3
    linear_gap: int = -2


def pe_func(cell: PEInput) -> PEOutput:
    """Same recurrence as kernel #1; the strategy differs only at the ends."""
    params = cell.params
    gap = params.linear_gap
    match = cell.diag[0] + substitution(
        cell.qry, cell.ref, params.match, params.mismatch
    )
    del_ = cell.up[0] + gap
    ins = cell.left[0] + gap
    score, ptr = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    return (score,), ptr


SPEC = KernelSpec(
    name="overlap",
    kernel_id=6,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=zero_init(1),
    init_col=zero_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.LAST_ROW_OR_COL_MAX,
    traceback=TracebackSpec(end=EndRule.TOP_ROW_OR_LEFT_COL),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Overlap Alignment",
    applications=("Genome Assembly",),
    reference_tools=("CANU", "Flye"),
    modifications="Initialization and Traceback",
)
