"""Kernel #11 — Banded Global Linear Alignment (fast similarity search).

Kernel #1 restricted to a fixed band |i - j| <= W around the main diagonal
(Section 2.2.4).  The back-end only issues wavefronts intersecting the
band, and out-of-band neighbour reads resolve to the sentinel.
"""

from __future__ import annotations

from repro.core.alphabet import DNA
from repro.core.spec import (
    EndRule,
    KernelSpec,
    Objective,
    StartRule,
    TracebackSpec,
)
from repro.kernels.common import linear_gap_init, linear_tb
from repro.kernels.global_linear import SCORE_T, ScoringParams, pe_func

#: Fixed band half-width (the BANDWIDTH macro of Section 4 step 1.6).
BAND = 32

SPEC = KernelSpec(
    name="banded_global_linear",
    kernel_id=11,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=linear_gap_init(1),
    init_col=linear_gap_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    banding=BAND,
    description="Banded Global Linear Alignment",
    applications=("Fast Similarity Search",),
    reference_tools=("BLAST", "Bowtie"),
    modifications="Scoring and Initialization",
)

__all__ = ["SPEC", "ScoringParams", "BAND"]
