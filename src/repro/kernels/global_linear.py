"""Kernel #1 — Global Linear Alignment (Needleman-Wunsch).

The baseline kernel of Table 1: DNA alphabet, a single scoring layer,
constant (linear) gap penalty, global traceback from the bottom-right to
the top-left of the DP matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import DNA
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import linear_gap_init, linear_tb, pick_best, substitution

SCORE_T = ap_int(16)


@dataclass(frozen=True)
class ScoringParams:
    """Listing 2 (left): three runtime scoring parameters."""

    match: int = 2
    mismatch: int = -2
    linear_gap: int = -3


def pe_func(cell: PEInput) -> PEOutput:
    """H(i,j) = max(diag + sub, up + gap, left + gap)."""
    params = cell.params
    gap = params.linear_gap
    match = cell.diag[0] + substitution(
        cell.qry, cell.ref, params.match, params.mismatch
    )
    del_ = cell.up[0] + gap
    ins = cell.left[0] + gap
    score, ptr = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    return (score,), ptr


SPEC = KernelSpec(
    name="global_linear",
    kernel_id=1,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=linear_gap_init(1),
    init_col=linear_gap_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Global Linear Alignment (Needleman-Wunsch)",
    applications=("Similarity Search",),
    reference_tools=("BLAST", "EMBOSS Stretcher"),
    modifications="N/A",
)
