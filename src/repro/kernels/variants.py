"""Spec transformers: derive kernel variants without rewriting front-ends.

Half of Table 1 is a transformation of another row — banded versions of
unbanded kernels, score-only versions of traceback kernels.  These
helpers apply those transformations to *any* KernelSpec, so a user kernel
(like the edit-distance example) gets banding and score-only deployment
for free, exactly the reuse story the paper's front-end/back-end split
promises.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.spec import KernelSpec


def make_banded(spec: KernelSpec, band: int, name: str = "") -> KernelSpec:
    """Derive a fixed-band variant of a kernel (Section 2.2.4).

    The back-end restricts the wavefront schedule to |i - j| <= band and
    masks out-of-band neighbour reads; the PE function is untouched.
    """
    if band < 1:
        raise ValueError(f"band must be >= 1, got {band}")
    if spec.banding is not None:
        raise ValueError(f"{spec.name} is already banded (W={spec.banding})")
    return replace(
        spec,
        name=name or f"{spec.name}_banded{band}",
        banding=band,
        description=f"{spec.description} (fixed band W={band})",
        modifications=f"{spec.modifications} + Banding",
    )


def make_score_only(spec: KernelSpec, name: str = "") -> KernelSpec:
    """Drop the traceback stage (Section 4's no-traceback option).

    Score-only deployments skip traceback memory entirely — the BRAM
    saving behind kernels #10/#12/#14's low footprints — and report only
    the optimum under the kernel's start rule.
    """
    if not spec.has_traceback:
        raise ValueError(f"{spec.name} is already score-only")
    return replace(
        spec,
        name=name or f"{spec.name}_score_only",
        traceback=None,
        tb_transition=None,
        description=f"{spec.description} (score only)",
        modifications=f"{spec.modifications} (no Traceback)",
    )


def with_params(spec: KernelSpec, params, name: str = "") -> KernelSpec:
    """Rebind a kernel's default ScoringParams (host-side reconfiguration).

    The params type must match — scoring parameters are runtime values in
    DP-HLS, so no re-synthesis is implied.
    """
    if type(params) is not type(spec.default_params):
        raise TypeError(
            f"{spec.name} expects {type(spec.default_params).__name__}, "
            f"got {type(params).__name__}"
        )
    return replace(spec, name=name or spec.name, default_params=params)
