"""Kernel #7 — Semi-global Alignment (short-read mapping).

The query aligns end-to-end against a subsequence of the reference: the
first row is free (zeros), the first column pays gap penalties, the
traceback starts at the best cell of the bottom row and stops at the top
row (Section 2.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import DNA
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import (
    linear_gap_init,
    linear_tb,
    pick_best,
    substitution,
    zero_init,
)

SCORE_T = ap_int(16)


@dataclass(frozen=True)
class ScoringParams:
    """Linear-gap semi-global alignment parameters."""

    match: int = 2
    mismatch: int = -2
    linear_gap: int = -3


def pe_func(cell: PEInput) -> PEOutput:
    """Same cell recurrence as kernel #1."""
    params = cell.params
    gap = params.linear_gap
    match = cell.diag[0] + substitution(
        cell.qry, cell.ref, params.match, params.mismatch
    )
    del_ = cell.up[0] + gap
    ins = cell.left[0] + gap
    score, ptr = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    return (score,), ptr


SPEC = KernelSpec(
    name="semiglobal",
    kernel_id=7,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=zero_init(1),
    init_col=linear_gap_init(1),
    default_params=ScoringParams(),
    start_rule=StartRule.LAST_ROW_MAX,
    traceback=TracebackSpec(end=EndRule.TOP_ROW),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Semi-global Alignment",
    applications=("Short Read Alignment",),
    reference_tools=("BWA-MEM",),
    modifications="Initialization and Traceback",
)
