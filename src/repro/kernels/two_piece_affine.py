"""Kernel #5 — Global Two-piece Affine Alignment (Minimap2's gap model).

Five scoring layers: H plus a short and a long affine gap pair per
direction.  A gap of length L costs ``max(o1 + L*e1, o2 + L*e2)`` (all
negative), which better separates biological indels from sequencing errors
(Section 2.2.2b).  Traceback pointers need 7 bits — a 3-bit H source plus
four extension flags — matching the paper's BRAM observations for kernels
#5/#13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.alphabet import DNA
from repro.core.ops import select
from repro.core.spec import (
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import (
    TP_DEL,
    TP_DIAG,
    TP_INS,
    TP_LDEL,
    TP_LINS,
    pick_best,
    substitution,
    two_piece_ptr,
    two_piece_tb,
)

SCORE_T = ap_int(16)
NEG = SCORE_T.sentinel_low()

#: Layer indices (N_LAYERS = 5 for two-piece kernels).
LAYER_H, LAYER_I1, LAYER_D1, LAYER_I2, LAYER_D2 = 0, 1, 2, 3, 4


@dataclass(frozen=True)
class ScoringParams:
    """Minimap2-style two-piece gap parameters.

    Short gaps follow ``gap_open1 + L*gap_extend1``; long gaps follow
    ``gap_open2 + L*gap_extend2`` with a cheaper extension, so the model
    switches pieces at L = (open2-open1)/(extend1-extend2).
    """

    match: int = 2
    mismatch: int = -4
    gap_open1: int = -4
    gap_extend1: int = -2
    gap_open2: int = -24
    gap_extend2: int = -1


def two_piece_init(params: Any, length: int) -> np.ndarray:
    """H(0,k) = max of the two affine boundary costs; gap layers sentinel."""
    scores = np.full((length, 5), float(NEG))
    ks = np.arange(length)
    short = params.gap_open1 + params.gap_extend1 * ks
    long_ = params.gap_open2 + params.gap_extend2 * ks
    scores[:, LAYER_H] = np.maximum(short, long_)
    scores[0, LAYER_H] = 0.0
    return scores


def pe_func(cell: PEInput) -> PEOutput:
    """Two-piece affine recurrences with a 7-bit packed pointer."""
    p = cell.params
    oc1 = p.gap_open1 + p.gap_extend1
    oc2 = p.gap_open2 + p.gap_extend2

    i1_open = cell.left[LAYER_H] + oc1
    i1_ext = cell.left[LAYER_I1] + p.gap_extend1
    i1_flag = i1_ext > i1_open
    ins1 = select(i1_flag, i1_ext, i1_open)

    d1_open = cell.up[LAYER_H] + oc1
    d1_ext = cell.up[LAYER_D1] + p.gap_extend1
    d1_flag = d1_ext > d1_open
    del1 = select(d1_flag, d1_ext, d1_open)

    i2_open = cell.left[LAYER_H] + oc2
    i2_ext = cell.left[LAYER_I2] + p.gap_extend2
    i2_flag = i2_ext > i2_open
    ins2 = select(i2_flag, i2_ext, i2_open)

    d2_open = cell.up[LAYER_H] + oc2
    d2_ext = cell.up[LAYER_D2] + p.gap_extend2
    d2_flag = d2_ext > d2_open
    del2 = select(d2_flag, d2_ext, d2_open)

    match = cell.diag[LAYER_H] + substitution(
        cell.qry, cell.ref, p.match, p.mismatch
    )
    score, h_src = pick_best(
        [
            (match, TP_DIAG),
            (del1, TP_DEL),
            (ins1, TP_INS),
            (del2, TP_LDEL),
            (ins2, TP_LINS),
        ]
    )
    ptr = two_piece_ptr(h_src, i1_flag, d1_flag, i2_flag, d2_flag)
    return (score, ins1, del1, ins2, del2), ptr


SPEC = KernelSpec(
    name="global_two_piece_affine",
    kernel_id=5,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=5,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=two_piece_init,
    init_col=two_piece_init,
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=two_piece_tb,
    tb_ptr_bits=7,
    tb_states=("MM", "INS", "DEL", "LONG_INS", "LONG_DEL"),
    description="Global Two-piece Affine Alignment",
    applications=("Long Read Alignment",),
    reference_tools=("Minimap2",),
    modifications="Scoring",
)
