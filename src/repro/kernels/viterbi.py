"""Kernel #10 — Viterbi algorithm over a pair-HMM (gene prediction).

Three hidden states (M, I, D) with log-space probabilities: ``log_mu`` is
the log-probability of opening a gap state, ``log_lambda`` of extending
one, and a 5x5 emission matrix covers all pairs over {A, C, G, T, -}
(Listing 2, right — 27 runtime parameters).  The kernel reports the
log-likelihood of the best state path; no traceback is performed
(Table 1), which is why its BRAM footprint is minimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

import numpy as np

from repro.core.alphabet import DNA_WITH_GAP
from repro.core.ops import lookup, vmax
from repro.core.spec import (
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
)
from repro.hdl_types import ApFixedType

SCORE_T = ApFixedType(28, 16)
NEG = SCORE_T.sentinel_low()

LAYER_M, LAYER_I, LAYER_D = 0, 1, 2


def default_emission() -> Tuple[Tuple[float, ...], ...]:
    """Log emission probabilities for (A, C, G, T, -) pairs in state M.

    Matching bases are emitted with probability 0.85, each mismatch with
    0.05; the gap character never co-occurs in state M, so its entries
    carry a strong log-penalty.
    """
    log_match = float(np.log(0.85))
    log_mismatch = float(np.log(0.05))
    log_gap = float(np.log(1e-4))
    rows = []
    for a in range(5):
        row = []
        for b in range(5):
            if a == 4 or b == 4:
                row.append(log_gap)
            else:
                row.append(log_match if a == b else log_mismatch)
        rows.append(tuple(row))
    return tuple(rows)


@dataclass(frozen=True)
class ScoringParams:
    """Listing 2 (right): mu/lambda transitions plus the emission matrix."""

    log_mu: float = float(np.log(0.05))       # open an I/D state
    log_lambda: float = float(np.log(0.4))    # stay in an I/D state
    emission: Tuple[Tuple[float, ...], ...] = field(default_factory=default_emission)


def _boundary_init(layer: int):
    """M sentinel everywhere but the corner; one gap layer pays mu + (k-1)*lambda."""

    def init(params: Any, length: int) -> np.ndarray:
        scores = np.full((length, 3), float(NEG))
        if length > 1:
            ks = np.arange(1, length)
            scores[1:, layer] = params.log_mu + params.log_lambda * (ks - 1)
        scores[0, :] = float(NEG)
        scores[0, LAYER_M] = 0.0
        return scores

    return init


#: Row 0 holds leading reference gaps (I states); column 0 leading query
#: gaps (D states).
viterbi_init_row = _boundary_init(LAYER_I)
viterbi_init_col = _boundary_init(LAYER_D)


def pe_func(cell: PEInput) -> PEOutput:
    """Log-space Viterbi recurrences.

    M(i,j) = em(q,r) + max(M, I, D at diag);
    I(i,j) = max(M(i,j-1) + mu, I(i,j-1) + lambda);
    D(i,j) = max(M(i-1,j) + mu, D(i-1,j) + lambda).
    """
    p = cell.params
    em = lookup(p.emission, cell.qry, cell.ref)
    m = em + vmax(cell.diag[LAYER_M], cell.diag[LAYER_I], cell.diag[LAYER_D])
    i = vmax(cell.left[LAYER_M] + p.log_mu, cell.left[LAYER_I] + p.log_lambda)
    d = vmax(cell.up[LAYER_M] + p.log_mu, cell.up[LAYER_D] + p.log_lambda)
    return (m, i, d), 0


SPEC = KernelSpec(
    name="viterbi",
    kernel_id=10,
    alphabet=DNA_WITH_GAP,
    score_type=SCORE_T,
    n_layers=3,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=viterbi_init_row,
    init_col=viterbi_init_col,
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=None,
    tb_transition=None,
    tb_ptr_bits=2,
    tb_states=(),
    description="Viterbi Algorithm (PairHMM)",
    applications=("Remote Homology Search", "Gene Prediction"),
    reference_tools=("HMMER", "AUGUSTUS"),
    modifications="Scoring (no Traceback)",
)
