"""Kernel #2 — Global Affine Alignment (Gotoh).

Three scoring layers (H, I, D) with an affine gap penalty: opening a gap
costs ``gap_open + gap_extend``, extending it another ``gap_extend``.
Traceback pointers are the paper's ``ap_uint<4>``: a 2-bit H source plus
insertion/deletion extension flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.alphabet import DNA
from repro.core.ops import select
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import affine_ptr, affine_tb, pick_best, substitution

SCORE_T = ap_int(16)
NEG = SCORE_T.sentinel_low()

#: Layer indices (N_LAYERS = 3 for affine kernels, Section 4 step 1.2).
LAYER_H, LAYER_I, LAYER_D = 0, 1, 2


@dataclass(frozen=True)
class ScoringParams:
    """Match/mismatch plus the affine gap pair.

    A gap of length L costs ``gap_open + L * gap_extend`` (both negative).
    """

    match: int = 2
    mismatch: int = -4
    gap_open: int = -4
    gap_extend: int = -2


def affine_gap_init(
    open_field: str = "gap_open",
    extend_field: str = "gap_extend",
    n_layers: int = 3,
) -> Callable[[Any, int], np.ndarray]:
    """H(0,k) = open + k*extend on layer 0; other layers at sentinel."""

    def init(params: Any, length: int) -> np.ndarray:
        open_ = getattr(params, open_field)
        extend = getattr(params, extend_field)
        scores = np.full((length, n_layers), float(NEG))
        scores[:, 0] = open_ + extend * np.arange(length)
        scores[0, 0] = 0.0
        return scores

    return init


def pe_func(cell: PEInput) -> PEOutput:
    """Gotoh recurrences for one cell, with packed traceback pointer."""
    p = cell.params
    open_cost = p.gap_open + p.gap_extend
    extend = p.gap_extend

    ins_open = cell.left[LAYER_H] + open_cost
    ins_ext = cell.left[LAYER_I] + extend
    i_ext = ins_ext > ins_open
    ins = select(i_ext, ins_ext, ins_open)

    del_open = cell.up[LAYER_H] + open_cost
    del_ext = cell.up[LAYER_D] + extend
    d_ext = del_ext > del_open
    del_ = select(d_ext, del_ext, del_open)

    match = cell.diag[LAYER_H] + substitution(
        cell.qry, cell.ref, p.match, p.mismatch
    )
    score, h_src = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    return (score, ins, del_), affine_ptr(h_src, i_ext, d_ext)


SPEC = KernelSpec(
    name="global_affine",
    kernel_id=2,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=3,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=affine_gap_init(),
    init_col=affine_gap_init(),
    default_params=ScoringParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=affine_tb,
    tb_ptr_bits=4,
    tb_states=("MM", "INS", "DEL"),
    description="Global Affine Alignment (Gotoh)",
    applications=("Accurate Similarity Search",),
    reference_tools=("BLAST", "EMBOSS Needle"),
    modifications="Scoring",
)
