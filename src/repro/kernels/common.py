"""Building blocks shared by the kernel implementations.

These are *front-end* conveniences: substitution-score selection, standard
initialization patterns, and the traceback FSM families (linear, affine,
two-piece affine).  A kernel is free to ignore them and write everything
from scratch — the specs only ever talk to the back-end through
:class:`~repro.core.spec.KernelSpec`.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

import numpy as np

from repro.core.ops import eq, select
from repro.core.result import Move
from repro.core.spec import TB_DIAG, TB_LEFT, TB_UP

# ---------------------------------------------------------------------------
# scoring helpers
# ---------------------------------------------------------------------------


def substitution(qry: Any, ref: Any, match: Any, mismatch: Any) -> Any:
    """Single-value match/mismatch substitution score (Section 2.2.2a)."""
    return select(eq(qry, ref), match, mismatch)


def pick_best(candidates, minimize: bool = False) -> Tuple[Any, Any]:
    """Compare-and-update cascade selecting a score and its tag (Listing 6).

    ``candidates`` is a sequence of ``(value, tag)`` pairs; earlier entries
    win ties, so listing the diagonal candidate first gives the conventional
    diagonal > up > left priority.  Returns ``(best_value, best_tag)``.
    Works on plain numbers and on traced operands alike.
    """
    best, tag = candidates[0]
    for value, candidate_tag in candidates[1:]:
        cond = value < best if minimize else value > best
        best = select(cond, value, best)
        tag = select(cond, candidate_tag, tag)
    return best, tag


# ---------------------------------------------------------------------------
# initialization patterns (Section 2.2.2c)
# ---------------------------------------------------------------------------


def zero_init(n_layers: int) -> Callable[[Any, int], np.ndarray]:
    """All-zero first row/column (local, overlap, free-end strategies)."""

    def init(_params: Any, length: int) -> np.ndarray:
        return np.zeros((length, n_layers))

    return init


def linear_gap_init(
    n_layers: int, gap_field: str = "linear_gap", sentinel: float = 0.0
) -> Callable[[Any, int], np.ndarray]:
    """``i * gap`` on layer 0, ``sentinel`` elsewhere (global strategies)."""

    def init(params: Any, length: int) -> np.ndarray:
        gap = getattr(params, gap_field)
        scores = np.full((length, n_layers), sentinel)
        scores[:, 0] = gap * np.arange(length)
        scores[0, :] = [0.0] + [sentinel] * (n_layers - 1)
        return scores

    return init


def constant_init(
    n_layers: int, boundary: float, corner: float = 0.0
) -> Callable[[Any, int], np.ndarray]:
    """Corner value at index 0, a constant everywhere else (DTW-style)."""

    def init(_params: Any, length: int) -> np.ndarray:
        scores = np.full((length, n_layers), boundary)
        scores[0, :] = corner
        return scores

    return init


def banded_mask_init(
    base: Callable[[Any, int], np.ndarray],
    band: int,
    sentinel: float,
) -> Callable[[Any, int], np.ndarray]:
    """Wrap an initializer so cells beyond the band read as sentinel.

    For the first row/column the band condition |i - j| <= W degenerates to
    ``index <= W``.
    """

    def init(params: Any, length: int) -> np.ndarray:
        scores = base(params, length)
        if length > band + 1:
            scores[band + 1:, :] = sentinel
        return scores

    return init


# ---------------------------------------------------------------------------
# traceback FSM families (Section 4, step 4)
# ---------------------------------------------------------------------------

#: FSM state names shared by the affine family.
MM, INS, DEL = 0, 1, 2
#: Extra states of the two-piece affine family (Listing 3, right).
LONG_INS, LONG_DEL = 3, 4


def linear_tb(state: int, ptr: int) -> Tuple[Move, int]:
    """Single-state FSM for linear-gap kernels (Listing 7)."""
    if ptr == TB_DIAG:
        return Move.MATCH, MM
    if ptr == TB_UP:
        return Move.DEL, MM
    if ptr == TB_LEFT:
        return Move.INS, MM
    return Move.END, MM


# Affine pointer layout (4 bits, the paper's ap_uint<4> for kernel #2):
#   bits [1:0] — source of the H layer (TB_DIAG / TB_UP / TB_LEFT / TB_END)
#   bit  2     — insertion layer extended (I came from I, not H)
#   bit  3     — deletion layer extended (D came from D, not H)
AFFINE_I_EXT = 1 << 2
AFFINE_D_EXT = 1 << 3


def affine_ptr(h_src: Any, i_ext: Any, d_ext: Any) -> Any:
    """Pack the affine traceback pointer from its three components."""
    return h_src + select(i_ext, AFFINE_I_EXT, 0) + select(d_ext, AFFINE_D_EXT, 0)


def affine_tb(state: int, ptr: int) -> Tuple[Move, int]:
    """Three-state Gotoh traceback FSM (states of Listing 3, left)."""
    h_src = ptr & 3
    i_ext = bool(ptr & AFFINE_I_EXT)
    d_ext = bool(ptr & AFFINE_D_EXT)
    if state == MM:
        if h_src == TB_DIAG:
            return Move.MATCH, MM
        if h_src == TB_UP:
            return Move.DEL, DEL if d_ext else MM
        if h_src == TB_LEFT:
            return Move.INS, INS if i_ext else MM
        return Move.END, MM
    if state == INS:
        return Move.INS, INS if i_ext else MM
    if state == DEL:
        return Move.DEL, DEL if d_ext else MM
    raise ValueError(f"unknown affine traceback state {state}")


# Two-piece pointer layout (7 bits, matching the paper's observation that
# two-piece kernels need at least 7 bits per pointer):
#   bits [2:0] — source of the H layer:
#                0=diag, 1=short del, 2=short ins, 3=long del, 4=long ins,
#                7=end
#   bit 3 — short insertion extended      bit 4 — short deletion extended
#   bit 5 — long  insertion extended      bit 6 — long  deletion extended
TP_DIAG, TP_DEL, TP_INS, TP_LDEL, TP_LINS, TP_END = 0, 1, 2, 3, 4, 7
TP_I_EXT = 1 << 3
TP_D_EXT = 1 << 4
TP_LI_EXT = 1 << 5
TP_LD_EXT = 1 << 6


def two_piece_ptr(
    h_src: Any, i_ext: Any, d_ext: Any, li_ext: Any, ld_ext: Any
) -> Any:
    """Pack the two-piece affine traceback pointer."""
    return (
        h_src
        + select(i_ext, TP_I_EXT, 0)
        + select(d_ext, TP_D_EXT, 0)
        + select(li_ext, TP_LI_EXT, 0)
        + select(ld_ext, TP_LD_EXT, 0)
    )


def two_piece_tb(state: int, ptr: int) -> Tuple[Move, int]:
    """Five-state FSM for two-piece affine kernels (Listing 3, right)."""
    h_src = ptr & 7
    i_ext = bool(ptr & TP_I_EXT)
    d_ext = bool(ptr & TP_D_EXT)
    li_ext = bool(ptr & TP_LI_EXT)
    ld_ext = bool(ptr & TP_LD_EXT)
    if state == MM:
        if h_src == TP_DIAG:
            return Move.MATCH, MM
        if h_src == TP_DEL:
            return Move.DEL, DEL if d_ext else MM
        if h_src == TP_INS:
            return Move.INS, INS if i_ext else MM
        if h_src == TP_LDEL:
            return Move.DEL, LONG_DEL if ld_ext else MM
        if h_src == TP_LINS:
            return Move.INS, LONG_INS if li_ext else MM
        return Move.END, MM
    if state == INS:
        return Move.INS, INS if i_ext else MM
    if state == DEL:
        return Move.DEL, DEL if d_ext else MM
    if state == LONG_INS:
        return Move.INS, LONG_INS if li_ext else MM
    if state == LONG_DEL:
        return Move.DEL, LONG_DEL if ld_ext else MM
    raise ValueError(f"unknown two-piece traceback state {state}")
