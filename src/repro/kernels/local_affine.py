"""Kernel #4 — Local Affine Alignment (Smith-Waterman-Gotoh).

Combines the affine gap model of kernel #2 with the local (zero-clamped)
strategy of kernel #3 — the workhorse of whole-genome aligners like LASTZ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.alphabet import DNA
from repro.core.ops import select
from repro.core.spec import (
    TB_DIAG,
    TB_END,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_int
from repro.kernels.common import affine_ptr, affine_tb, pick_best, substitution

SCORE_T = ap_int(16)
NEG = SCORE_T.sentinel_low()

LAYER_H, LAYER_I, LAYER_D = 0, 1, 2


@dataclass(frozen=True)
class ScoringParams:
    """Affine local alignment parameters (gap of L costs open + L*extend)."""

    match: int = 2
    mismatch: int = -4
    gap_open: int = -4
    gap_extend: int = -2


def local_affine_init(_params: Any, length: int) -> np.ndarray:
    """H layer zeros (free local start); gap layers at sentinel."""
    scores = np.full((length, 3), float(NEG))
    scores[:, LAYER_H] = 0.0
    return scores


def pe_func(cell: PEInput) -> PEOutput:
    """Gotoh recurrences with the Smith-Waterman zero clamp on H."""
    p = cell.params
    open_cost = p.gap_open + p.gap_extend
    extend = p.gap_extend

    ins_open = cell.left[LAYER_H] + open_cost
    ins_ext = cell.left[LAYER_I] + extend
    i_ext = ins_ext > ins_open
    ins = select(i_ext, ins_ext, ins_open)

    del_open = cell.up[LAYER_H] + open_cost
    del_ext = cell.up[LAYER_D] + extend
    d_ext = del_ext > del_open
    del_ = select(d_ext, del_ext, del_open)

    match = cell.diag[LAYER_H] + substitution(
        cell.qry, cell.ref, p.match, p.mismatch
    )
    score, h_src = pick_best([(match, TB_DIAG), (del_, TB_UP), (ins, TB_LEFT)])
    clamped = score < 0
    score = select(clamped, 0, score)
    h_src = select(clamped, TB_END, h_src)
    return (score, ins, del_), affine_ptr(h_src, i_ext, d_ext)


SPEC = KernelSpec(
    name="local_affine",
    kernel_id=4,
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=3,
    objective=Objective.MAXIMIZE,
    pe_func=pe_func,
    init_row=local_affine_init,
    init_col=local_affine_init,
    default_params=ScoringParams(),
    start_rule=StartRule.GLOBAL_MAX,
    traceback=TracebackSpec(end=EndRule.SENTINEL),
    tb_transition=affine_tb,
    tb_ptr_bits=4,
    tb_states=("MM", "INS", "DEL"),
    description="Local Affine Alignment (Smith-Waterman-Gotoh)",
    applications=("Whole Genome Alignment",),
    reference_tools=("BLAST", "LASTZ"),
    modifications="Scoring, Initialization and Traceback",
)
