"""Synthetic dataset substrates standing in for the paper's inputs.

The paper evaluates on PBSIM2-simulated PacBio reads from GRCh38,
Swiss-Prot proteins, SquiggleFilter's nanopore squiggles, and profiles
built from Drosophila genomes — none of which are available offline.  Each
module here generates the closest synthetic equivalent (documented in
DESIGN.md) so every kernel and experiment exercises realistic inputs:

* :mod:`repro.data.genome`  — synthetic reference genomes (GC bias, repeats)
* :mod:`repro.data.pbsim`   — long reads with a CLR-like 30 % error model
* :mod:`repro.data.protein` — proteins from Swiss-Prot residue frequencies
* :mod:`repro.data.blosum`  — the BLOSUM62 substitution matrix
* :mod:`repro.data.signals` — complex signals and nanopore squiggles
* :mod:`repro.data.profiles`— frequency profiles from diverged sequence sets
* :mod:`repro.data.fasta`   — minimal FASTA reading/writing
"""

from repro.data.blosum import BLOSUM62
from repro.data.genome import random_genome
from repro.data.pbsim import simulate_read, simulate_read_pairs
from repro.data.protein import random_protein

__all__ = [
    "BLOSUM62",
    "random_genome",
    "simulate_read",
    "simulate_read_pairs",
    "random_protein",
]
