"""PBSIM2-like long-read simulation (Section 6.1's DNA dataset).

The paper simulates 1,000 PacBio reads of 10,000 bases at a 30 % error
rate from GRCh38 and truncates them to 256 bases for the short-alignment
kernels.  This module reproduces that pipeline against our synthetic
genome: errors follow the CLR profile where insertions and deletions
dominate substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.data.genome import extract_region, random_genome

#: PBSIM2's CLR error decomposition (substitution : insertion : deletion).
CLR_ERROR_WEIGHTS = (0.06, 0.55, 0.39)


@dataclass(frozen=True)
class SimulatedRead:
    """One simulated read and the reference region it came from."""

    query: Tuple[int, ...]
    reference: Tuple[int, ...]
    genome_start: int


def simulate_read(
    reference: Tuple[int, ...],
    error_rate: float = 0.30,
    seed: Optional[int] = None,
    weights: Tuple[float, float, float] = CLR_ERROR_WEIGHTS,
) -> Tuple[int, ...]:
    """Corrupt a reference region into a CLR-like read.

    Each base independently suffers an error with probability
    ``error_rate``; the error type follows ``weights``.  Insertions add a
    random base after the current one, deletions drop it, substitutions
    replace it with a different base.
    """
    if not 0.0 <= error_rate < 1.0:
        raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
    total = sum(weights)
    if total <= 0:
        raise ValueError("error weights must sum to a positive value")
    p_sub, p_ins, p_del = (w / total for w in weights)
    rng = np.random.RandomState(seed)
    read: List[int] = []
    for base in reference:
        roll = rng.rand()
        if roll >= error_rate:
            read.append(base)
            continue
        kind = rng.rand()
        if kind < p_sub:
            read.append(int((base + rng.randint(1, 4)) % 4))
        elif kind < p_sub + p_ins:
            read.append(base)
            read.append(int(rng.randint(0, 4)))
        # deletion: emit nothing
    if not read:  # pathological short inputs: keep at least one base
        read.append(int(rng.randint(0, 4)))
    return tuple(read)


def simulate_genome_reads(
    genome: Tuple[int, ...],
    n_reads: int,
    length: int = 512,
    error_rate: float = 0.15,
    seed: Optional[int] = None,
):
    """Yield CLR-like reads sampled from a *given* genome (a flowcell).

    Unlike :func:`simulate_read_pairs` (which fabricates its own random
    genome per call), this samples read start positions uniformly from
    the provided reference — the generator the streaming pipeline feeds
    from, so a multi-megabase flowcell never materializes as a list.
    Reads losing more than half their bases to deletions are resampled.
    """
    if n_reads < 1:
        raise ValueError(f"n_reads must be >= 1, got {n_reads}")
    if length > len(genome):
        raise ValueError(
            f"read length {length} exceeds genome length {len(genome)}"
        )
    rng = np.random.RandomState(seed)
    produced = 0
    while produced < n_reads:
        start = int(rng.randint(0, len(genome) - length + 1))
        reference = extract_region(genome, start, length)
        query = simulate_read(
            reference, error_rate=error_rate, seed=rng.randint(2**31 - 1)
        )
        if len(query) < length // 2:
            continue
        produced += 1
        yield SimulatedRead(
            query=query, reference=reference, genome_start=start
        )


def simulate_read_pairs(
    n_pairs: int,
    length: int = 256,
    error_rate: float = 0.30,
    genome_length: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[SimulatedRead]:
    """The paper's workload: reads of ``length`` bases against their origin.

    Reads are truncated (or padded by resampling) to exactly ``length``
    bases, mirroring the 256-base truncation used for kernels #1-7 and
    #10-13.
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    rng = np.random.RandomState(seed)
    genome_length = genome_length or max(10 * length, 4096)
    genome = random_genome(genome_length, seed=rng.randint(2**31 - 1))
    pairs: List[SimulatedRead] = []
    while len(pairs) < n_pairs:
        start = int(rng.randint(0, genome_length - length))
        reference = extract_region(genome, start, length)
        query = simulate_read(
            reference, error_rate=error_rate, seed=rng.randint(2**31 - 1)
        )
        if len(query) < length // 2:
            continue  # overly deleted read; resample
        query = query[:length]
        pairs.append(
            SimulatedRead(query=query, reference=reference, genome_start=start)
        )
    return pairs
