"""Signal workloads: complex samples for DTW and nanopore squiggles for sDTW.

The DTW kernel (#9) consumes complex temporal samples; the paper simulates
its own random complex sequences, which we reproduce.  The sDTW kernel
(#14) consumes nanopore current levels; standing in for the SquiggleFilter
dataset, ``squiggle_from_sequence`` synthesises a squiggle through a random
k-mer pore model (per-k-mer Gaussian current levels, variable dwell times,
8-bit quantisation), the same signal class SquiggleFilter normalises and
feeds to its array.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hdl_types import ApFixedType

#: Fixed-point grid of the DTW kernel's complex components.
COMPLEX_COMPONENT_T = ApFixedType(24, 12)

#: Nanopore model constants (loosely R9.4-like).
PORE_K = 6
PORE_MEAN_PA = 90.0
PORE_SPREAD_PA = 12.0
PORE_NOISE_PA = 1.5


def random_complex_signal(
    length: int, amplitude: float = 1.0, seed: Optional[int] = None
) -> Tuple[Tuple[float, float], ...]:
    """Random complex samples quantised to the kernel's fixed-point grid."""
    if length < 1:
        raise ValueError(f"signal length must be >= 1, got {length}")
    rng = np.random.RandomState(seed)
    samples = rng.normal(0.0, amplitude, size=(length, 2))
    quantize = COMPLEX_COMPONENT_T.quantize
    return tuple((quantize(re), quantize(im)) for re, im in samples)


def warp_signal(
    signal: Tuple[Tuple[float, float], ...],
    stretch: float = 1.3,
    noise: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[Tuple[float, float], ...]:
    """Time-warp + noise a complex signal (a realistic DTW query)."""
    if stretch <= 0:
        raise ValueError(f"stretch must be positive, got {stretch}")
    rng = np.random.RandomState(seed)
    n_out = max(1, int(round(len(signal) * stretch)))
    idx = np.minimum(
        (np.arange(n_out) / stretch).astype(int), len(signal) - 1
    )
    quantize = COMPLEX_COMPONENT_T.quantize
    out = []
    for i in idx:
        re, im = signal[i]
        out.append(
            (
                quantize(re + rng.normal(0.0, noise)),
                quantize(im + rng.normal(0.0, noise)),
            )
        )
    return tuple(out)


class PoreModel:
    """A random k-mer -> current-level table (synthetic pore chemistry)."""

    def __init__(self, k: int = PORE_K, seed: Optional[int] = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        rng = np.random.RandomState(seed)
        self._levels = rng.normal(PORE_MEAN_PA, PORE_SPREAD_PA, size=4**k)

    def level(self, kmer_code: int) -> float:
        """Expected current (pA) while ``kmer_code`` occupies the pore."""
        return float(self._levels[kmer_code])

    @staticmethod
    def kmer_code(sequence: Tuple[int, ...], pos: int, k: int) -> int:
        """Pack ``k`` 2-bit bases starting at ``pos`` into one index."""
        code = 0
        for offset in range(k):
            code = (code << 2) | sequence[pos + offset]
        return code


def squiggle_from_sequence(
    sequence: Tuple[int, ...],
    pore: Optional[PoreModel] = None,
    mean_dwell: float = 2.0,
    noise: float = PORE_NOISE_PA,
    seed: Optional[int] = None,
) -> Tuple[int, ...]:
    """Synthesize an 8-bit quantised squiggle for a DNA sequence.

    Each k-mer contributes a geometric number of samples (dwell) around its
    pore level, plus Gaussian noise; levels are z-normalised and quantised
    into [0, 255] the way SquiggleFilter's pre-processing does.
    """
    pore = pore or PoreModel(seed=0)
    if len(sequence) < pore.k:
        raise ValueError(
            f"sequence of length {len(sequence)} shorter than k={pore.k}"
        )
    rng = np.random.RandomState(seed)
    raw: List[float] = []
    for pos in range(len(sequence) - pore.k + 1):
        level = pore.level(PoreModel.kmer_code(sequence, pos, pore.k))
        dwell = 1 + rng.geometric(1.0 / mean_dwell)
        raw.extend(level + rng.normal(0.0, noise) for _ in range(dwell))
    return quantize_signal(np.asarray(raw))


def quantize_signal(samples: np.ndarray) -> Tuple[int, ...]:
    """Z-normalise and quantise current samples into 8-bit integers."""
    if samples.size == 0:
        raise ValueError("cannot quantise an empty signal")
    std = samples.std()
    if std == 0:
        normalised = np.zeros_like(samples)
    else:
        normalised = (samples - samples.mean()) / std
    clipped = np.clip(normalised, -4.0, 4.0)
    levels = np.round((clipped + 4.0) / 8.0 * 255.0).astype(int)
    return tuple(int(v) for v in levels)


def sdtw_pair(
    ref_bases: int = 128,
    query_fraction: float = 0.3,
    seed: Optional[int] = None,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(query, reference) squiggles for kernel #14.

    The reference squiggle covers a genome region; the query re-reads a
    random sub-region (fresh noise and dwells through the same pore), so a
    correct sDTW finds a low-distance placement somewhere along the
    reference.
    """
    from repro.data.genome import random_genome

    rng = np.random.RandomState(seed)
    genome = random_genome(ref_bases, seed=rng.randint(2**31 - 1))
    pore = PoreModel(seed=rng.randint(2**31 - 1))
    reference = squiggle_from_sequence(
        genome, pore=pore, seed=rng.randint(2**31 - 1)
    )
    sub_len = max(pore.k + 1, int(ref_bases * query_fraction))
    start = int(rng.randint(0, ref_bases - sub_len + 1))
    query = squiggle_from_sequence(
        genome[start:start + sub_len], pore=pore, seed=rng.randint(2**31 - 1)
    )
    return query, reference
