"""Minimal FASTQ reading/writing plus quality-aware read simulation.

Extends the PBSIM-like pipeline with per-base Phred qualities so host
programs can exercise the full read-processing path (parse, filter by
quality, align).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.alphabet import decode_dna
from repro.data.pbsim import simulate_genome_reads, simulate_read_pairs

PathLike = Union[str, Path]

#: Phred+33 encoding bounds.
PHRED_OFFSET = 33
MAX_PHRED = 60


class FastqRecord(NamedTuple):
    """One FASTQ record."""

    name: str
    sequence: str
    qualities: Tuple[int, ...]  # Phred scores

    @property
    def mean_quality(self) -> float:
        """Average Phred score of the read."""
        return sum(self.qualities) / len(self.qualities)


def encode_qualities(phred: Tuple[int, ...]) -> str:
    """Phred scores -> FASTQ quality string (Phred+33)."""
    out = []
    for q in phred:
        if not 0 <= q <= MAX_PHRED:
            raise ValueError(f"Phred score {q} out of range [0, {MAX_PHRED}]")
        out.append(chr(q + PHRED_OFFSET))
    return "".join(out)


def decode_qualities(text: str) -> Tuple[int, ...]:
    """FASTQ quality string -> Phred scores."""
    return tuple(ord(ch) - PHRED_OFFSET for ch in text)


def write_fastq(path: PathLike, records: List[FastqRecord]) -> None:
    """Write records in four-line FASTQ format."""
    with open(path, "w") as handle:
        for record in records:
            if len(record.sequence) != len(record.qualities):
                raise ValueError(
                    f"{record.name}: {len(record.sequence)} bases but "
                    f"{len(record.qualities)} quality scores"
                )
            handle.write(f"@{record.name}\n{record.sequence}\n+\n")
            handle.write(encode_qualities(record.qualities) + "\n")


def iter_fastq(path: PathLike) -> Iterator[FastqRecord]:
    """Stream a FASTQ file one record at a time (constant memory).

    The streaming counterpart of :func:`read_fastq`: records are parsed
    and yielded as the file is read, so a flowcell larger than memory
    still flows — the ingest contract of :mod:`repro.pipeline`.
    """
    with open(path) as handle:
        index = 0
        while True:
            header = handle.readline()
            if header == "":
                return
            header = header.rstrip("\n")
            if header == "":
                continue  # tolerate trailing blank lines
            sequence = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            quality = handle.readline()
            if quality == "":
                raise ValueError(f"{path}: truncated FASTQ at record {index}")
            quality = quality.rstrip("\n")
            if not header.startswith("@"):
                raise ValueError(f"{path}: record {index} missing '@' header")
            if not plus.startswith("+"):
                raise ValueError(f"{path}: record {index} missing '+' line")
            if len(sequence) != len(quality):
                raise ValueError(f"{path}: record {index} length mismatch")
            yield FastqRecord(
                name=header[1:].split()[0],
                sequence=sequence.upper(),
                qualities=decode_qualities(quality),
            )
            index += 1


def iter_fastq_chunks(
    path: PathLike, chunk_size: int
) -> Iterator[List[FastqRecord]]:
    """Stream a FASTQ file as chunks of ``chunk_size`` records."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk: List[FastqRecord] = []
    for record in iter_fastq(path):
        chunk.append(record)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def write_flowcell(
    path: PathLike,
    genome: Sequence[int],
    n_reads: int,
    length: int = 512,
    error_rate: float = 0.15,
    seed: Optional[int] = None,
) -> int:
    """Simulate a flowcell from ``genome`` straight to a FASTQ file.

    Reads are written as they are simulated (never held as a list); the
    record name carries the true origin (``read_K/pos=S``) so tests can
    check placement.  Returns the number of reads written.
    """
    rng = np.random.RandomState(seed)
    base_q = -10.0 * np.log10(max(error_rate, 1e-6)) if error_rate else 40.0
    written = 0
    with open(path, "w") as handle:
        reads = simulate_genome_reads(
            tuple(genome), n_reads, length=length, error_rate=error_rate,
            seed=rng.randint(2**31 - 1),
        )
        for index, read in enumerate(reads):
            n = len(read.query)
            phred = np.clip(
                np.round(rng.normal(base_q, 2.0, size=n)), 2, MAX_PHRED
            ).astype(int)
            handle.write(f"@read_{index}/pos={read.genome_start}\n")
            handle.write(decode_dna(read.query) + "\n+\n")
            handle.write(
                encode_qualities(tuple(int(q) for q in phred)) + "\n"
            )
            written += 1
    return written


def read_fastq(path: PathLike) -> List[FastqRecord]:
    """Parse a four-line-per-record FASTQ file."""
    records: List[FastqRecord] = []
    with open(path) as handle:
        lines = [line.rstrip("\n") for line in handle]
    while lines and lines[-1] == "":
        lines.pop()
    if len(lines) % 4 != 0:
        raise ValueError(f"{path}: truncated FASTQ ({len(lines)} lines)")
    for base in range(0, len(lines), 4):
        header, sequence, plus, quality = lines[base:base + 4]
        if not header.startswith("@"):
            raise ValueError(f"{path}: record {base // 4} missing '@' header")
        if not plus.startswith("+"):
            raise ValueError(f"{path}: record {base // 4} missing '+' line")
        if len(sequence) != len(quality):
            raise ValueError(
                f"{path}: record {base // 4} length mismatch"
            )
        records.append(
            FastqRecord(
                name=header[1:].split()[0],
                sequence=sequence.upper(),
                qualities=decode_qualities(quality),
            )
        )
    return records


def simulate_fastq(
    n_reads: int,
    length: int = 256,
    error_rate: float = 0.30,
    seed: Optional[int] = None,
) -> List[FastqRecord]:
    """Simulate CLR-like reads with error-rate-consistent qualities.

    The per-base Phred scores fluctuate around the value implied by the
    configured error rate (Q = -10 log10 p), the way long-read basecallers
    emit them.
    """
    if not 0.0 < error_rate < 1.0:
        raise ValueError(f"error_rate must be in (0, 1), got {error_rate}")
    rng = np.random.RandomState(seed)
    base_q = -10.0 * np.log10(error_rate)
    reads = simulate_read_pairs(
        n_reads, length=length, error_rate=error_rate,
        seed=rng.randint(2**31 - 1),
    )
    records = []
    for index, read in enumerate(reads):
        n = len(read.query)
        phred = np.clip(
            np.round(rng.normal(base_q, 2.0, size=n)), 2, MAX_PHRED
        ).astype(int)
        records.append(
            FastqRecord(
                name=f"read_{index}/pos={read.genome_start}",
                sequence=decode_dna(read.query),
                qualities=tuple(int(q) for q in phred),
            )
        )
    return records
