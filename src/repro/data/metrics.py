"""Alignment quality metrics derived from results and CIGAR strings.

Shared by the examples, the apps and their tests: identity of an
alignment path, query/reference coverage, and the column composition of a
CIGAR string.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Sequence

from repro.core.result import Alignment, Move

_CIGAR_TOKEN = re.compile(r"(\d+)([MID])")


def cigar_counts(cigar: str) -> Dict[str, int]:
    """Total columns per CIGAR op ('M', 'I', 'D').

    >>> cigar_counts("3M1I2M2D")
    {'M': 5, 'I': 1, 'D': 2}
    """
    counts = {"M": 0, "I": 0, "D": 0}
    consumed = 0
    for run, op in _CIGAR_TOKEN.findall(cigar):
        counts[op] += int(run)
        consumed += len(run) + 1
    if consumed != len(cigar):
        raise ValueError(f"malformed CIGAR {cigar!r}")
    return counts


def alignment_identity(
    alignment: Alignment, query: Sequence[Any], reference: Sequence[Any]
) -> float:
    """Matches / aligned columns (gaps count as non-matches)."""
    qi, rj = alignment.query_start, alignment.ref_start
    matches = columns = 0
    for move in alignment.moves:
        if move is Move.MATCH:
            matches += query[qi] == reference[rj]
            qi += 1
            rj += 1
            columns += 1
        elif move is Move.DEL:
            qi += 1
            columns += 1
        elif move is Move.INS:
            rj += 1
            columns += 1
    if columns == 0:
        return 1.0
    return matches / columns


def query_coverage(alignment: Alignment, query_len: int) -> float:
    """Fraction of the query inside the aligned interval."""
    if query_len == 0:
        return 0.0
    return (alignment.query_end - alignment.query_start) / query_len


def reference_coverage(alignment: Alignment, ref_len: int) -> float:
    """Fraction of the reference inside the aligned interval."""
    if ref_len == 0:
        return 0.0
    return (alignment.ref_end - alignment.ref_start) / ref_len


def sequence_identity(a: Sequence[Any], b: Sequence[Any]) -> float:
    """Global alignment identity between two raw sequences (kernel #1)."""
    from repro.kernels import get_kernel
    from repro.systolic import align

    result = align(get_kernel(1), a, b, n_pe=8)
    return alignment_identity(result.alignment, a, b)
