"""Sequence-profile workloads for kernel #8 (profile alignment).

Stands in for the paper's Drosophila melanogaster / simulans profiles:
two groups of sequences diverge from a common synthetic ancestor, each
group is stacked into per-column {A, C, G, T, gap} frequency profiles, and
the profile-alignment kernel aligns one group's profile to the other's.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.genome import random_genome

ProfileColumn = Tuple[float, float, float, float, float]


def mutate_sequence(
    sequence: Tuple[int, ...],
    divergence: float,
    rng: np.random.RandomState,
) -> List[int]:
    """Point-mutate a sequence; -1 marks a deletion (gap in the stack)."""
    out: List[int] = []
    for base in sequence:
        roll = rng.rand()
        if roll < divergence * 0.2:
            out.append(-1)  # gap
        elif roll < divergence:
            out.append(int((base + rng.randint(1, 4)) % 4))
        else:
            out.append(int(base))
    return out


def profile_from_stack(stack: np.ndarray) -> Tuple[ProfileColumn, ...]:
    """Column frequencies of a (n_seqs, n_cols) stack with -1 gaps."""
    n_seqs, n_cols = stack.shape
    columns: List[ProfileColumn] = []
    for col in range(n_cols):
        counts = np.zeros(5)
        for value in stack[:, col]:
            counts[4 if value < 0 else int(value)] += 1
        freqs = counts / n_seqs
        columns.append(tuple(float(f) for f in freqs))
    return tuple(columns)


def profile_pair(
    n_cols: int = 64,
    n_seqs: int = 8,
    divergence: float = 0.1,
    seed: Optional[int] = None,
) -> Tuple[Tuple[ProfileColumn, ...], Tuple[ProfileColumn, ...]]:
    """Two related profiles of ``n_cols`` columns from a shared ancestor."""
    if n_cols < 1 or n_seqs < 1:
        raise ValueError("n_cols and n_seqs must be >= 1")
    if not 0.0 <= divergence < 1.0:
        raise ValueError(f"divergence must be in [0, 1), got {divergence}")
    rng = np.random.RandomState(seed)
    ancestor = random_genome(n_cols, seed=rng.randint(2**31 - 1))
    profiles = []
    for _group in range(2):
        stack = np.asarray(
            [mutate_sequence(ancestor, divergence, rng) for _ in range(n_seqs)]
        )
        profiles.append(profile_from_stack(stack))
    return profiles[0], profiles[1]
