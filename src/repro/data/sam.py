"""Minimal SAM output for the read mapper.

Real aligners emit SAM; the mapper's :class:`MappedRead` carries all the
fields a minimal single-end record needs.  Only the subset of the spec
the pipeline example uses is implemented: header (@HD/@SQ), FLAG bits 4
(unmapped) and 16 (reverse strand), POS/MAPQ/CIGAR, and the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro.apps.read_mapper import MappedRead, ReadMapper
from repro.core.result import Move, expand_cigar

PathLike = Union[str, Path]

FLAG_UNMAPPED = 4
FLAG_REVERSE = 16


def sam_header(reference_name: str, reference_length: int) -> str:
    """@HD + @SQ lines for a single-reference run."""
    return (
        "@HD\tVN:1.6\tSO:unsorted\n"
        f"@SQ\tSN:{reference_name}\tLN:{reference_length}"
    )


def sam_record(
    read_name: str,
    sequence: str,
    hit: Optional[MappedRead],
    mapper: Optional[ReadMapper] = None,
    reference_name: str = "ref",
    mapq: int = 60,
) -> str:
    """One alignment line (or an unmapped record when ``hit`` is None)."""
    if hit is None:
        return "\t".join(
            [read_name, str(FLAG_UNMAPPED), "*", "0", "0", "*",
             "*", "0", "0", sequence, "*"]
        )
    flag = FLAG_REVERSE if hit.strand == "-" else 0
    position = (
        mapper.mapped_start(hit) if mapper is not None
        else hit.position + hit.window_offset
    )
    return "\t".join(
        [
            read_name,
            str(flag),
            reference_name,
            str(position + 1),  # SAM is 1-based
            str(mapq),
            hit.cigar or "*",
            "*", "0", "0",
            sequence,
            "*",
            f"AS:i:{int(hit.score)}",
        ]
    )


def write_sam(
    path: PathLike,
    records: List[Tuple[str, str, Optional[MappedRead]]],
    mapper: ReadMapper,
    reference_name: str = "ref",
) -> None:
    """Write a header plus one record per (name, sequence, hit) triple."""
    lines = [sam_header(reference_name, len(mapper.genome))]
    for name, sequence, hit in records:
        lines.append(
            sam_record(name, sequence, hit, mapper, reference_name)
        )
    Path(path).write_text("\n".join(lines) + "\n")


def parse_sam_positions(path: PathLike) -> List[Tuple[str, int, bool]]:
    """(name, 0-based position, mapped) per record — enough for tests."""
    out = []
    for line in Path(path).read_text().splitlines():
        if line.startswith("@"):
            continue
        fields = line.split("\t")
        flag = int(fields[1])
        out.append((fields[0], int(fields[3]) - 1, not flag & FLAG_UNMAPPED))
    return out


class SamWriter:
    """Streaming SAM emitter: header up front, one record at a time.

    The write-side counterpart of :func:`iter_sam`: records leave the
    process as they arrive (nothing is accumulated), which is what lets
    the pipeline's emission stage run in constant memory.  Usable as a
    context manager.
    """

    def __init__(
        self,
        path: PathLike,
        reference_name: str,
        reference_length: int,
    ) -> None:
        self.reference_name = reference_name
        self._handle = open(path, "w")
        self._records = 0
        try:
            self._handle.write(
                sam_header(reference_name, reference_length) + "\n"
            )
        except BaseException:
            self._handle.close()
            raise

    def write(
        self,
        read_name: str,
        sequence: str,
        hit: Optional[MappedRead],
        mapq: int = 60,
    ) -> None:
        """Emit one record (an unmapped line when ``hit`` is None)."""
        self._handle.write(
            sam_record(
                read_name, sequence, hit,
                reference_name=self.reference_name, mapq=mapq,
            ) + "\n"
        )
        self._records += 1

    @property
    def records_written(self) -> int:
        """Alignment lines emitted so far (header excluded)."""
        return self._records

    def close(self) -> None:
        """Flush and release the file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SamWriter":
        """Context-manager entry: the writer itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the handle."""
        self.close()


@dataclass(frozen=True)
class SamRecord:
    """One parsed alignment line (the fields this repo's dialect emits).

    CIGARs follow the repo's :class:`~repro.core.result.Move` semantics
    (``D`` consumes a read base, ``I`` a reference base — the transpose
    of the standard SAM convention), matching what :func:`sam_record`
    writes from the engine's traceback.
    """

    name: str
    flag: int
    reference_name: str
    position: int          # 0-based (converted from SAM's 1-based POS)
    mapq: int
    cigar: str
    sequence: str
    score: Optional[int]   # the AS:i tag, when present

    @property
    def mapped(self) -> bool:
        """Whether the record places the read on the reference."""
        return not self.flag & FLAG_UNMAPPED

    @property
    def reverse(self) -> bool:
        """Whether the read mapped on the reverse strand."""
        return bool(self.flag & FLAG_REVERSE)


def iter_sam(path: PathLike) -> Iterator[SamRecord]:
    """Stream and validate the alignment lines of a SAM file.

    Each mapped record's CIGAR is decoded (:func:`expand_cigar`) and
    checked for consistency with the sequence under the repo's move
    semantics: ``M + D`` columns must consume exactly the read.  This is
    the round-trip the CI smoke job leans on to call emitted SAM valid.
    """
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if line == "" or line.startswith("@"):
                continue
            fields = line.split("\t")
            if len(fields) < 11:
                raise ValueError(
                    f"{path}:{number}: {len(fields)} fields (need >= 11)"
                )
            flag = int(fields[1])
            cigar = fields[5]
            sequence = fields[9]
            if not flag & FLAG_UNMAPPED and cigar != "*":
                moves = expand_cigar(cigar)
                consumed = sum(
                    1 for m in moves if m in (Move.MATCH, Move.DEL)
                )
                if consumed != len(sequence):
                    raise ValueError(
                        f"{path}:{number}: CIGAR {cigar} consumes "
                        f"{consumed} read bases but SEQ has {len(sequence)}"
                    )
            score: Optional[int] = None
            for tag in fields[11:]:
                if tag.startswith("AS:i:"):
                    score = int(tag[5:])
            yield SamRecord(
                name=fields[0],
                flag=flag,
                reference_name=fields[2],
                position=int(fields[3]) - 1,
                mapq=int(fields[4]),
                cigar=cigar,
                sequence=sequence,
                score=score,
            )
