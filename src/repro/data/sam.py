"""Minimal SAM output for the read mapper.

Real aligners emit SAM; the mapper's :class:`MappedRead` carries all the
fields a minimal single-end record needs.  Only the subset of the spec
the pipeline example uses is implemented: header (@HD/@SQ), FLAG bits 4
(unmapped) and 16 (reverse strand), POS/MAPQ/CIGAR, and the sequence.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.apps.read_mapper import MappedRead, ReadMapper

PathLike = Union[str, Path]

FLAG_UNMAPPED = 4
FLAG_REVERSE = 16


def sam_header(reference_name: str, reference_length: int) -> str:
    """@HD + @SQ lines for a single-reference run."""
    return (
        "@HD\tVN:1.6\tSO:unsorted\n"
        f"@SQ\tSN:{reference_name}\tLN:{reference_length}"
    )


def sam_record(
    read_name: str,
    sequence: str,
    hit: Optional[MappedRead],
    mapper: Optional[ReadMapper] = None,
    reference_name: str = "ref",
    mapq: int = 60,
) -> str:
    """One alignment line (or an unmapped record when ``hit`` is None)."""
    if hit is None:
        return "\t".join(
            [read_name, str(FLAG_UNMAPPED), "*", "0", "0", "*",
             "*", "0", "0", sequence, "*"]
        )
    flag = FLAG_REVERSE if hit.strand == "-" else 0
    position = (
        mapper.mapped_start(hit) if mapper is not None
        else hit.position + hit.window_offset
    )
    return "\t".join(
        [
            read_name,
            str(flag),
            reference_name,
            str(position + 1),  # SAM is 1-based
            str(mapq),
            hit.cigar or "*",
            "*", "0", "0",
            sequence,
            "*",
            f"AS:i:{int(hit.score)}",
        ]
    )


def write_sam(
    path: PathLike,
    records: List[Tuple[str, str, Optional[MappedRead]]],
    mapper: ReadMapper,
    reference_name: str = "ref",
) -> None:
    """Write a header plus one record per (name, sequence, hit) triple."""
    lines = [sam_header(reference_name, len(mapper.genome))]
    for name, sequence, hit in records:
        lines.append(
            sam_record(name, sequence, hit, mapper, reference_name)
        )
    Path(path).write_text("\n".join(lines) + "\n")


def parse_sam_positions(path: PathLike) -> List[Tuple[str, int, bool]]:
    """(name, 0-based position, mapped) per record — enough for tests."""
    out = []
    for line in Path(path).read_text().splitlines():
        if line.startswith("@"):
            continue
        fields = line.split("\t")
        flag = int(fields[1])
        out.append((fields[0], int(fields[3]) - 1, not flag & FLAG_UNMAPPED))
    return out
