"""Minimal FASTA reading and writing for host-side tooling and examples."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

PathLike = Union[str, Path]


def read_fasta(path: PathLike) -> Dict[str, str]:
    """Parse a FASTA file into {record name: sequence} (order-preserving)."""
    records: Dict[str, str] = {}
    name = None
    chunks: List[str] = []
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records[name] = "".join(chunks)
                name = line[1:].split()[0]
                if not name:
                    raise ValueError(f"{path}: empty FASTA record name")
                chunks = []
            else:
                if name is None:
                    raise ValueError(f"{path}: sequence before first header")
                chunks.append(line.upper())
    if name is not None:
        records[name] = "".join(chunks)
    return records


def write_fasta(
    path: PathLike, records: Iterable[Tuple[str, str]], width: int = 70
) -> None:
    """Write (name, sequence) records as wrapped FASTA."""
    if width < 1:
        raise ValueError(f"line width must be >= 1, got {width}")
    with open(path, "w") as handle:
        for name, sequence in records:
            handle.write(f">{name}\n")
            for start in range(0, len(sequence), width):
                handle.write(sequence[start:start + width] + "\n")
