"""Protein sequence sampling (the offline stand-in for Swiss-Prot).

Sequences are drawn from the Swiss-Prot amino-acid background composition
(UniProtKB release statistics), so substitution-matrix scores against them
have realistic statistics.  ``mutate_protein`` produces homologous pairs
for local-alignment workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.alphabet import PROTEIN_LETTERS

#: Swiss-Prot residue frequencies (%, UniProtKB statistics), in
#: ARNDCQEGHILKMFPSTWYV order.
SWISSPROT_FREQUENCIES = (
    8.25, 5.53, 4.06, 5.45, 1.37, 3.93, 6.75, 7.07, 2.27, 5.96,
    9.66, 5.84, 2.42, 3.86, 4.70, 6.56, 5.34, 1.08, 2.92, 6.87,
)


def _probabilities() -> np.ndarray:
    freqs = np.asarray(SWISSPROT_FREQUENCIES, dtype=float)
    return freqs / freqs.sum()


def random_protein(
    length: int, seed: Optional[int] = None
) -> Tuple[int, ...]:
    """Sample a protein as 5-bit residue codes with Swiss-Prot composition."""
    if length < 1:
        raise ValueError(f"protein length must be >= 1, got {length}")
    rng = np.random.RandomState(seed)
    codes = rng.choice(len(PROTEIN_LETTERS), size=length, p=_probabilities())
    return tuple(int(c) for c in codes)


def mutate_protein(
    protein: Tuple[int, ...],
    identity: float = 0.6,
    indel_rate: float = 0.05,
    seed: Optional[int] = None,
) -> Tuple[int, ...]:
    """Derive a homolog: point mutations to ``identity``, light indels."""
    if not 0.0 < identity <= 1.0:
        raise ValueError(f"identity must be in (0, 1], got {identity}")
    rng = np.random.RandomState(seed)
    probs = _probabilities()
    out: List[int] = []
    for residue in protein:
        roll = rng.rand()
        if roll < indel_rate / 2:
            continue  # deletion
        if roll < indel_rate:
            out.append(int(rng.choice(len(PROTEIN_LETTERS), p=probs)))
        if rng.rand() < identity:
            out.append(residue)
        else:
            out.append(int(rng.choice(len(PROTEIN_LETTERS), p=probs)))
    if not out:
        out.append(int(rng.choice(len(PROTEIN_LETTERS), p=probs)))
    return tuple(out)


def protein_pairs(
    n_pairs: int,
    length: int = 256,
    identity: float = 0.6,
    seed: Optional[int] = None,
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Homologous (query, reference) pairs for kernel #15 workloads."""
    rng = np.random.RandomState(seed)
    pairs = []
    for _ in range(n_pairs):
        reference = random_protein(length, seed=rng.randint(2**31 - 1))
        query = mutate_protein(
            reference, identity=identity, seed=rng.randint(2**31 - 1)
        )[:length]
        pairs.append((query, reference))
    return pairs
