"""Synthetic reference genomes (the offline stand-in for GRCh38).

Generates DNA with human-like GC content and a configurable fraction of
repetitive sequence (tandem repeats and dispersed duplications), which is
what makes alignment against it non-trivial: reads sampled from repeats
produce the near-tie traceback situations real aligners must handle.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: Human genome-wide GC content is ~41 %.
HUMAN_GC = 0.41


def random_genome(
    length: int,
    gc_content: float = HUMAN_GC,
    repeat_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> Tuple[int, ...]:
    """Generate a synthetic genome as 2-bit base codes (A=0,C=1,G=2,T=3).

    ``repeat_fraction`` of the genome is covered by copies of earlier
    segments (dispersed repeats) and short tandem expansions.
    """
    if length < 1:
        raise ValueError(f"genome length must be >= 1, got {length}")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError(f"gc_content must be in [0, 1], got {gc_content}")
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError(
            f"repeat_fraction must be in [0, 1), got {repeat_fraction}"
        )
    rng = np.random.RandomState(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    bases = rng.choice(4, size=length, p=[at, gc, gc, at]).astype(np.int8)

    # Overwrite stretches with copies of earlier material to create repeats.
    repeat_budget = int(length * repeat_fraction)
    while repeat_budget > 0 and length > 64:
        size = int(rng.randint(16, min(256, max(17, length // 4))))
        src = int(rng.randint(0, length - size))
        dst = int(rng.randint(0, length - size))
        if rng.rand() < 0.5:
            bases[dst:dst + size] = bases[src:src + size]  # dispersed copy
        else:
            unit = bases[src:src + max(2, size // 8)]  # tandem expansion
            reps = np.tile(unit, size // len(unit) + 1)[:size]
            bases[dst:dst + size] = reps
        repeat_budget -= size
    return tuple(int(b) for b in bases)


def extract_region(
    genome: Tuple[int, ...], start: int, length: int
) -> Tuple[int, ...]:
    """Slice ``length`` bases starting at ``start`` (bounds-checked)."""
    if start < 0 or start + length > len(genome):
        raise ValueError(
            f"region [{start}, {start + length}) outside genome of length "
            f"{len(genome)}"
        )
    return genome[start:start + length]


def reverse_complement(sequence: Tuple[int, ...]) -> Tuple[int, ...]:
    """Reverse-complement 2-bit base codes (A<->T, C<->G)."""
    return tuple(3 - b for b in reversed(sequence))
