"""Bulk functional-verification campaigns (Section 6.1's 1,000 reads).

The paper verifies every kernel's final alignment output over large
simulated workloads.  A campaign does the same in two tiers:

* **broad tier** — every pair is scored by the independent textbook
  implementation (:mod:`repro.reference.dispatch`) and by the row-major
  oracle; scores must agree pair-by-pair;
* **deep tier** — a sample of pairs additionally runs through the full
  systolic engine (registers, banked memory, reduction, traceback) and is
  checked with :func:`repro.verify.verify_kernel`.

This keeps large campaigns tractable while every layer of the stack is
exercised on every run.  Both tiers accept ``workers``: the broad tier's
kernel×pair work items fan out across a process pool via
:mod:`repro.parallel`, and :func:`run_full_campaign` shares one pool
across *all* kernels' items at once — the host-side image of the paper's
N_K kernel replication.  Reports are deterministic: a run with
``workers=4`` produces byte-identical summaries to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel, kernel_ids
from repro.parallel import ParallelExecutor
from repro.reference.dispatch import classic_score
from repro.reference.dp_oracle import oracle_align
from repro.verify import verify_kernel


@dataclass
class CampaignReport:
    """Outcome of one kernel's verification campaign."""

    kernel_id: int
    kernel_name: str
    pairs: int
    engine_sample: int
    score_mismatches: List[Tuple[int, float, float]] = field(default_factory=list)
    engine_passed: bool = True
    harness_errors: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Broad-tier scores agree and the deep-tier engine sample passed."""
        return (
            not self.score_mismatches
            and not self.harness_errors
            and self.engine_passed
        )

    def summary(self) -> str:
        """Human-readable campaign verdict."""
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"campaign {self.kernel_name} (#{self.kernel_id}): {status} — "
            f"{self.pairs} pairs (textbook vs oracle), "
            f"{self.engine_sample} through the full engine"
        ]
        for index, ours, theirs in self.score_mismatches[:5]:
            lines.append(f"  pair {index}: oracle {ours} != textbook {theirs}")
        for error in self.harness_errors[:5]:
            lines.append(f"  harness error: {error}")
        if not self.engine_passed:
            lines.append("  engine sample FAILED verification")
        return "\n".join(lines)


def _score_pair_task(payload: Tuple, _seed: int) -> Tuple[float, float]:
    """Pooled broad-tier item: (oracle score, textbook score) of one pair."""
    kernel_id, query, reference = payload
    spec = get_kernel(kernel_id)
    return (
        oracle_align(spec, query, reference).score,
        classic_score(kernel_id, query, reference),
    )


def _make_campaign_pairs(
    kernel_id: int, n_pairs: int, max_length: int, seed: int
) -> List[Tuple]:
    workload = WORKLOADS[kernel_id]
    return [
        (q[:max_length], r[:max_length])
        for q, r in workload.make_pairs(n_pairs, seed)
    ]


def _fill_broad_tier(
    report: CampaignReport,
    pairs: Sequence[Tuple],
    scored: Sequence,
    atol: float,
) -> None:
    """Record mismatches/errors from index-ordered scoring outcomes."""
    for index, outcome in enumerate(scored):
        if not outcome.ok:
            report.harness_errors.append(
                f"pair {index}: {outcome.error.error_type}: "
                f"{outcome.error.message}"
            )
            continue
        oracle_score, textbook = outcome.value
        if not np.isclose(oracle_score, textbook, atol=atol):
            report.score_mismatches.append((index, oracle_score, textbook))


def run_campaign(
    kernel_id: int,
    n_pairs: int = 50,
    engine_sample: int = 3,
    max_length: int = 64,
    seed: int = 0,
    atol: float = 1e-2,
    workers: int = 1,
    backend: str = "systolic",
) -> CampaignReport:
    """Run a two-tier verification campaign for one kernel.

    ``workers`` parallelizes the broad tier across pairs; the report is
    identical whatever the worker count.  ``backend`` selects which
    engine the deep tier runs the sample through (the broad tier is
    oracle-vs-textbook and backend-independent).
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    spec = get_kernel(kernel_id)
    pairs = _make_campaign_pairs(kernel_id, n_pairs, max_length, seed)
    report = CampaignReport(
        kernel_id=kernel_id,
        kernel_name=spec.name,
        pairs=len(pairs),
        engine_sample=min(engine_sample, len(pairs)),
    )
    executor = ParallelExecutor(workers=workers)
    scored = executor.map(
        _score_pair_task,
        [(kernel_id, query, reference) for query, reference in pairs],
        seed=seed,
    )
    _fill_broad_tier(report, pairs, scored.outcomes, atol)
    sample = pairs[: report.engine_sample]
    verification = verify_kernel(spec, sample, n_pe_values=(4,), backend=backend)
    report.engine_passed = verification.passed
    return report


@dataclass
class FullCampaignReport:
    """Every kernel's campaign, run through one shared worker pool."""

    reports: Dict[int, CampaignReport] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Whether every kernel's campaign passed."""
        return all(report.passed for report in self.reports.values())

    def summary(self) -> str:
        """Deterministic multi-kernel verdict, one block per kernel."""
        lines = [
            f"full campaign: {'PASS' if self.passed else 'FAIL'} — "
            f"{len(self.reports)} kernels, "
            f"{sum(r.pairs for r in self.reports.values())} broad-tier pairs"
        ]
        for kid in sorted(self.reports):
            lines.append(self.reports[kid].summary())
        return "\n".join(lines)


def run_full_campaign(
    kernels: Optional[Sequence[int]] = None,
    n_pairs: int = 25,
    engine_sample: int = 2,
    max_length: int = 48,
    seed: int = 0,
    atol: float = 1e-2,
    workers: int = 1,
    backend: str = "systolic",
) -> FullCampaignReport:
    """Campaign every kernel, fanning kernel×pair items over one pool.

    Unlike looping :func:`run_campaign`, the broad-tier items of *all*
    kernels are interleaved in a single batch, so a slow kernel cannot
    leave workers idle while others still have queued pairs.
    """
    kids = sorted(kernels) if kernels is not None else kernel_ids()
    full = FullCampaignReport()
    all_pairs: Dict[int, List[Tuple]] = {}
    payloads: List[Tuple] = []
    spans: List[Tuple[int, int, int]] = []  # (kernel_id, start, stop)
    for kid in kids:
        pairs = _make_campaign_pairs(kid, n_pairs, max_length, seed)
        all_pairs[kid] = pairs
        spans.append((kid, len(payloads), len(payloads) + len(pairs)))
        payloads.extend((kid, query, reference) for query, reference in pairs)
        full.reports[kid] = CampaignReport(
            kernel_id=kid,
            kernel_name=get_kernel(kid).name,
            pairs=len(pairs),
            engine_sample=min(engine_sample, len(pairs)),
        )
    executor = ParallelExecutor(workers=workers)
    scored = executor.map(_score_pair_task, payloads, seed=seed)
    for kid, start, stop in spans:
        report = full.reports[kid]
        _fill_broad_tier(
            report, all_pairs[kid], scored.outcomes[start:stop], atol
        )
        sample = all_pairs[kid][: report.engine_sample]
        verification = verify_kernel(
            get_kernel(kid), sample, n_pe_values=(4,), backend=backend
        )
        report.engine_passed = verification.passed
    return full
