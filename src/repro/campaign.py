"""Bulk functional-verification campaigns (Section 6.1's 1,000 reads).

The paper verifies every kernel's final alignment output over large
simulated workloads.  A campaign does the same in two tiers:

* **broad tier** — every pair is scored by the independent textbook
  implementation (:mod:`repro.reference.dispatch`) and by the row-major
  oracle; scores must agree pair-by-pair;
* **deep tier** — a sample of pairs additionally runs through the full
  systolic engine (registers, banked memory, reduction, traceback) and is
  checked with :func:`repro.verify.verify_kernel`.

This keeps large campaigns tractable while every layer of the stack is
exercised on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel
from repro.reference.dispatch import classic_score
from repro.reference.dp_oracle import oracle_align
from repro.verify import verify_kernel


@dataclass
class CampaignReport:
    """Outcome of one kernel's verification campaign."""

    kernel_id: int
    kernel_name: str
    pairs: int
    engine_sample: int
    score_mismatches: List[Tuple[int, float, float]] = field(default_factory=list)
    engine_passed: bool = True

    @property
    def passed(self) -> bool:
        """Broad-tier scores agree and the deep-tier engine sample passed."""
        return not self.score_mismatches and self.engine_passed

    def summary(self) -> str:
        """Human-readable campaign verdict."""
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"campaign {self.kernel_name} (#{self.kernel_id}): {status} — "
            f"{self.pairs} pairs (textbook vs oracle), "
            f"{self.engine_sample} through the full engine"
        ]
        for index, ours, theirs in self.score_mismatches[:5]:
            lines.append(f"  pair {index}: oracle {ours} != textbook {theirs}")
        if not self.engine_passed:
            lines.append("  engine sample FAILED verification")
        return "\n".join(lines)


def run_campaign(
    kernel_id: int,
    n_pairs: int = 50,
    engine_sample: int = 3,
    max_length: int = 64,
    seed: int = 0,
    atol: float = 1e-2,
) -> CampaignReport:
    """Run a two-tier verification campaign for one kernel."""
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    spec = get_kernel(kernel_id)
    workload = WORKLOADS[kernel_id]
    pairs = [
        (q[:max_length], r[:max_length])
        for q, r in workload.make_pairs(n_pairs, seed)
    ]
    report = CampaignReport(
        kernel_id=kernel_id,
        kernel_name=spec.name,
        pairs=len(pairs),
        engine_sample=min(engine_sample, len(pairs)),
    )
    for index, (query, reference) in enumerate(pairs):
        oracle_score = oracle_align(spec, query, reference).score
        textbook = classic_score(kernel_id, query, reference)
        if not np.isclose(oracle_score, textbook, atol=atol):
            report.score_mismatches.append((index, oracle_score, textbook))
    sample = pairs[: report.engine_sample]
    verification = verify_kernel(spec, sample, n_pe_values=(4,))
    report.engine_passed = verification.passed
    return report
