"""The complete DP-HLS design flow of Fig. 2A, as one call.

``run_flow`` takes a kernel from specification to deployment-ready
artifacts, in the paper's order:

1. **C-simulation** — functional verification against the row-major
   oracle over a workload (:mod:`repro.verify`);
2. **synthesis** — datapath tracing, II/Fmax, resources, feasibility
   (:func:`repro.synth.synthesize`);
3. **co-simulation** — the cycle/throughput model at the configured
   maxima (inside the synthesis report);
4. **implementation** — the structural RTL skeleton
   (:mod:`repro.synth.rtlgen`), standing in for bitstream generation.

The returned :class:`FlowResult` bundles every stage's artifact plus a
single ``passed`` verdict, which is what a CI gate would consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.core.spec import KernelSpec
from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize
from repro.synth.rtlgen import generate_rtl_skeleton
from repro.verify import VerificationReport, verify_kernel


@dataclass
class FlowResult:
    """Artifacts of one pass through the Fig. 2A flow."""

    spec_name: str
    verification: VerificationReport
    synthesis: SynthesisReport
    rtl_skeleton: str

    @property
    def passed(self) -> bool:
        """Functionally verified *and* placeable on the device."""
        return self.verification.passed and self.synthesis.feasible

    def summary(self) -> str:
        """A flow-level report."""
        lines = [
            f"== DP-HLS flow: {self.spec_name} ==",
            f"  C-simulation  : "
            f"{'PASS' if self.verification.passed else 'FAIL'} "
            f"({self.verification.runs} runs)",
            f"  synthesis     : Fmax {self.synthesis.fmax_mhz:.1f} MHz, "
            f"II={self.synthesis.ii}, "
            f"{'fits' if self.synthesis.feasible else 'OVERFLOWS'}",
            f"  co-simulation : {self.synthesis.cycles} cycles/alignment -> "
            f"{self.synthesis.alignments_per_sec:.3e} aln/s",
            f"  implementation: {len(self.rtl_skeleton.splitlines())} lines "
            f"of structural RTL",
            f"  verdict       : {'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)


def run_flow(
    spec: KernelSpec,
    workload: Sequence[Tuple[Any, Any]],
    config: Optional[LaunchConfig] = None,
    n_pe_values: Sequence[int] = (1, 4),
) -> FlowResult:
    """Run the full flow for one kernel on a verification workload."""
    config = config or LaunchConfig()
    verification = verify_kernel(spec, workload, n_pe_values=n_pe_values)
    synthesis = synthesize(spec, config)
    rtl = generate_rtl_skeleton(spec, config)
    return FlowResult(
        spec_name=spec.name,
        verification=verification,
        synthesis=synthesis,
        rtl_skeleton=rtl,
    )
