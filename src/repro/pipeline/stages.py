"""The read-mapping pipeline's stages: seed/chain and tiled extension.

Chunks flow ``List[FastqRecord]`` → ``List[SeedTask]`` →
``List[MappedItem]`` → SAM sink.  Both stages implement
:class:`repro.api.Stage`, so :class:`repro.api.Pipeline` provides the
bounded queues, backpressure, and per-stage observability around them.
"""

from __future__ import annotations

from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.api.stage import Stage
from repro.apps.chaining import Anchor, chain_anchors
from repro.apps.read_mapper import MappedRead
from repro.core.alphabet import encode_dna
from repro.core.result import compress_cigar
from repro.data.fastq import FastqRecord
from repro.data.genome import reverse_complement
from repro.pipeline.dispatch import TileDispatcher
from repro.pipeline.extend import extend_batch
from repro.pipeline.index import KmerIndex


class SeedTask(NamedTuple):
    """A seeded read headed for tiled extension.

    ``query`` is strand-oriented (reverse-complemented for ``-`` hits);
    ``window`` is the candidate genome slice starting at
    ``window_start``.  A read that found no credible placement carries
    ``window = None`` and flows through extension untouched, so the SAM
    sink still emits its unmapped record in order.
    """

    name: str
    sequence: str
    strand: str
    query: Optional[Tuple[int, ...]]
    window_start: int
    window: Optional[Tuple[int, ...]]


class MappedItem(NamedTuple):
    """One read's final mapping decision, ready for SAM emission."""

    name: str
    sequence: str
    hit: Optional[MappedRead]
    mapq: int


class SeedChainStage(Stage):
    """Seed reads against the k-mer index and chain the anchors.

    Per strand: collect (capped) anchors, vote on binned diagonals,
    chain the anchors of the winning diagonal band, and keep the
    higher-scoring strand.  Reads whose best chain scores below
    ``min_chain_score`` leave as unmapped :class:`SeedTask` records.
    """

    def __init__(
        self,
        index: KmerIndex,
        padding: int = 32,
        max_anchors: int = 128,
        max_gap: int = 128,
        min_chain_score: float = 24.0,
        bin_width: int = 16,
    ) -> None:
        self.index = index
        self.padding = padding
        self.max_anchors = max_anchors
        self.max_gap = max_gap
        self.min_chain_score = min_chain_score
        self.bin_width = bin_width
        self.seeded = 0
        self.unseeded = 0

    @property
    def name(self) -> str:
        """Stage name in pipeline metrics."""
        return "seed"

    def _candidate(
        self, codes: Tuple[int, ...]
    ) -> Optional[Tuple[float, int]]:
        """(chain_score, diagonal) of the read's best placement, if any."""
        anchors = self.index.anchors(codes, max_anchors=self.max_anchors)
        if not anchors:
            return None
        diagonals = np.asarray(
            [a.ref_pos - a.read_pos for a in anchors], dtype=np.int64
        )
        bins = diagonals // self.bin_width
        values, counts = np.unique(bins, return_counts=True)
        winner = values[int(np.argmax(counts))]
        in_band = np.abs(bins - winner) <= 1
        band = [a for a, keep in zip(anchors, in_band) if keep]
        chain = chain_anchors(band, max_gap=self.max_gap)
        if chain is None:
            return None
        diagonal = int(np.median(diagonals[in_band]))
        return chain.score, diagonal

    def process(self, chunk: Sequence[FastqRecord]) -> List[List[SeedTask]]:
        """Seed one chunk of FASTQ records."""
        tasks: List[SeedTask] = []
        for record in chunk:
            forward = encode_dna(record.sequence)
            best: Optional[Tuple[float, int, str, Tuple[int, ...]]] = None
            for strand, codes in (
                ("+", forward),
                ("-", reverse_complement(forward)),
            ):
                if len(codes) < self.index.k:
                    continue
                candidate = self._candidate(codes)
                if candidate is None:
                    continue
                score, diagonal = candidate
                if best is None or score > best[0]:
                    best = (score, diagonal, strand, codes)
            if best is None or best[0] < self.min_chain_score:
                self.unseeded += 1
                tasks.append(
                    SeedTask(record.name, record.sequence, "+", None, 0, None)
                )
                continue
            _, diagonal, strand, codes = best
            start, window = self.index.window(
                len(codes), diagonal, padding=self.padding
            )
            self.seeded += 1
            tasks.append(
                SeedTask(record.name, record.sequence, strand,
                         codes, start, window)
            )
        return [tasks]


class ExtendStage(Stage):
    """GACT-extend seeded reads, tiles batched across the chunk.

    Every seeded read in a chunk advances in lockstep through
    :func:`repro.pipeline.extend.extend_batch`; the resulting stitched
    alignment is accepted when its base-level identity clears
    ``min_identity``, with MAPQ scaled linearly above that floor.
    """

    def __init__(
        self,
        dispatcher: TileDispatcher,
        tile_size: int = 128,
        overlap: int = 32,
        min_identity: float = 0.55,
    ) -> None:
        if not 0.0 < min_identity < 1.0:
            raise ValueError(
                f"min_identity must be in (0, 1), got {min_identity}"
            )
        self.dispatcher = dispatcher
        self.tile_size = tile_size
        self.overlap = overlap
        self.min_identity = min_identity
        self.tiles = 0
        self.cached_tiles = 0
        self.mapped = 0
        self.unmapped = 0

    @property
    def name(self) -> str:
        """Stage name in pipeline metrics."""
        return "extend"

    def _mapq(self, identity: float) -> int:
        """MAPQ from identity, linear above the accept floor, 0..60."""
        span = 1.0 - self.min_identity
        scaled = 60.0 * (identity - self.min_identity) / span
        return max(0, min(60, int(round(scaled))))

    def process(self, chunk: Sequence[SeedTask]) -> List[List[MappedItem]]:
        """Extend one chunk of seeded reads."""
        seeded = [
            (i, task) for i, task in enumerate(chunk)
            if task.window is not None
        ]
        outcomes = extend_batch(
            [(task.query, task.window) for _, task in seeded],
            self.dispatcher,
            tile_size=self.tile_size,
            overlap=self.overlap,
        )
        items: List[Optional[MappedItem]] = [None] * len(chunk)
        for (i, task), outcome in zip(seeded, outcomes):
            self.tiles += outcome.tiles
            self.cached_tiles += outcome.cached_tiles
            identity = (
                outcome.matches / len(task.query) if task.query else 0.0
            )
            if identity < self.min_identity:
                items[i] = MappedItem(task.name, task.sequence, None, 0)
                continue
            hit = MappedRead(
                position=task.window_start,
                strand=task.strand,
                score=float(outcome.matches),
                cigar=compress_cigar(outcome.alignment.moves),
                window_offset=0,
            )
            items[i] = MappedItem(
                task.name, task.sequence, hit, self._mapq(identity)
            )
        for i, task in enumerate(chunk):
            if items[i] is None:
                items[i] = MappedItem(task.name, task.sequence, None, 0)
        finished = [item for item in items if item is not None]
        self.mapped += sum(1 for item in finished if item.hit is not None)
        self.unmapped += sum(1 for item in finished if item.hit is None)
        return [finished]

    def close(self) -> None:
        """Close the tile dispatcher with the stage."""
        self.dispatcher.close()
