"""Tile-request traces: recorded by the pipeline, replayed by loadgen.

A trace is a JSON-lines file, one tile request per line in submission
order (``{"kernel": int, "query": [codes], "reference": [codes]}``),
written by :class:`repro.pipeline.dispatch.TracingDispatcher`.  Replaying
it through ``repro loadgen --trace`` drives a service with the *exact*
tile stream a real mapping run produced — duplicate tiles and all — so
measured cache hit rates reflect production locality instead of a
synthetic Poisson mix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

PathLike = Union[str, Path]
TraceEntry = Tuple[int, Tuple[Any, ...], Tuple[Any, ...]]


def read_trace(path: PathLike) -> List[TraceEntry]:
    """Load a tile trace as a loadgen workload, preserving order.

    Returns ``(kernel_id, query, reference)`` triples — the workload
    shape :class:`repro.service.client.LoadGenerator` consumes.  Raises
    ``ValueError`` on malformed lines so a truncated trace fails loudly
    rather than replaying a prefix.
    """
    entries: List[TraceEntry] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kernel = int(record["kernel"])
                query = tuple(record["query"])
                reference = tuple(record["reference"])
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{number}: malformed trace line ({exc})"
                ) from None
            if not query or not reference:
                raise ValueError(
                    f"{path}:{number}: empty query or reference"
                )
            entries.append((kernel, query, reference))
    return entries


@dataclass(frozen=True)
class TraceSummary:
    """Shape of a trace: volume, dedup potential, tile dimensions."""

    requests: int
    distinct: int
    kernels: Tuple[int, ...]
    max_query_len: int
    max_ref_len: int

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of requests that repeat an earlier tile — the
        cache hit rate a replay against a cold cache should converge
        to."""
        if not self.requests:
            return 0.0
        return (self.requests - self.distinct) / self.requests


def summarize_trace(entries: Sequence[TraceEntry]) -> TraceSummary:
    """Compute a :class:`TraceSummary` from loaded trace entries."""
    seen: Dict[TraceEntry, None] = {}
    for entry in entries:
        seen.setdefault(entry)
    return TraceSummary(
        requests=len(entries),
        distinct=len(seen),
        kernels=tuple(sorted({k for k, _, _ in entries})),
        max_query_len=max((len(q) for _, q, _ in entries), default=0),
        max_ref_len=max((len(r) for _, _, r in entries), default=0),
    )
