"""Batched-across-reads GACT extension.

:func:`repro.tiling.gact.tiled_align` walks one read's tiles serially —
correct, but it feeds the device one tile at a time.  The pipeline's
extension stage instead advances a whole chunk of reads in lockstep:
every iteration gathers the *current* tile of each still-active read
into one wavefront, dispatches the wavefront as a single batch (one
``DeviceRuntime.run`` call, one service round trip), commits each
read's returned path with the same :func:`~repro.tiling.gact.commit_moves`
rule, and repeats until every read finishes.  The per-read tile
sequence — and therefore the stitched alignment — is byte-identical to
the serial walk; only the grouping across reads changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.core.result import Alignment, Move
from repro.pipeline.dispatch import TileDispatcher
from repro.tiling.gact import commit_moves

ExtendTask = Tuple[Sequence[Any], Sequence[Any]]


@dataclass
class _TaskState:
    """Per-read stitching cursor while its tiles are in flight."""

    query: Sequence[Any]
    reference: Sequence[Any]
    qi: int = 0
    ri: int = 0
    moves: List[Move] = field(default_factory=list)
    tiles: int = 0
    cached_tiles: int = 0
    done: bool = False


@dataclass(frozen=True)
class ExtendOutcome:
    """One read's stitched alignment plus tile accounting."""

    alignment: Alignment
    tiles: int
    cached_tiles: int
    matches: int


def count_matches(
    moves: Sequence[Move],
    query: Sequence[Any],
    reference: Sequence[Any],
) -> int:
    """MATCH columns whose two symbols are actually equal.

    The global kernel emits ``M`` for both matches and substitutions;
    identity filtering needs the true match count, recovered here by
    walking the committed path against both sequences.
    """
    qi = ri = matches = 0
    for move in moves:
        if move is Move.MATCH:
            if query[qi] == reference[ri]:
                matches += 1
            qi += 1
            ri += 1
        elif move is Move.DEL:
            qi += 1
        elif move is Move.INS:
            ri += 1
    return matches


def extend_batch(
    tasks: Sequence[ExtendTask],
    dispatcher: TileDispatcher,
    tile_size: int = 128,
    overlap: int = 32,
) -> List[ExtendOutcome]:
    """GACT-extend a chunk of reads, tiles batched across reads.

    Each task is a ``(query, reference)`` pair (read codes against its
    candidate genome window).  Results are index-aligned.  Raises
    ``RuntimeError`` when a tile commits no moves (degenerate
    tile_size/overlap), mirroring :func:`~repro.tiling.gact.tiled_align`.
    """
    if not 0 < overlap < tile_size:
        raise ValueError(
            f"need 0 < overlap < tile_size, got overlap={overlap}, "
            f"tile_size={tile_size}"
        )
    states = [_TaskState(query=q, reference=r) for q, r in tasks]
    commit_limit = tile_size - overlap
    active = [
        i for i, st in enumerate(states)
        if st.qi < len(st.query) and st.ri < len(st.reference)
    ]
    while active:
        wavefront: List[Tuple[Sequence[Any], Sequence[Any]]] = []
        last_flags: List[bool] = []
        for i in active:
            st = states[i]
            q_tile = st.query[st.qi:st.qi + tile_size]
            r_tile = st.reference[st.ri:st.ri + tile_size]
            last_flags.append(
                st.qi + len(q_tile) >= len(st.query)
                and st.ri + len(r_tile) >= len(st.reference)
            )
            wavefront.append((q_tile, r_tile))
        results = dispatcher.run_tiles(wavefront)
        if len(results) != len(wavefront):
            raise RuntimeError(
                f"dispatcher returned {len(results)} tiles "
                f"for a wavefront of {len(wavefront)}"
            )
        survivors: List[int] = []
        for i, last, tile in zip(active, last_flags, results):
            st = states[i]
            q_used, r_used, committed = commit_moves(
                tile.moves, limit=None if last else commit_limit
            )
            if not committed:
                raise RuntimeError(
                    f"tile at ({st.qi}, {st.ri}) committed no moves; "
                    f"increase tile_size ({tile_size}) relative to "
                    f"overlap ({overlap})"
                )
            st.moves.extend(committed)
            st.qi += q_used
            st.ri += r_used
            st.tiles += 1
            st.cached_tiles += int(tile.cached)
            if not last and st.qi < len(st.query) and st.ri < len(st.reference):
                survivors.append(i)
        active = survivors
    outcomes: List[ExtendOutcome] = []
    for st in states:
        st.moves.extend([Move.DEL] * (len(st.query) - st.qi))
        st.moves.extend([Move.INS] * (len(st.reference) - st.ri))
        alignment = Alignment(
            moves=tuple(st.moves),
            query_start=0,
            query_end=len(st.query),
            ref_start=0,
            ref_end=len(st.reference),
        )
        outcomes.append(
            ExtendOutcome(
                alignment=alignment,
                tiles=st.tiles,
                cached_tiles=st.cached_tiles,
                matches=count_matches(
                    alignment.moves, st.query, st.reference
                ),
            )
        )
    return outcomes
