"""Vectorized k-mer index over a multi-megabase reference.

The dict-of-tuples index in :class:`repro.apps.read_mapper.ReadMapper`
is fine for toy genomes but allocates one Python tuple per genome
position — hopeless at 2 Mb+.  :class:`KmerIndex` packs every k-mer
into a 2-bit-per-base integer code (k ≤ 31), sorts the codes once with
NumPy, and answers lookups by binary search: construction is O(G log G)
in C, a lookup is two ``searchsorted`` calls, and the whole structure
is three flat arrays.

Repeat handling follows minimap2: k-mers occurring more than
``max_occ`` times are treated as repeat-masked (they vote for too many
places to be informative) and return no positions.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.apps.chaining import Anchor


def kmer_codes(sequence: Sequence[int], k: int) -> np.ndarray:
    """Pack every k-mer of a 2-bit-coded sequence into int64 codes.

    Returns an array of length ``len(sequence) - k + 1`` (empty when the
    sequence is shorter than ``k``).
    """
    if not 4 <= k <= 31:
        raise ValueError(f"k must be in [4, 31], got {k}")
    arr = np.asarray(sequence, dtype=np.int64)
    if arr.size < k:
        return np.empty(0, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() > 3):
        raise ValueError("k-mer indexing needs 2-bit DNA codes (0..3)")
    n = arr.size - k + 1
    codes = np.zeros(n, dtype=np.int64)
    for offset in range(k):
        codes = (codes << 2) | arr[offset:offset + n]
    return codes


class KmerIndex:
    """Sorted-array k-mer index of one reference genome."""

    def __init__(
        self,
        genome: Sequence[int],
        k: int = 12,
        max_occ: int = 64,
    ) -> None:
        if max_occ < 1:
            raise ValueError(f"max_occ must be >= 1, got {max_occ}")
        self.k = k
        self.max_occ = max_occ
        self.genome = np.asarray(genome, dtype=np.int8)
        if self.genome.size < k:
            raise ValueError(
                f"genome of length {self.genome.size} shorter than k={k}"
            )
        codes = kmer_codes(self.genome, k)
        order = np.argsort(codes, kind="stable")
        self._sorted_codes = codes[order]
        self._positions = order.astype(np.int64)

    def __len__(self) -> int:
        """Number of indexed k-mer positions."""
        return int(self._positions.size)

    def lookup(self, code: int) -> np.ndarray:
        """Genome positions of one k-mer code (ascending).

        Repeat-masked k-mers (more than ``max_occ`` occurrences) return
        an empty array.
        """
        lo = int(np.searchsorted(self._sorted_codes, code, side="left"))
        hi = int(np.searchsorted(self._sorted_codes, code, side="right"))
        if hi - lo > self.max_occ:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._positions[lo:hi])

    def anchors(
        self, read: Sequence[int], max_anchors: int = 128
    ) -> List[Anchor]:
        """Seed anchors of a read against the reference (capped).

        When the raw anchor count exceeds ``max_anchors`` the list is
        evenly subsampled, bounding the O(n²) chaining DP downstream.
        """
        read_codes = kmer_codes(np.asarray(read, dtype=np.int64), self.k)
        anchors: List[Anchor] = []
        for offset in range(read_codes.size):
            for pos in self.lookup(int(read_codes[offset])):
                anchors.append(
                    Anchor(read_pos=offset, ref_pos=int(pos), length=self.k)
                )
        if len(anchors) > max_anchors:
            stride = len(anchors) / max_anchors
            anchors = [
                anchors[int(i * stride)] for i in range(max_anchors)
            ]
        return anchors

    def best_diagonal(
        self, read: Sequence[int], bin_width: int = 16
    ) -> Tuple[int, int]:
        """(diagonal, votes) of the strongest binned diagonal.

        Diagonals (``ref_pos - read_pos``) are binned so noisy long-read
        seeds landing a few bases apart still vote together.  Returns
        ``(0, 0)`` when the read produces no usable seeds.
        """
        read_codes = kmer_codes(np.asarray(read, dtype=np.int64), self.k)
        diagonals: List[int] = []
        for offset in range(read_codes.size):
            for pos in self.lookup(int(read_codes[offset])):
                diagonals.append(int(pos) - offset)
        if not diagonals:
            return 0, 0
        diag_arr = np.asarray(diagonals, dtype=np.int64)
        bins = diag_arr // bin_width
        values, counts = np.unique(bins, return_counts=True)
        winner = int(np.argmax(counts))
        members = diag_arr[bins == values[winner]]
        return int(np.median(members)), int(counts[winner])

    def window(
        self, read_len: int, diagonal: int, padding: int = 32
    ) -> Tuple[int, Tuple[int, ...]]:
        """(start, bases) of the genome window a diagonal selects.

        The window covers the read's projection on the reference plus
        ``padding`` on each side, clamped to the genome.
        """
        start = max(0, diagonal - padding)
        end = min(int(self.genome.size), diagonal + read_len + padding)
        window = tuple(int(b) for b in self.genome[start:end])
        return start, window
