"""Tile dispatchers: where the pipeline's extension stage runs its DP.

The batched GACT tiler (:mod:`repro.pipeline.extend`) is written against
one tiny seam — ``run_tiles(pairs) -> [TileResult]`` — so the same
stitching code can execute tiles on an in-process
:class:`~repro.host.runtime.DeviceRuntime`, a
:class:`~repro.cache.facade.CachedRuntime`, or a remote alignment
service (the shard front door) without byte-level divergence: a tile's
CIGAR is a lossless encoding of its traceback, so expanding it client
side reproduces exactly the moves an in-process run would commit.

``TracingDispatcher`` wraps any of the above and records every tile
request to a JSON-lines file; :mod:`repro.pipeline.trace` turns that
file back into a ``repro loadgen --trace`` workload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, IO, List, Optional, Sequence, Tuple, Union

from repro.core.result import Move, expand_cigar

PathLike = Union[str, Path]
TilePair = Tuple[Sequence[Any], Sequence[Any]]


@dataclass(frozen=True)
class TileResult:
    """One tile's committed-path ingredients.

    ``moves`` excludes ``Move.END`` markers (they carry no sequence
    consumption, so stitching is identical with or without them —
    dropping them here keeps runtime- and service-sourced tiles
    comparable).  ``cached`` is True when the tile was served without
    engine work, the signal the mapping report's hit rate aggregates.
    """

    moves: Tuple[Move, ...]
    score: float
    cached: bool = False


class TileDispatcher:
    """Protocol: execute a wavefront of alignment tiles.

    Implementations must return one :class:`TileResult` per input pair,
    index-aligned, and raise on any failed tile (the pipeline treats a
    failed tile as a failed stage, not a silently dropped read).
    """

    def run_tiles(self, pairs: Sequence[TilePair]) -> List[TileResult]:
        """Align every (query, reference) tile; index-aligned results."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (default: nothing to release)."""


class RuntimeTileDispatcher(TileDispatcher):
    """Run tiles on an in-process runtime (cached or bare).

    ``runtime`` is anything with the :meth:`DeviceRuntime.run` contract;
    a :class:`~repro.cache.facade.CachedRuntime` additionally yields
    per-tile cache attribution, which this dispatcher forwards into
    :attr:`TileResult.cached`.
    """

    def __init__(self, runtime: Any, options: Any = None) -> None:
        from repro.host.runtime import RunOptions

        self.runtime = runtime
        self.options = RunOptions() if options is None else options
        spec = getattr(runtime, "spec", None)
        if spec is None:
            spec = getattr(getattr(runtime, "runtime", None), "spec", None)
        #: Kernel id the tiles execute on (for trace records).
        self.kernel_id: int = getattr(spec, "kernel_id", 0)

    def run_tiles(self, pairs: Sequence[TilePair]) -> List[TileResult]:
        """One batched ``run`` call per wavefront."""
        outcome = self.runtime.run(list(pairs), options=self.options)
        if outcome.errors:
            first = outcome.errors[0]
            raise RuntimeError(
                f"tile {first.index} failed: {first.message}"
            )
        cached = getattr(outcome, "cached", None)
        if cached is None:
            cached = [False] * len(outcome.results)
        tiles: List[TileResult] = []
        for result, hit in zip(outcome.results, cached):
            assert result is not None and result.alignment is not None
            tiles.append(
                TileResult(
                    moves=tuple(
                        m for m in result.alignment.moves
                        if m is not Move.END
                    ),
                    score=float(result.score),
                    cached=bool(hit),
                )
            )
        return tiles


class ServiceTileDispatcher(TileDispatcher):
    """Run tiles through an alignment service client.

    Works with both :class:`~repro.service.client.AlignmentClient` (TCP)
    and :class:`~repro.service.client.InProcClient` — anything exposing
    ``submit(kernel_id, query, reference) -> slot`` with a blocking
    ``slot.result(timeout)``.  The whole wavefront is submitted before
    the first result is awaited, so the service batcher sees the tiles
    together and can coalesce duplicates.
    """

    def __init__(
        self,
        client: Any,
        kernel_id: int,
        result_timeout: float = 120.0,
    ) -> None:
        self.client = client
        self.kernel_id = kernel_id
        self.result_timeout = result_timeout

    def run_tiles(self, pairs: Sequence[TilePair]) -> List[TileResult]:
        """Submit the wavefront, then collect in submission order."""
        slots = [
            self.client.submit(self.kernel_id, tuple(q), tuple(r))
            for q, r in pairs
        ]
        tiles: List[TileResult] = []
        for slot in slots:
            response = slot.result(timeout=self.result_timeout)
            if not response.ok:
                raise RuntimeError(
                    f"tile request {response.request_id} rejected: "
                    f"{response.status.value} {response.error}"
                )
            tiles.append(
                TileResult(
                    moves=expand_cigar(response.cigar),
                    score=float(response.score),
                    cached=bool(response.cached),
                )
            )
        return tiles

    def close(self) -> None:
        """Close the underlying client connection."""
        self.client.close()


class TracingDispatcher(TileDispatcher):
    """Record every tile request while delegating to another dispatcher.

    Each tile becomes one JSON line ``{"kernel", "query", "reference"}``
    in submission order — exactly the shape
    :func:`repro.pipeline.trace.read_trace` replays through
    ``repro loadgen --trace``.
    """

    def __init__(self, inner: TileDispatcher, path: PathLike) -> None:
        self.inner = inner
        self.path = Path(path)
        self._handle: Optional[IO[str]] = open(self.path, "w")
        self._records = 0

    @property
    def kernel_id(self) -> int:
        """Kernel id of the wrapped dispatcher."""
        return getattr(self.inner, "kernel_id", 0)

    @property
    def records(self) -> int:
        """Tile requests recorded so far."""
        return self._records

    def run_tiles(self, pairs: Sequence[TilePair]) -> List[TileResult]:
        """Record the wavefront, then delegate."""
        assert self._handle is not None, "trace already closed"
        for query, reference in pairs:
            self._handle.write(
                json.dumps(
                    {
                        "kernel": self.kernel_id,
                        "query": [int(b) for b in query],
                        "reference": [int(b) for b in reference],
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            self._records += 1
        return self.inner.run_tiles(pairs)

    def close(self) -> None:
        """Flush the trace file and close the wrapped dispatcher."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.inner.close()
