"""`map_flowcell`: the whole-genome read-mapping pipeline, end to end.

Wires chunked FASTQ ingest → :class:`~repro.pipeline.stages.SeedChainStage`
→ :class:`~repro.pipeline.stages.ExtendStage` (GACT tiles through a
:class:`~repro.pipeline.dispatch.TileDispatcher`) → streaming SAM
emission, all inside a bounded-queue :class:`repro.api.Pipeline`.  At no
point does the flowcell, the alignment set, or the SAM output exist in
memory at once: reads enter in chunks, at most
``queue_bound × (stages + 1)`` chunks are in flight, and records leave
through a :class:`~repro.data.sam.SamWriter` as they finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.api.stage import Pipeline, PipelineReport
from repro.data.fastq import iter_fastq_chunks
from repro.data.sam import SamWriter
from repro.pipeline.dispatch import (
    RuntimeTileDispatcher,
    TileDispatcher,
    TracingDispatcher,
)
from repro.pipeline.index import KmerIndex
from repro.pipeline.stages import ExtendStage, SeedChainStage

PathLike = Union[str, Path]

#: Kernel the tile dispatcher runs by default (global linear — the only
#: start rule GACT tiling admits).
TILE_KERNEL_ID = 1


@dataclass(frozen=True)
class MapReport:
    """Everything a mapping run measured, bench-artifact ready."""

    reads: int
    mapped: int
    unmapped: int
    seeded: int
    tiles: int
    tile_cache_hits: int
    trace_records: int
    pipeline: PipelineReport

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds of the pipeline run."""
        return self.pipeline.elapsed_s

    @property
    def reads_per_sec(self) -> float:
        """End-to-end mapping throughput."""
        if self.pipeline.elapsed_s <= 0:
            return 0.0
        return self.reads / self.pipeline.elapsed_s

    @property
    def tile_hit_rate(self) -> float:
        """Fraction of tiles served without engine work."""
        return self.tile_cache_hits / self.tiles if self.tiles else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``BENCH_pipeline.json`` payload core)."""
        return {
            "reads": self.reads,
            "mapped": self.mapped,
            "unmapped": self.unmapped,
            "seeded": self.seeded,
            "tiles": self.tiles,
            "tile_cache_hits": self.tile_cache_hits,
            "tile_cache_hit_rate": round(self.tile_hit_rate, 4),
            "trace_records": self.trace_records,
            "elapsed_s": round(self.elapsed_s, 3),
            "reads_per_sec": round(self.reads_per_sec, 3),
            "dropped_chunks": self.pipeline.dropped,
            "stages": {
                s.name: s.to_dict() for s in self.pipeline.stages
            },
        }


def build_tile_runtime(
    tile_size: int = 128,
    n_pe: int = 32,
    backend: str = "compiled",
    cache: Any = None,
) -> Any:
    """A runtime sized for GACT tiles (optionally cache-fronted).

    Returns a :class:`~repro.host.runtime.DeviceRuntime` on the global
    tile kernel, wrapped in a :class:`~repro.cache.facade.CachedRuntime`
    when a :class:`~repro.cache.facade.CacheStack` is given — pass the
    same stack to successive runs to measure warm-over-cold speedups.
    """
    from repro.host.runtime import DeviceRuntime
    from repro.kernels import get_kernel
    from repro.synth.compiler import LaunchConfig

    runtime = DeviceRuntime(
        get_kernel(TILE_KERNEL_ID),
        LaunchConfig(
            n_pe=n_pe, max_query_len=tile_size, max_ref_len=tile_size
        ),
        backend=backend,
    )
    if cache is None:
        return runtime
    from repro.cache.facade import CachedRuntime

    return CachedRuntime(runtime, cache)


def map_flowcell(
    fastq_path: PathLike,
    genome: Sequence[int],
    out_sam: PathLike,
    chunk_size: int = 16,
    queue_bound: int = 4,
    k: int = 12,
    max_occ: int = 64,
    padding: int = 32,
    min_chain_score: float = 24.0,
    tile_size: int = 128,
    overlap: int = 32,
    min_identity: float = 0.55,
    n_pe: int = 32,
    backend: str = "compiled",
    cache: Any = None,
    dispatcher: Optional[TileDispatcher] = None,
    trace_path: Optional[PathLike] = None,
    reference_name: str = "ref",
) -> MapReport:
    """Map a FASTQ flowcell against ``genome``, streaming SAM to disk.

    ``dispatcher`` overrides where tiles execute (e.g. a
    :class:`~repro.pipeline.dispatch.ServiceTileDispatcher` aimed at the
    shard front door); the pipeline takes ownership and closes it on
    completion.  ``cache`` is an optional
    :class:`~repro.cache.facade.CacheStack` for the default in-process
    dispatcher.  ``trace_path`` records every tile request for
    ``repro loadgen --trace`` replay.
    """
    index = KmerIndex(genome, k=k, max_occ=max_occ)
    if dispatcher is None:
        dispatcher = RuntimeTileDispatcher(
            build_tile_runtime(
                tile_size=tile_size, n_pe=n_pe,
                backend=backend, cache=cache,
            )
        )
    tracer: Optional[TracingDispatcher] = None
    if trace_path is not None:
        tracer = TracingDispatcher(dispatcher, trace_path)
        dispatcher = tracer
    seed = SeedChainStage(
        index,
        padding=padding,
        min_chain_score=min_chain_score,
    )
    extend = ExtendStage(
        dispatcher,
        tile_size=tile_size,
        overlap=overlap,
        min_identity=min_identity,
    )
    pipeline = Pipeline([seed, extend], queue_bound=queue_bound)
    with SamWriter(out_sam, reference_name, len(genome)) as writer:
        def sink(chunk: Any) -> None:
            for item in chunk:
                writer.write(item.name, item.sequence, item.hit,
                             mapq=item.mapq)

        report = pipeline.run(
            iter_fastq_chunks(fastq_path, chunk_size), sink=sink
        )
        reads = writer.records_written
    return MapReport(
        reads=reads,
        mapped=extend.mapped,
        unmapped=extend.unmapped,
        seeded=seed.seeded,
        tiles=extend.tiles,
        tile_cache_hits=extend.cached_tiles,
        trace_records=tracer.records if tracer is not None else 0,
        pipeline=report,
    )
