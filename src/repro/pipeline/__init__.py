"""Streaming whole-genome read mapping (chunked FASTQ → SAM).

The production face of the repo's device model: a bounded-memory,
backpressured pipeline that seeds reads against a
:class:`~repro.pipeline.index.KmerIndex`, GACT-extends them in
read-batched tile wavefronts through any
:class:`~repro.pipeline.dispatch.TileDispatcher` (in-process runtime,
cached runtime, or the shard service front door), and streams SAM out
as reads finish.  Entry point: :func:`map_flowcell`.
"""

from repro.pipeline.dispatch import (
    RuntimeTileDispatcher,
    ServiceTileDispatcher,
    TileDispatcher,
    TileResult,
    TracingDispatcher,
)
from repro.pipeline.extend import ExtendOutcome, count_matches, extend_batch
from repro.pipeline.flow import (
    MapReport,
    TILE_KERNEL_ID,
    build_tile_runtime,
    map_flowcell,
)
from repro.pipeline.index import KmerIndex, kmer_codes
from repro.pipeline.stages import (
    ExtendStage,
    MappedItem,
    SeedChainStage,
    SeedTask,
)
from repro.pipeline.trace import TraceSummary, read_trace, summarize_trace

__all__ = [
    "ExtendOutcome",
    "ExtendStage",
    "KmerIndex",
    "MapReport",
    "MappedItem",
    "RuntimeTileDispatcher",
    "SeedChainStage",
    "SeedTask",
    "ServiceTileDispatcher",
    "TILE_KERNEL_ID",
    "TileDispatcher",
    "TileResult",
    "TraceSummary",
    "TracingDispatcher",
    "build_tile_runtime",
    "count_matches",
    "extend_batch",
    "kmer_codes",
    "map_flowcell",
    "read_trace",
    "summarize_trace",
]
