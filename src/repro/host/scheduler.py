"""Batch scheduling across N_K channels and N_B blocks per channel.

The model mirrors the paper's host design: a batch of alignment jobs is
split round-robin over ``n_k`` channels (one host thread each); within a
channel, an arbiter hands the next queued job to the first idle block.
Dispatch costs a fixed per-job overhead on the channel (the OpenCL
enqueue), which is what makes many tiny jobs scale worse than few large
ones.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List

#: Channel-side cycles to enqueue one job (OpenCL call + arbiter handshake).
DISPATCH_CYCLES = 64


@dataclass
class AlignmentBatch:
    """A batch of alignment jobs, each given by its block-cycle cost."""

    job_cycles: List[int] = field(default_factory=list)

    def add(self, cycles: int) -> None:
        """Append one job (cycles must come from the cycle model/engine)."""
        if cycles < 1:
            raise ValueError(f"job cycles must be >= 1, got {cycles}")
        self.job_cycles.append(cycles)

    def __len__(self) -> int:
        return len(self.job_cycles)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one batch."""

    makespan_cycles: int
    total_job_cycles: int
    n_jobs: int
    n_blocks: int
    #: Channel cycles spent enqueueing (the modelled host-side queueing
    #: cost, as opposed to block compute) — what the observability layer
    #: reports as the dispatch share of the makespan.
    dispatch_cycles_total: int = 0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across all blocks over the makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.total_job_cycles / (self.makespan_cycles * self.n_blocks)

    @property
    def dispatch_fraction(self) -> float:
        """Modelled queueing share: dispatch cycles over all job cycles."""
        denominator = self.total_job_cycles + self.dispatch_cycles_total
        if denominator == 0:
            return 0.0
        return self.dispatch_cycles_total / denominator

    def throughput(self, frequency_mhz: float) -> float:
        """Batch throughput in alignments per second."""
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        if self.makespan_cycles == 0:
            return 0.0
        return self.n_jobs * frequency_mhz * 1e6 / self.makespan_cycles


class HostScheduler:
    """Round-robin channels, earliest-idle block within each channel."""

    def __init__(self, n_k: int, n_b: int, dispatch_cycles: int = DISPATCH_CYCLES):
        if n_k < 1 or n_b < 1:
            raise ValueError("n_k and n_b must be >= 1")
        if dispatch_cycles < 0:
            raise ValueError("dispatch_cycles must be >= 0")
        self.n_k = n_k
        self.n_b = n_b
        self.dispatch_cycles = dispatch_cycles

    def run(self, batch: AlignmentBatch) -> ScheduleResult:
        """Schedule a batch and report makespan/utilization."""
        if len(batch) == 0:
            return ScheduleResult(0, 0, 0, self.n_k * self.n_b)
        # Per-channel job queues (round-robin split: host thread k gets
        # jobs k, k + n_k, ...).
        queues: List[List[int]] = [
            list(batch.job_cycles[k:: self.n_k]) for k in range(self.n_k)
        ]
        makespan = 0
        for queue in queues:
            # Blocks of this channel as a min-heap of next-idle times.
            blocks = [0] * self.n_b
            heapq.heapify(blocks)
            channel_time = 0  # when the host thread can dispatch next
            for cycles in queue:
                idle_at = heapq.heappop(blocks)
                start = max(idle_at, channel_time + self.dispatch_cycles)
                channel_time = start
                heapq.heappush(blocks, start + cycles)
            makespan = max(makespan, max(blocks))
        return ScheduleResult(
            makespan_cycles=makespan,
            total_job_cycles=sum(batch.job_cycles),
            n_jobs=len(batch),
            n_blocks=self.n_k * self.n_b,
            dispatch_cycles_total=len(batch) * self.dispatch_cycles,
        )
