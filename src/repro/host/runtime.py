"""Device runtime: the host program's user-facing API (Section 4, step 6).

``DeviceRuntime`` bundles what the paper's OpenCL host code does by hand:
it owns a synthesized kernel configuration, accepts batches of sequence
pairs, runs each pair through the functional engine (results) while the
scheduler model accounts for block occupancy (performance), and reports
batch-level throughput and utilization.

``run`` is the single batch entry point and takes one documented
:class:`RunOptions` value for every execution knob:

* ``workers`` fans the functional work across CPU cores through
  :mod:`repro.parallel` — the software mirror of the N_K channel
  fan-out — while the performance model still accounts for the
  *device's* concurrency, and a failing pair becomes a structured error
  record instead of aborting the batch;
* ``timeout`` bounds each pair's wall-clock seconds;
* ``backend`` overrides the runtime's constructed backend for one call
  (backends are bit-identical, so this only moves wall-clock);
* ``batch_exec`` selects the whole-batch fast path — when the backend
  has one (``backend="compiled"``), the serial path hands the entire
  batch to one :func:`repro.backend.compiled_align_batch` sweep instead
  of N per-pair calls, falling back to per-pair execution (and its
  failure isolation) if the sweep raises.

The historical per-knob keyword arguments (``workers=`` / ``timeout=``
/ ``batch_exec=``) keep working for one release through a thin adapter
that emits a ``DeprecationWarning``; the even older ``align_one`` /
``align_batch`` / ``submit`` trio (deprecated since the ``run``
unification) has been deleted.

Execution reports through the current :mod:`repro.obs` recorder: a
``host.run`` span brackets the batch, with child ``host.execute``
(functional work) and ``host.schedule`` (performance model) spans — the
split that separates where wall-clock goes from what the modelled device
would have done.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.result import AlignmentResult
from repro.core.spec import KernelSpec
from repro.host.scheduler import AlignmentBatch, HostScheduler, ScheduleResult
from repro.obs.recorder import get_recorder
from repro.parallel import ParallelExecutor, WorkError
from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize

#: The per-knob keywords the legacy-adapter still accepts on ``run``.
_LEGACY_RUN_KWARGS = ("workers", "timeout", "batch_exec")


@dataclass(frozen=True)
class RunOptions:
    """Every execution knob of one :meth:`DeviceRuntime.run` call.

    ``workers=None`` (the default) keeps the deterministic serial path:
    every pair runs in-process, in order, producing bit-identical
    results.  ``workers > 1`` fans pairs across a process pool; that
    path requires the runtime's spec to be the registered kernel
    (worker processes re-resolve it by id).  ``timeout`` bounds each
    pair's wall-clock seconds.

    ``backend=None`` uses the backend the runtime was constructed with;
    naming one (``"systolic"`` / ``"compiled"``) overrides it for this
    call only — results are bit-identical either way, so the override
    moves wall-clock, never answers.

    ``batch_exec`` selects the whole-batch fast path: ``None`` (the
    default) uses it automatically whenever the effective backend has
    one and the serial path applies; ``False`` forces per-pair
    execution; ``True`` demands a batched backend and raises if there
    is none.
    """

    workers: Optional[int] = None
    timeout: Optional[float] = None
    backend: Optional[str] = None
    batch_exec: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    @property
    def n_workers(self) -> int:
        """The effective process-pool width (``None`` means serial)."""
        return 1 if self.workers is None else self.workers


def _align_pair_task(payload: Tuple, _seed: int) -> AlignmentResult:
    """Picklable per-pair work item for pooled execution.

    Kernels are resolved by id inside the worker because
    :class:`~repro.core.spec.KernelSpec` closures do not pickle; the
    backend travels by name for the same reason.
    """
    from repro.backend import get_backend
    from repro.kernels import get_kernel

    kernel_id, backend, params, n_pe, ii, max_q, max_r, query, reference = payload
    return get_backend(backend)(
        get_kernel(kernel_id), query, reference, params=params,
        n_pe=n_pe, ii=ii, max_query_len=max_q, max_ref_len=max_r,
    )


@dataclass
class BatchOutcome:
    """Results plus the modelled performance of one submitted batch.

    ``results`` is index-aligned with the submitted pairs; a pair whose
    alignment failed holds ``None`` there and a :class:`WorkError` (with
    the matching index) in ``errors``.
    """

    results: List[Optional[AlignmentResult]]
    schedule: ScheduleResult
    clock_mhz: float
    errors: List[WorkError] = field(default_factory=list)

    @property
    def alignments_per_sec(self) -> float:
        """Batch throughput under the schedule model."""
        return self.schedule.throughput(self.clock_mhz)

    @property
    def utilization(self) -> float:
        """Mean block occupancy while draining the batch."""
        return self.schedule.utilization


def resolve_run_options(
    options: Optional[RunOptions], legacy: dict, stacklevel: int = 3
) -> RunOptions:
    """Merge the ``options=`` value with legacy per-knob kwargs.

    The adapter behind the one-release compatibility window: legacy
    keywords build a :class:`RunOptions` (warning once per call site),
    and mixing both spellings is an error rather than a silent
    precedence rule.
    """
    if options is not None and not isinstance(options, RunOptions):
        raise TypeError(
            f"options must be a RunOptions, got {type(options).__name__}"
        )
    if not legacy:
        return options if options is not None else RunOptions()
    unknown = set(legacy) - set(_LEGACY_RUN_KWARGS)
    if unknown:
        raise TypeError(
            f"run() got unexpected keyword argument(s) {sorted(unknown)}; "
            f"supported: options=RunOptions(...) or the deprecated "
            f"{'/'.join(_LEGACY_RUN_KWARGS)}"
        )
    if options is not None:
        raise TypeError(
            "pass either options=RunOptions(...) or the deprecated "
            "workers=/timeout=/batch_exec= keywords, not both"
        )
    warnings.warn(
        "passing workers=/timeout=/batch_exec= to run() is deprecated; "
        "use options=RunOptions(workers=..., timeout=..., "
        "backend=..., batch_exec=...) instead",
        DeprecationWarning, stacklevel=stacklevel,
    )
    return RunOptions(**legacy)


class DeviceRuntime:
    """A deployed kernel: functional alignment + performance accounting."""

    def __init__(
        self,
        spec: KernelSpec,
        config: Optional[LaunchConfig] = None,
        params: Any = None,
        backend: str = "systolic",
        pace: Optional[float] = None,
    ) -> None:
        from repro.backend import get_backend, get_batch_backend

        if pace is not None and pace <= 0:
            raise ValueError(f"pace must be positive, got {pace}")
        self.spec = spec
        self.config = config or LaunchConfig()
        self.params = params if params is not None else spec.default_params
        self.backend = backend
        #: Wall-clock pacing: when set, ``run`` sleeps until the batch
        #: has taken at least ``pace`` x the modelled device time
        #: (``makespan_cycles / fmax``).  This makes a runtime behave
        #: like the device it models — service time scales with N_PE /
        #: N_B and a replica is real, GIL-free parallel capacity (the
        #: sleep releases the GIL) — which is what the autoscale demo
        #: and capacity experiments need from a simulated fleet.
        self.pace = pace
        self._align_fn = get_backend(backend)
        self._batch_fn = get_batch_backend(backend)
        if self._batch_fn is not None:
            # Pre-warm lowering on the construction path (memoized in the
            # compiler cache) so the first request never pays for it;
            # specs outside the compiled surface keep failing lazily at
            # align time, exactly as before.
            from repro.backend import prewarm

            prewarm(spec, self.params)
        self.report: SynthesisReport = synthesize(spec, self.config)
        if not self.report.feasible:
            raise ValueError(
                f"{spec.name} at N_PE={self.config.n_pe} N_B={self.config.n_b} "
                f"N_K={self.config.n_k} does not fit the device: "
                f"{self.report.overflows()}"
            )
        self._scheduler = HostScheduler(self.config.n_k, self.config.n_b)

    # -- the batch entry point ----------------------------------------

    def _backend_fns(self, backend: Optional[str]):
        """(name, align_fn, batch_fn) of the effective backend."""
        if backend is None or backend == self.backend:
            return self.backend, self._align_fn, self._batch_fn
        from repro.backend import get_backend, get_batch_backend

        return backend, get_backend(backend), get_batch_backend(backend)

    def run(
        self,
        pairs: Sequence[Tuple[Sequence[Any], Sequence[Any]]],
        options: Optional[RunOptions] = None,
        **legacy: Any,
    ) -> BatchOutcome:
        """Align a batch with host-side parallelism and failure isolation.

        All execution knobs travel in ``options`` (see
        :class:`RunOptions`); failed pairs surface in ``errors`` with
        their batch index, and surviving pairs are unaffected.  An
        empty batch is a no-op: the scheduler already models it as a
        zero-cycle schedule, so online callers (the service batcher)
        never special-case it.

        The deprecated ``workers=`` / ``timeout=`` / ``batch_exec=``
        keywords still work for one release (with a
        ``DeprecationWarning``) through :func:`resolve_run_options`.
        """
        opts = resolve_run_options(options, legacy)
        started = time.monotonic()
        backend, align_fn, batch_fn = self._backend_fns(opts.backend)
        n_workers = opts.n_workers
        if opts.batch_exec and batch_fn is None:
            raise ValueError(
                f"backend {backend!r} has no batched fast path; "
                f"use batch_exec=False or backend='compiled'"
            )
        use_batch = (
            n_workers == 1
            and opts.timeout is None
            and batch_fn is not None
            and opts.batch_exec is not False
        )
        recorder = get_recorder()
        pairs = list(pairs)
        with recorder.span(
            "host.run", kernel=self.spec.name, pairs=len(pairs),
            workers=n_workers,
        ):
            results: Optional[List[Optional[AlignmentResult]]] = None
            errors: List[WorkError] = []
            with recorder.span("host.execute", pairs=len(pairs)):
                if use_batch:
                    try:
                        results = list(batch_fn(
                            self.spec, pairs, params=self.params,
                            n_pe=self.config.n_pe, ii=self.report.ii,
                            max_query_len=self.config.max_query_len,
                            max_ref_len=self.config.max_ref_len,
                        ))
                        if recorder.enabled:
                            recorder.count("host.batched_fast_path")
                    except Exception:
                        # fall through to the per-pair path, which turns
                        # the failing pair(s) into WorkError records
                        # instead of poisoning the whole batch
                        results = None
                if results is None:
                    executor = ParallelExecutor(
                        workers=n_workers, timeout=opts.timeout
                    )
                    if n_workers == 1:
                        def task(pair, _seed):
                            return self._align_pair(*pair, align_fn=align_fn)

                        batch_result = executor.map(task, pairs)
                    else:
                        from repro.kernels import is_registered

                        if not is_registered(self.spec):
                            raise ValueError(
                                f"parallel submission needs a registered "
                                f"kernel so workers can resolve it by id; "
                                f"{self.spec.name!r} is not kernel "
                                f"#{self.spec.kernel_id} in the registry — "
                                f"use workers=1"
                            )
                        payloads = [
                            (
                                self.spec.kernel_id, backend,
                                self.params,
                                self.config.n_pe, self.report.ii,
                                self.config.max_query_len,
                                self.config.max_ref_len, query, reference,
                            )
                            for query, reference in pairs
                        ]
                        batch_result = executor.map(
                            _align_pair_task, payloads
                        )
                    results = batch_result.values(strict=False)
                    errors = batch_result.errors
            with recorder.span("host.schedule", jobs=len(pairs)):
                batch = AlignmentBatch()
                for result in results:
                    if result is not None:
                        batch.add(result.cycles.total)
                schedule = self._scheduler.run(batch)
            if self.pace is not None and schedule.makespan_cycles > 0:
                modelled_s = (
                    schedule.makespan_cycles / (self.report.fmax_mhz * 1e6)
                )
                remaining = (
                    started + modelled_s * self.pace - time.monotonic()
                )
                if remaining > 0:
                    time.sleep(remaining)
        if recorder.enabled:
            recorder.count("host.pairs", len(pairs))
            recorder.count("host.pair_errors", len(errors))
            recorder.gauge("host.block_utilization", schedule.utilization)
            recorder.gauge("host.dispatch_fraction", schedule.dispatch_fraction)
        return BatchOutcome(
            results=results,
            schedule=schedule,
            clock_mhz=self.report.fmax_mhz,
            errors=errors,
        )

    def _align_pair(
        self,
        query: Sequence[Any],
        reference: Sequence[Any],
        align_fn: Any = None,
    ) -> AlignmentResult:
        """One pair on one block (the serial-path work item)."""
        fn = align_fn if align_fn is not None else self._align_fn
        return fn(
            self.spec, query, reference, params=self.params,
            n_pe=self.config.n_pe, ii=self.report.ii,
            max_query_len=self.config.max_query_len,
            max_ref_len=self.config.max_ref_len,
        )
