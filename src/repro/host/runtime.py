"""Device runtime: the host program's user-facing API (Section 4, step 6).

``DeviceRuntime`` bundles what the paper's OpenCL host code does by hand:
it owns a synthesized kernel configuration, accepts batches of sequence
pairs, runs each pair through the functional engine (results) while the
scheduler model accounts for block occupancy (performance), and reports
batch-level throughput and utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.result import AlignmentResult
from repro.core.spec import KernelSpec
from repro.host.scheduler import AlignmentBatch, HostScheduler, ScheduleResult
from repro.synth.compiler import LaunchConfig, SynthesisReport, synthesize
from repro.systolic.engine import align


@dataclass
class BatchOutcome:
    """Results plus the modelled performance of one submitted batch."""

    results: List[AlignmentResult]
    schedule: ScheduleResult
    clock_mhz: float

    @property
    def alignments_per_sec(self) -> float:
        """Batch throughput under the schedule model."""
        return self.schedule.throughput(self.clock_mhz)

    @property
    def utilization(self) -> float:
        """Mean block occupancy while draining the batch."""
        return self.schedule.utilization


class DeviceRuntime:
    """A deployed kernel: functional alignment + performance accounting."""

    def __init__(
        self,
        spec: KernelSpec,
        config: Optional[LaunchConfig] = None,
        params: Any = None,
    ) -> None:
        self.spec = spec
        self.config = config or LaunchConfig()
        self.params = params if params is not None else spec.default_params
        self.report: SynthesisReport = synthesize(spec, self.config)
        if not self.report.feasible:
            raise ValueError(
                f"{spec.name} at N_PE={self.config.n_pe} N_B={self.config.n_b} "
                f"N_K={self.config.n_k} does not fit the device: "
                f"{self.report.overflows()}"
            )
        self._scheduler = HostScheduler(self.config.n_k, self.config.n_b)

    def align_one(self, query: Sequence[Any], reference: Sequence[Any]) -> AlignmentResult:
        """Align a single pair on one block."""
        return align(
            self.spec, query, reference, params=self.params,
            n_pe=self.config.n_pe, ii=self.report.ii,
            max_query_len=self.config.max_query_len,
            max_ref_len=self.config.max_ref_len,
        )

    def align_batch(
        self, pairs: Sequence[Tuple[Sequence[Any], Sequence[Any]]]
    ) -> BatchOutcome:
        """Align a batch, modelling its dispatch across channels/blocks."""
        if not pairs:
            raise ValueError("batch must contain at least one pair")
        results: List[AlignmentResult] = []
        batch = AlignmentBatch()
        for query, reference in pairs:
            result = self.align_one(query, reference)
            results.append(result)
            batch.add(result.cycles.total)
        schedule = self._scheduler.run(batch)
        return BatchOutcome(
            results=results, schedule=schedule, clock_mhz=self.report.fmax_mhz
        )
