"""Host-side program model (Section 4, step 6).

The paper's host is an OpenCL program that batches sequence pairs, feeds
``N_K`` independent device channels from CPU threads, and lets the
``N_B`` blocks behind each channel's arbiter drain the batch.
:mod:`repro.host.scheduler` reproduces that dispatch structure so device
utilization and batch makespan can be studied without real hardware.
"""

from repro.host.runtime import BatchOutcome, DeviceRuntime, RunOptions
from repro.host.scheduler import AlignmentBatch, HostScheduler, ScheduleResult

__all__ = [
    "AlignmentBatch",
    "HostScheduler",
    "ScheduleResult",
    "DeviceRuntime",
    "BatchOutcome",
    "RunOptions",
]
