"""Recorders: the single runtime-observability interface of the stack.

Every instrumented layer — the systolic engine, the host runtime, the
process-pool executor and the serving path — reports through one small
API instead of layer-local ad-hoc metrics:

* ``span(name, **args)``      — a context manager timing a region;
  spans nest (per thread), forming the trace tree a Chrome trace viewer
  renders;
* ``record_span(...)``        — an explicitly timed span for async
  regions (e.g. request queueing) where a ``with`` block cannot wrap
  the interval;
* ``count(name, amount)``     — a monotonic counter increment;
* ``gauge(name, value)``      — a last-value-wins measurement;
* ``observe(name, value)``    — one histogram observation;
* ``instant(name, **args)``   — a zero-duration marker event.

Three implementations cover the deployment modes:

* :class:`NullRecorder` — every call is a no-op; this is the process
  default, so instrumented hot loops pay only the cost of the calls
  themselves (benchmarked under 5 % on the engine, see
  ``benchmarks/test_obs_overhead.py``);
* :class:`MetricsRecorder` — forwards counters/histograms/gauges to a
  :class:`~repro.obs.metrics.MetricsRegistry` but drops spans; this is
  what the serving core runs with by default (always-on metrics, no
  trace buffer growth);
* :class:`TraceRecorder` — a :class:`MetricsRecorder` that additionally
  keeps a bounded in-memory event buffer (spans, instants, counter
  samples) exportable as Chrome trace-event JSON via
  :mod:`repro.obs.export`.

All timestamps come from ``time.monotonic()`` so spans and deadlines
survive wall-clock adjustments; exported times are relative to the
recorder's construction instant.

The process-global *current recorder* (:func:`get_recorder` /
:func:`set_recorder` / :func:`use_recorder`) is how deep layers find
their recorder without threading one through every signature.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MetricsRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanEvent",
    "TraceRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
]


@dataclass(frozen=True)
class SpanEvent:
    """One recorded event: a span, an instant marker or a counter sample.

    ``kind`` is ``"span"``, ``"instant"`` or ``"counter"``.  Times are
    seconds relative to the recorder's epoch; ``dur_s`` is zero for
    non-span events.  ``span_id``/``parent_id`` encode the per-thread
    nesting tree (``parent_id`` is ``None`` for roots).
    """

    kind: str
    name: str
    ts_s: float
    dur_s: float
    tid: int
    thread_name: str
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    depth: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Layer label: the dotted prefix of the event name."""
        return self.name.split(".", 1)[0]


class _NullSpan:
    """Reusable do-nothing context manager (the disabled-mode span)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """No-op base recorder; also the :class:`NullRecorder` behaviour.

    ``enabled`` tells callers whether span/event recording happens at
    all, so they can skip *computing* expensive span arguments when
    nobody is listening.
    """

    enabled: bool = False

    def span(self, name: str, **args: Any):
        """Context manager timing the enclosed region (no-op here)."""
        return _NULL_SPAN

    def record_span(
        self, name: str, start_s: float, end_s: float, **args: Any
    ) -> None:
        """Record an explicitly timed span (``time.monotonic`` domain)."""

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker event."""

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a monotonic counter."""

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge."""

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        """Record one histogram observation."""

    def events(self) -> List[SpanEvent]:
        """Recorded events, oldest first (empty when not tracing)."""
        return []

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe counters/histograms/gauges summary."""
        return {"counters": {}, "histograms": {}, "gauges": {}}


class NullRecorder(Recorder):
    """The disabled-mode recorder: every operation is a no-op."""


#: Shared process-wide disabled recorder (the default current recorder).
NULL_RECORDER = NullRecorder()


class MetricsRecorder(Recorder):
    """Counters/histograms/gauges onto a registry; spans are dropped.

    The serving core runs with this by default: the always-on metrics
    the dashboards read keep flowing, while the trace buffer (and its
    memory) only exists when a :class:`TraceRecorder` is installed.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._gauges: Dict[str, float] = {}
        self._gauge_lock = threading.Lock()

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the registry counter ``name``."""
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._gauge_lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        """Record ``value`` into the registry histogram ``name``."""
        self.metrics.histogram(name, bounds=bounds).observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """Registry snapshot plus the current gauge values."""
        summary = self.metrics.snapshot()
        with self._gauge_lock:
            summary["gauges"] = dict(sorted(self._gauges.items()))
        return summary


class _SpanHandle:
    """Context manager for one live span of a :class:`TraceRecorder`."""

    __slots__ = ("_recorder", "_name", "_args", "_start", "_id", "_parent",
                 "_depth")

    def __init__(self, recorder: "TraceRecorder", name: str, args: Dict) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args

    def __enter__(self) -> "_SpanHandle":
        rec = self._recorder
        self._id = rec._next_id()
        stack = rec._stack()
        if stack:
            self._parent, self._depth = stack[-1]
            self._depth += 1
        else:
            self._parent, self._depth = None, 0
        stack.append((self._id, self._depth))
        self._start = time.monotonic()
        return self

    def __exit__(self, *_exc) -> bool:
        end = time.monotonic()
        rec = self._recorder
        stack = rec._stack()
        if stack and stack[-1][0] == self._id:
            stack.pop()
        rec._append(SpanEvent(
            kind="span",
            name=self._name,
            ts_s=self._start - rec.epoch_s,
            dur_s=end - self._start,
            tid=threading.get_ident(),
            thread_name=threading.current_thread().name,
            span_id=self._id,
            parent_id=self._parent,
            depth=self._depth,
            args=self._args,
        ))
        return False


class TraceRecorder(MetricsRecorder):
    """A metrics recorder that also keeps a bounded trace-event buffer.

    Spans nest per thread via a thread-local stack, so concurrent
    request threads each build an independent span tree.  The buffer
    holds at most ``max_events`` events; once full, further events are
    dropped and tallied in :attr:`dropped_events` (tracing must never
    grow without bound inside a long-lived server).
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        max_events: int = 100_000,
    ) -> None:
        super().__init__(metrics)
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.epoch_s = time.monotonic()
        self.max_events = max_events
        self.dropped_events = 0
        self._events: List[SpanEvent] = []
        self._events_lock = threading.Lock()
        self._ids = 0
        self._id_lock = threading.Lock()
        self._local = threading.local()

    # -- internals -----------------------------------------------------

    def _stack(self) -> List:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._id_lock:
            self._ids += 1
            return self._ids

    def _append(self, event: SpanEvent) -> None:
        with self._events_lock:
            if len(self._events) >= self.max_events:
                self.dropped_events += 1
                return
            self._events.append(event)

    def _mark(self, kind: str, name: str, ts_s: float, dur_s: float,
              args: Dict) -> None:
        self._append(SpanEvent(
            kind=kind, name=name, ts_s=ts_s, dur_s=dur_s,
            tid=threading.get_ident(),
            thread_name=threading.current_thread().name,
            args=args,
        ))

    # -- recording API -------------------------------------------------

    def span(self, name: str, **args: Any):
        """Open a nesting span; closes (and records) on ``__exit__``."""
        return _SpanHandle(self, name, args)

    def record_span(
        self, name: str, start_s: float, end_s: float, **args: Any
    ) -> None:
        """Record a span from explicit ``time.monotonic()`` endpoints.

        Used for intervals that cross threads (a request's queueing
        time starts on the offering thread and ends on a dispatch
        thread), where a ``with`` block cannot bracket the region.
        Such spans sit outside the per-thread nesting stack.
        """
        self._mark("span", name, start_s - self.epoch_s,
                   max(0.0, end_s - start_s), args)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker at the current instant."""
        self._mark("instant", name, time.monotonic() - self.epoch_s, 0.0, args)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the counter and record a cumulative sample event."""
        counter = self.metrics.counter(name)
        counter.inc(amount)
        self._mark("counter", name, time.monotonic() - self.epoch_s, 0.0,
                   {"value": counter.value})

    # -- introspection -------------------------------------------------

    def events(self) -> List[SpanEvent]:
        """A snapshot copy of the buffered events, oldest first."""
        with self._events_lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop every buffered event (counters/histograms persist)."""
        with self._events_lock:
            self._events.clear()
            self.dropped_events = 0

    def thread_names(self) -> Dict[int, str]:
        """Thread id → name for every thread that recorded an event."""
        names: Dict[int, str] = {}
        for event in self.events():
            names.setdefault(event.tid, event.thread_name)
        return names


# ----------------------------------------------------------------------
# the process-global current recorder
# ----------------------------------------------------------------------

_current: Recorder = NULL_RECORDER
_current_lock = threading.Lock()


def get_recorder() -> Recorder:
    """The process-global current recorder (default: the null recorder)."""
    return _current


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` globally; returns the previous one."""
    global _current
    with _current_lock:
        previous = _current
        _current = recorder
    return previous


@contextlib.contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Scoped :func:`set_recorder`: restores the previous recorder.

    >>> rec = TraceRecorder()
    >>> with use_recorder(rec):
    ...     with get_recorder().span("engine.demo"):
    ...         pass
    >>> [e.name for e in rec.events()]
    ['engine.demo']
    """
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
