"""Trace and metrics exporters.

:func:`chrome_trace` turns a recorder's event buffer into the Chrome
trace-event JSON format (the ``chrome://tracing`` / Perfetto ``.json``
flavour): spans become complete ``"X"`` events, instants become ``"i"``
events, counter samples become ``"C"`` events, and thread-name metadata
events label each row.  Timestamps are microseconds relative to the
recorder's epoch, so a trace of one served request reads as a single
left-anchored timeline across the service, host and engine layers.

:func:`render_text_snapshot` is the plain-text form of a metrics
snapshot — what the server's ``metrics_text`` endpoint answers and what
``repro trace`` prints after a run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.recorder import Recorder

__all__ = ["chrome_trace", "render_text_snapshot", "write_chrome_trace"]

#: Process id used for every event (one process, many threads).
_PID = 0


def chrome_trace(recorder: Recorder) -> Dict[str, Any]:
    """Render a recorder's events as a Chrome trace-event JSON object.

    The result is JSON-safe; a recorder with no buffered events (e.g. a
    ``NullRecorder`` or ``MetricsRecorder``) yields an empty but valid
    trace.
    """
    events: List[Dict[str, Any]] = []
    thread_names: Dict[int, str] = {}
    for event in recorder.events():
        thread_names.setdefault(event.tid, event.thread_name)
        ts_us = event.ts_s * 1e6
        if event.kind == "span":
            args = dict(event.args)
            if event.span_id is not None:
                args["span_id"] = event.span_id
            if event.parent_id is not None:
                args["parent_id"] = event.parent_id
            events.append({
                "ph": "X",
                "name": event.name,
                "cat": event.category,
                "ts": ts_us,
                "dur": event.dur_s * 1e6,
                "pid": _PID,
                "tid": event.tid,
                "args": args,
            })
        elif event.kind == "instant":
            events.append({
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.category,
                "ts": ts_us,
                "pid": _PID,
                "tid": event.tid,
                "args": dict(event.args),
            })
        elif event.kind == "counter":
            events.append({
                "ph": "C",
                "name": event.name,
                "cat": event.category,
                "ts": ts_us,
                "pid": _PID,
                "args": {event.name: event.args.get("value", 0)},
            })
    metadata = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(thread_names.items())
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(recorder: Recorder, path: str) -> Dict[str, Any]:
    """Write :func:`chrome_trace` JSON to ``path``; returns the object."""
    trace = chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace


def render_text_snapshot(snapshot: Dict[str, Any]) -> str:
    """Plain-text rendering of a metrics snapshot.

    One instrument per line, in the spirit of a Prometheus exposition:
    counters as ``name value``, gauges as ``name value``, histograms as
    ``name{stat} value`` for count/mean/p50/p95/p99.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"counter {name} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"gauge {name} {value:.6g}")
    for name, stats in sorted(snapshot.get("histograms", {}).items()):
        lines.append(f"histogram {name} count {stats.get('count', 0)}")
        for stat in ("mean", "min", "max", "p50", "p95", "p99"):
            value = stats.get(stat)
            if value is not None:
                lines.append(f"histogram {name} {stat} {value:.6g}")
    for extra in ("pool", "kernels"):
        if extra in snapshot:
            lines.append(f"{extra} {json.dumps(snapshot[extra], sort_keys=True)}")
    return "\n".join(lines)
