"""Always-on metrics primitives: counters and bucketed histograms.

Every layer of the stack records through a :class:`MetricsRegistry`
(usually via a :mod:`repro.obs.recorder` façade): monotonic counters
(admissions, rejections, flush triggers) and fixed-bucket histograms
(request latency, batch occupancy).  Histograms use geometric bucket
bounds, so recording is O(log buckets) with bounded memory regardless
of traffic — the always-on analogue of the offline harnesses' exact
sample lists — and quantiles (p50/p95/p99) are estimated by linear
interpolation inside the covering bucket.

``snapshot()`` returns a plain JSON-safe dict; ``to_json()`` is the wire
form the server answers ``metrics`` messages with.
"""

from __future__ import annotations

import bisect
import json
import math
import threading
from typing import Dict, List, Optional, Sequence


def geometric_bounds(lo: float, hi: float, count: int) -> List[float]:
    """``count`` geometrically spaced bucket upper bounds over [lo, hi].

    >>> bounds = geometric_bounds(1.0, 100.0, 3)
    >>> [round(b, 3) for b in bounds]
    [1.0, 10.0, 100.0]
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if count < 2:
        raise ValueError("need at least two buckets")
    ratio = (hi / lo) ** (1.0 / (count - 1))
    return [lo * ratio**k for k in range(count)]


class Counter:
    """A monotonically increasing, thread-safe counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Values above the last bound land in an overflow bucket whose
    quantiles clamp to the observed maximum; values below the first
    bound interpolate from zero.
    """

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.bounds = list(bounds) if bounds is not None else geometric_bounds(
            0.01, 120_000.0, 96
        )
        if sorted(self.bounds) != self.bounds:
            raise ValueError("bucket bounds must be ascending")
        self._counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``None`` when empty).

        Interpolates linearly within the covering bucket and clamps the
        estimate to the exact observed [min, max] envelope, so small
        sample counts never report a latency nobody experienced.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return None
            rank = q * self._count
            cumulative = 0.0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max
                    )
                    fraction = (
                        (rank - cumulative) / bucket_count if bucket_count else 0.0
                    )
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
                cumulative += bucket_count
            return self._max

    def snapshot(self) -> Dict[str, Optional[float]]:
        """JSON-safe summary with p50/p95/p99.

        ``buckets`` lists the non-empty cumulative buckets as
        ``[upper_bound, count]`` pairs (the overflow bucket's bound is
        ``null``), ascending.  Two snapshots of the same histogram can
        therefore be *differenced* bucket-by-bucket to recover the
        distribution of a time window — how the autoscale watcher turns
        these process-lifetime histograms into windowed p99 signals.
        """
        with self._lock:
            if self._count == 0:
                return {"count": 0}
            summary = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "buckets": [
                    [
                        self.bounds[index] if index < len(self.bounds)
                        else None,
                        count,
                    ]
                    for index, count in enumerate(self._counts)
                    if count
                ],
            }
        summary["p50"] = self.quantile(0.50)
        summary["p95"] = self.quantile(0.95)
        summary["p99"] = self.quantile(0.99)
        return summary


class MetricsRegistry:
    """Named counters and histograms behind one snapshot call."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, bounds=bounds)
            return self._histograms[name]

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-safe view of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
