"""End-to-end observability: tracing, counters, gauges and histograms.

The paper's back-end is judged by its reports — per-kernel cycle counts,
II, resource and timing breakdowns.  This package is the runtime
equivalent for the software stack: one zero-dependency, thread-safe
recorder interface that the systolic engine, the host runtime, the
process-pool executor and the serving path all report through, so
end-to-end wall-clock can be attributed across every layer.

* :mod:`repro.obs.recorder` — the :class:`Recorder` interface with its
  three modes (:class:`NullRecorder`, :class:`MetricsRecorder`,
  :class:`TraceRecorder`) and the process-global current recorder;
* :mod:`repro.obs.metrics`  — the counter/histogram registry;
* :mod:`repro.obs.export`   — Chrome trace-event JSON and plain-text
  snapshot rendering.

Quickstart::

    from repro import obs

    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        runtime.run(pairs)                      # spans record themselves
    obs.write_chrome_trace(recorder, "trace.json")
"""

from repro.obs.export import (
    chrome_trace,
    render_text_snapshot,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    geometric_bounds,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    SpanEvent,
    TraceRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanEvent",
    "TraceRecorder",
    "chrome_trace",
    "geometric_bounds",
    "get_recorder",
    "render_text_snapshot",
    "set_recorder",
    "use_recorder",
    "write_chrome_trace",
]
