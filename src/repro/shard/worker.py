"""The shard worker: one process, one pool, one private cache tier.

A worker is deliberately boring — it is the *existing* single-process
serving stack, unchanged, run once per shard:

    Deployment.build_pool() → ServiceCore → AlignmentServer on
    (127.0.0.1, 0)

so every semantic the single-process tests pin (deterministic response
encoding, reject-not-drop admission, obs counters) holds inside each
shard by construction.  What the sharding layer adds lives entirely in
the parent: routing, health, aggregation.

Parent ↔ worker control travels over a ``multiprocessing`` pipe:

* worker → parent: ``("ready", port)`` once the TCP server is bound,
  or ``("failed", reason)`` if construction blew up;
* parent → worker: ``"drain"`` — stop accepting, flush the batcher's
  residual work, close the cache journal, exit 0.

``SIGINT`` is ignored in the worker: a Ctrl-C in a terminal hits the
whole foreground process group, and drain must stay coordinated by the
parent so in-flight requests are answered, not severed.
"""

from __future__ import annotations

import signal
import threading
from typing import Any

from repro.shard.deployment import Deployment

#: Control verbs on the parent → worker pipe.
DRAIN = "drain"


def worker_main(
    deployment: Deployment,
    shard_name: str,
    conn: Any,
    host: str = "127.0.0.1",
) -> int:
    """Run one shard until the parent sends :data:`DRAIN` (or hangs up).

    ``deployment`` must already be narrowed to this shard
    (:meth:`~repro.shard.deployment.Deployment.for_shard`), so the cache
    journal lands in the shard's private subdirectory of the shared
    root.  Returns the process exit code (0 = clean drain).
    """
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        from repro.service import AlignmentServer

        # Ready-path prewarm: lower every served kernel before the
        # parent learns our port, so the shard's first request never
        # pays compilation latency (no-op for the systolic backend).
        deployment.prewarm()
        cache = deployment.build_cache()
        core = deployment.build_core(cache=cache).start()
        server = AlignmentServer((host, 0), core)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        conn.send(("failed", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return 1
    server.serve_in_thread()
    conn.send(("ready", server.server_address[1]))
    try:
        while True:
            try:
                verb = conn.recv()
            except EOFError:
                # Parent vanished without draining: shut down anyway so
                # the shard never lingers as an orphan.
                verb = DRAIN
            if verb == DRAIN:
                break
    finally:
        server.close()
        if cache is not None:
            cache.close()
        try:
            conn.send(("stopped", shard_name))
            conn.close()
        except (OSError, BrokenPipeError):
            pass
    return 0


def _entry(deployment: Deployment, shard_name: str, conn: Any) -> None:
    """Picklable process target wrapping :func:`worker_main`'s exit code."""
    raise SystemExit(worker_main(deployment, shard_name, conn))


def start_worker(ctx: Any, deployment: Deployment, shard_name: str):
    """Spawn one worker process; returns ``(process, parent_conn)``.

    ``ctx`` is a ``multiprocessing`` context (``spawn`` by default at
    the manager level: immune to forked-lock hazards from the parent's
    threads, at the cost of a fresh interpreter per shard).
    """
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=_entry,
        args=(deployment.for_shard(shard_name), shard_name, child_conn),
        name=f"repro-shard-{shard_name}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    return process, parent_conn


# Used by tests that run a worker on a plain thread (no process) to
# exercise the control protocol without spawn latency.
def run_inline(deployment: Deployment, shard_name: str, conn: Any) -> threading.Thread:
    """Run :func:`worker_main` on a daemon thread (test aid)."""
    thread = threading.Thread(
        target=worker_main, args=(deployment, shard_name, conn),
        name=f"inline-{shard_name}", daemon=True,
    )
    thread.start()
    return thread
