"""Sharded async serving: an asyncio front door over worker processes.

The single-process service (:mod:`repro.service`) tops out at one GIL:
however fast the compiled backend aligns, one Python process can only
push so many responses per second.  This package scales the serving
tier the same way DP-HLS scales compute — replicate independent units
and route work between them:

* :mod:`repro.shard.ring`      — a consistent-hash ring mapping cache
  fingerprints to shards with minimal remapping on membership change;
* :mod:`repro.shard.router`    — computes the :mod:`repro.cache`
  fingerprint of a request at the front door so routing and caching
  agree on the key;
* :mod:`repro.shard.deployment`— the picklable description of what a
  shard hosts (kernels, sizing, batching, cache, backend), shared by
  the CLI, the front door and every worker;
* :mod:`repro.shard.worker`    — the worker-process entry point: one
  :class:`~repro.service.DevicePool` + private memory cache tier (own
  disk journal under a shared cache root) behind the existing threaded
  JSON-line server;
* :mod:`repro.shard.manager`   — process lifecycle: spawn with a ready
  handshake, graceful drain via a control pipe, exit-code collection;
* :mod:`repro.shard.frontdoor` — the asyncio front door: routes each
  request by fingerprint to a shard link, enforces reject-not-drop
  per-shard in-flight bounds, heartbeats every shard and evicts dead
  ones (remapping the ring), and aggregates per-shard metrics behind
  the ``metrics``/``metrics_text``/``trace`` wire endpoints.

Clients cannot tell the difference: the wire protocol, the
deterministic response encoding and the backpressure semantics are
exactly those of :mod:`repro.service` — a 2-shard deployment answers
byte-identically to the single-process server for the same requests.
"""

from repro.shard.deployment import Deployment
from repro.shard.frontdoor import FrontDoorConfig, ShardServer
from repro.shard.ring import HashRing
from repro.shard.router import FingerprintRouter

__all__ = [
    "Deployment",
    "FingerprintRouter",
    "FrontDoorConfig",
    "HashRing",
    "ShardServer",
]
