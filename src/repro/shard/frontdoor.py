"""The asyncio front door: one acceptor, N worker shards, zero drops.

Architecture (the TAPA composition shape — independent stages joined by
bounded streams):

    client ── asyncio server ──> route by fingerprint ──> ShardLink
                                   (HashRing)               │ bounded
                                                            ▼ in-flight
                                                     worker process
                                                     (pool + cache)

Every client connection is an asyncio task reading JSON lines.  An
``align`` request is fingerprinted with the same :mod:`repro.cache` key
the workers cache under, routed through the consistent-hash ring to a
:class:`ShardLink`, its id rewritten to a front-door-unique one, and
forwarded.  The link's reader task restores the original id on the way
back and writes the response to the owning client — so the
deterministic response payload is byte-identical to what the worker
(and therefore the single-process server) produced.

Backpressure is reject-not-drop at every boundary: a full per-shard
in-flight window, an empty ring, or an unroutable kernel each produce
an immediate ``rejected``/``error`` response; nothing is ever silently
discarded.  Health is active: a heartbeat task pings each shard and
evicts it after consecutive misses (or a dead process), failing its
in-flight requests with explicit errors and remapping the ring so the
next request routes to a survivor.

Control-plane requests (``metrics``/``metrics_text``/``trace``) fan out
to every live shard and come back aggregated: summed counters, merged
histogram envelopes, per-shard detail, ring membership and shard
health — one endpoint for the whole deployment.

:class:`ShardServer` is the synchronous facade the CLI and tests use:
it spawns the workers (via :class:`~repro.shard.manager.ShardManager`),
runs the front door's event loop on a daemon thread, and turns
``close()`` into the full graceful-drain sequence ending in worker exit
codes.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import render_text_snapshot
from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import (
    AlignRequest,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    rejection,
)
from repro.shard.deployment import Deployment
from repro.shard.manager import ShardHandle, ShardManager
from repro.shard.ring import DEFAULT_VNODES, HashRing
from repro.shard.router import FingerprintRouter


@dataclass(frozen=True)
class FrontDoorConfig:
    """Tuning knobs of the front door.

    ``shard_inflight_bound`` is the routed-but-unanswered window per
    shard — the bounded stream between the acceptor stage and a worker
    stage; beyond it requests are rejected (the worker's own admission
    queue provides the second, finer bound).  Heartbeats mark a shard
    dead after ``heartbeat_misses`` consecutive unanswered pings.
    """

    shard_inflight_bound: int = 1024
    heartbeat_interval_s: float = 2.0
    heartbeat_timeout_s: float = 3.0
    heartbeat_misses: int = 2
    control_timeout_s: float = 10.0
    drain_timeout_s: float = 30.0
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        if self.shard_inflight_bound < 1:
            raise ValueError("shard_inflight_bound must be >= 1")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")


class _ClientConn:
    """One connected client: serialized line writes."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.open = True

    async def send(self, payload: bytes) -> None:
        """Write one line; a vanished client is not an error."""
        if not self.open:
            return
        try:
            async with self.lock:
                self.writer.write(payload)
                await self.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            self.open = False


class _Forward:
    """One routed in-flight request awaiting its shard's answer."""

    __slots__ = ("client", "original_id")

    def __init__(self, client: _ClientConn, original_id: str) -> None:
        self.client = client
        self.original_id = original_id


class ShardLink:
    """The front door's connection to one worker shard."""

    def __init__(self, name: str, host: str, port: int) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.up = False
        self.pending: Dict[str, _Forward] = {}
        self.routed_total = 0
        self.answered_total = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._write_lock = asyncio.Lock()
        self._control: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._tasks: List["asyncio.Task[None]"] = []

    async def connect(self) -> None:
        """Open the TCP link and start the reader task."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.up = True

    async def send(self, payload: bytes) -> None:
        """Forward one line to the worker."""
        assert self._writer is not None
        async with self._write_lock:
            self._writer.write(payload)
            await self._writer.drain()

    async def read_loop(self, on_down) -> None:
        """Pump worker lines: results to clients, control to waiters.

        Runs until EOF or error, then reports through ``on_down`` (the
        front door's eviction path) exactly once.
        """
        assert self._reader is not None
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                try:
                    message = decode_line(line)
                except ProtocolError:
                    continue
                message_id = message.get("id")
                if message.get("type") == "result" and message_id is not None:
                    forward = self.pending.pop(message_id, None)
                    if forward is not None:
                        self.answered_total += 1
                        payload = dict(message)
                        payload["id"] = forward.original_id
                        await forward.client.send(encode_line(payload))
                    continue
                waiter = self._control.pop(message_id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(message)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            if self.up:
                await on_down(self, "connection to worker lost")

    async def control_call(
        self, kind: str, message_id: str, timeout: float
    ) -> Dict[str, Any]:
        """Round-trip one control message (``ping``/``metrics``/…)."""
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_event_loop().create_future()
        )
        self._control[message_id] = future
        try:
            await self.send(encode_line({"type": kind, "id": message_id}))
            return await asyncio.wait_for(future, timeout)
        finally:
            self._control.pop(message_id, None)

    async def fail_pending(self, reason: str) -> None:
        """Answer every in-flight request with an explicit error."""
        pending = list(self.pending.values())
        self.pending.clear()
        for forward in pending:
            response = error_response(forward.original_id, reason)
            await forward.client.send(response.to_line())

    def close(self) -> None:
        """Tear the link down (tasks cancelled, socket closed)."""
        self.up = False
        for task in self._tasks:
            task.cancel()
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:
                pass

    def stats(self) -> Dict[str, Any]:
        """JSON-safe link summary."""
        return {
            "name": self.name,
            "port": self.port,
            "up": self.up,
            "in_flight": len(self.pending),
            "routed_total": self.routed_total,
            "answered_total": self.answered_total,
        }


class FrontDoor:
    """The asyncio routing core (loop-thread only; see ShardServer)."""

    def __init__(
        self,
        deployment: Deployment,
        router: FingerprintRouter,
        manager: ShardManager,
        config: Optional[FrontDoorConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.deployment = deployment
        self.router = router
        self.manager = manager
        self.config = config or FrontDoorConfig()
        self.metrics = registry or MetricsRegistry()
        self.ring = HashRing(vnodes=self.config.vnodes)
        self.links: Dict[str, ShardLink] = {}
        self._ids = itertools.count()
        self._server: Optional[asyncio.AbstractServer] = None
        self._accepting = False

    def _next_id(self) -> str:
        return f"fd-{next(self._ids)}"

    # -- lifecycle -----------------------------------------------------

    async def start(
        self, address: Tuple[str, int], handles: List[ShardHandle]
    ) -> Tuple[str, int]:
        """Connect every shard, then bind; returns the bound address."""
        for handle in handles:
            await self.attach(handle)
        self._server = await asyncio.start_server(
            self._handle_client, address[0], address[1]
        )
        self._accepting = True
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def attach(self, handle: ShardHandle) -> None:
        """Link one (newly spawned) shard and put it on the ring."""
        link = ShardLink(handle.name, self.manager.host, handle.port)
        await link.connect()
        loop = asyncio.get_event_loop()
        link._tasks.append(loop.create_task(link.read_loop(self._on_down)))
        link._tasks.append(loop.create_task(self._heartbeat(link)))
        self.links[handle.name] = link
        self.ring.add(handle.name)

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, let in-flight finish, unlink.

        Worker-process drain (and exit-code collection) is the
        manager's synchronous job, done by the caller afterwards.
        """
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = (
            asyncio.get_event_loop().time() + self.config.drain_timeout_s
        )
        while any(link.pending for link in self.links.values()):
            if asyncio.get_event_loop().time() > deadline:
                for link in self.links.values():
                    await link.fail_pending(
                        "front door drain deadline exceeded"
                    )
                break
            await asyncio.sleep(0.02)
        for link in list(self.links.values()):
            link.up = False
            link.close()

    # -- health --------------------------------------------------------

    async def _heartbeat(self, link: ShardLink) -> None:
        """Ping one shard forever; evict it after consecutive misses."""
        misses = 0
        while link.up:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            if not link.up:
                return
            handle = self.manager.get(link.name)
            if handle is not None and not handle.alive:
                await self._on_down(link, "worker process died")
                return
            try:
                self.metrics.counter("frontdoor.heartbeats_total").inc()
                await link.control_call(
                    "ping", self._next_id(), self.config.heartbeat_timeout_s
                )
                misses = 0
            except (asyncio.TimeoutError, ConnectionError, OSError,
                    AssertionError):
                misses += 1
                self.metrics.counter(
                    "frontdoor.heartbeat_misses_total"
                ).inc()
                if misses >= self.config.heartbeat_misses:
                    await self._on_down(
                        link,
                        f"missed {misses} consecutive heartbeats",
                    )
                    return

    async def _on_down(self, link: ShardLink, reason: str) -> None:
        """Evict a dead shard: remap the ring, fail its in-flight."""
        if not link.up:
            return
        link.up = False
        if link.name in self.ring:
            self.ring.remove(link.name)
        self.links.pop(link.name, None)
        self.metrics.counter("frontdoor.shards_evicted_total").inc()
        await link.fail_pending(
            f"shard {link.name} evicted mid-request ({reason}); retry"
        )
        link.close()
        self.manager.evict(link.name)

    # -- client path ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: pump requests until EOF."""
        client = _ClientConn(writer)
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                await self._dispatch(client, line)
        except (ConnectionError, OSError):
            pass
        finally:
            client.open = False
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _dispatch(self, client: _ClientConn, line: bytes) -> None:
        """Route one wire line (data or control plane)."""
        message: Any = None
        try:
            message = decode_line(line)
            kind = message.get("type")
            if kind == "align":
                await self._on_align(client, message)
            elif kind == "ping":
                await client.send(encode_line(
                    {"type": "pong", "id": message.get("id")}
                ))
            elif kind == "metrics":
                await client.send(encode_line({
                    "type": "metrics",
                    "id": message.get("id"),
                    "snapshot": await self.metrics_snapshot(),
                }))
            elif kind == "metrics_text":
                await client.send(encode_line({
                    "type": "metrics_text",
                    "id": message.get("id"),
                    "text": await self.metrics_text(),
                }))
            elif kind == "trace":
                await client.send(encode_line({
                    "type": "trace",
                    "id": message.get("id"),
                    "trace": await self.trace_snapshot(),
                }))
            else:
                raise ProtocolError(f"unknown message type {kind!r}")
        except ProtocolError as exc:
            await client.send(encode_line({
                "type": "result",
                "id": message.get("id") if isinstance(message, dict) else None,
                "status": "error",
                "error": str(exc),
            }))

    async def _on_align(
        self, client: _ClientConn, message: Dict[str, Any]
    ) -> None:
        """Fingerprint, route and forward one alignment request."""
        request = AlignRequest.from_dict(message)
        self.metrics.counter("frontdoor.requests_total").inc()
        if not self._accepting:
            self.metrics.counter("frontdoor.rejected_total").inc()
            await client.send(rejection(
                request.request_id, "service is draining"
            ).to_line())
            return
        if not self.router.supports(request.kernel_id):
            # Mirrors ServiceCore._validate so a misaddressed request
            # reads the same against either serving tier.
            self.metrics.counter("frontdoor.errors_total").inc()
            await client.send(error_response(
                request.request_id,
                f"kernel #{request.kernel_id} is not deployed on this "
                f"service (deployed: {self.router.kernel_ids()})",
            ).to_line())
            return
        fingerprint = self.router.key(
            request.kernel_id, request.query, request.reference
        )
        try:
            shard = self.ring.route(fingerprint)
        except LookupError:
            self.metrics.counter("frontdoor.rejected_total").inc()
            await client.send(rejection(
                request.request_id, "no live shards; retry later"
            ).to_line())
            return
        link = self.links.get(shard)
        if link is None or not link.up:
            self.metrics.counter("frontdoor.rejected_total").inc()
            await client.send(rejection(
                request.request_id, f"shard {shard} is down; retry later"
            ).to_line())
            return
        if len(link.pending) >= self.config.shard_inflight_bound:
            self.metrics.counter("frontdoor.rejected_total").inc()
            await client.send(rejection(
                request.request_id,
                f"shard {shard} in-flight window is full "
                f"({self.config.shard_inflight_bound}); retry later",
            ).to_line())
            return
        forward_id = self._next_id()
        link.pending[forward_id] = _Forward(client, request.request_id)
        payload = request.to_dict()
        payload["id"] = forward_id
        try:
            await link.send(encode_line(payload))
        except (ConnectionError, OSError, AssertionError):
            link.pending.pop(forward_id, None)
            await self._on_down(link, "send to worker failed")
            await client.send(rejection(
                request.request_id, f"shard {shard} went down; retry later"
            ).to_line())
            return
        link.routed_total += 1
        self.metrics.counter("frontdoor.routed_total").inc()

    # -- control-plane aggregation -------------------------------------

    async def _collect(self, kind: str) -> Dict[str, Dict[str, Any]]:
        """Fan one control request out to every live shard."""
        replies: Dict[str, Dict[str, Any]] = {}
        for name, link in sorted(self.links.items()):
            if not link.up:
                continue
            try:
                replies[name] = await link.control_call(
                    kind, self._next_id(), self.config.control_timeout_s
                )
            except (asyncio.TimeoutError, ConnectionError, OSError,
                    AssertionError):
                replies[name] = {"error": f"shard {name} unreachable"}
        return replies

    async def metrics_snapshot(self) -> Dict[str, Any]:
        """Deployment-wide metrics: aggregate + per-shard + topology.

        Counters sum exactly across shards.  Histogram summaries merge
        their exact envelope (count/sum/mean/min/max) — quantiles of
        pre-summarized histograms cannot be combined soundly, so the
        per-shard sections keep the authoritative p50/p95/p99 — plus
        the cumulative bucket counts (summed per bound: shards share
        one geometric bucket grid), which *can* be combined exactly and
        let an autoscale watcher derive windowed quantiles for the
        whole deployment from this one endpoint.
        """
        replies = await self._collect("metrics")
        shard_snapshots = {
            name: reply.get("snapshot", reply)
            for name, reply in replies.items()
        }
        counters: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        buckets: Dict[str, Dict[Optional[float], int]] = {}
        for snapshot in shard_snapshots.values():
            for name, value in snapshot.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, stats in snapshot.get("histograms", {}).items():
                merged = histograms.setdefault(
                    name, {"count": 0, "sum": 0.0}
                )
                merged["count"] += stats.get("count", 0)
                merged["sum"] += stats.get("sum", 0.0)
                for stat, pick in (("min", min), ("max", max)):
                    if stats.get(stat) is not None:
                        merged[stat] = (
                            pick(merged[stat], stats[stat])
                            if stat in merged else stats[stat]
                        )
                summed = buckets.setdefault(name, {})
                for bound, count in stats.get("buckets", []):
                    summed[bound] = summed.get(bound, 0) + count
        for name, merged in histograms.items():
            if merged["count"]:
                merged["mean"] = merged["sum"] / merged["count"]
            if buckets.get(name):
                # None (the overflow bucket) sorts last, finite bounds
                # ascending — the same shape one shard emits.
                merged["buckets"] = [
                    [bound, count]
                    for bound, count in sorted(
                        buckets[name].items(),
                        key=lambda item: (item[0] is None, item[0] or 0.0),
                    )
                ]
        local = self.metrics.snapshot()
        counters.update(local.get("counters", {}))
        return {
            "counters": counters,
            "histograms": histograms,
            "frontdoor": {
                "ring": self.ring.describe(),
                "links": [
                    link.stats() for _, link in sorted(self.links.items())
                ],
                "shards": [
                    handle.describe() for handle in self.manager.handles()
                ],
            },
            "shards": shard_snapshots,
            "kernels": self.router.kernel_ids(),
        }

    async def metrics_text(self) -> str:
        """Aggregate text rendering plus one section per shard."""
        snapshot = await self.metrics_snapshot()
        sections = [render_text_snapshot(snapshot)]
        for name, shard_snapshot in sorted(snapshot["shards"].items()):
            sections.append(f"== {name} ==")
            sections.append(render_text_snapshot(shard_snapshot))
        return "\n".join(sections)

    async def trace_snapshot(self) -> Dict[str, Any]:
        """Chrome trace with every shard's events on one timeline.

        Workers run metrics-only recorders by default, so this is
        usually empty-but-valid; under per-shard tracing the merged
        ``traceEvents`` interleave by their own timestamps.
        """
        replies = await self._collect("trace")
        events: List[Dict[str, Any]] = []
        for reply in replies.values():
            events.extend(reply.get("trace", {}).get("traceEvents", []))
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class ShardServer:
    """Synchronous facade: spawn shards, run the front door, drain.

    The constructor is cheap; :meth:`start` does the heavy lifting
    (kernel synthesis for the router, worker spawn with ready
    handshake, event-loop thread).  ``close()`` runs the full graceful
    drain and returns every worker's exit code — 0 across the board is
    the "clean drain" the CI smoke job asserts.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        deployment: Deployment,
        n_shards: int,
        config: Optional[FrontDoorConfig] = None,
        mp_context: str = "spawn",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.deployment = deployment
        self.n_shards = n_shards
        self.config = config or FrontDoorConfig()
        self.manager = ShardManager(
            deployment, n_shards, mp_context=mp_context
        )
        self._requested_address = address
        self.address: Optional[Tuple[str, int]] = None
        self.frontdoor: Optional[FrontDoor] = None
        self.metrics = registry or MetricsRegistry()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> "ShardServer":
        """Spawn every shard and bind the front door; returns self."""
        router = FingerprintRouter.from_deployment(self.deployment)
        handles = self.manager.spawn_all()
        self.frontdoor = FrontDoor(
            self.deployment, router, self.manager,
            config=self.config, registry=self.metrics,
        )
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="shard-frontdoor", daemon=True
        )
        self._thread.start()
        started.wait()
        try:
            self.address = asyncio.run_coroutine_threadsafe(
                self.frontdoor.start(self._requested_address, handles),
                self._loop,
            ).result(timeout=60.0)
        except Exception:
            self._stop_loop()
            self.manager.kill_all()
            raise
        return self

    def __enter__(self) -> "ShardServer":
        """Context-manager start."""
        return self.start()

    def __exit__(self, *_exc) -> None:
        """Context-manager close (graceful drain)."""
        self.close()

    def _stop_loop(self) -> None:
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None

    def close(self) -> Dict[str, Optional[int]]:
        """Graceful drain; returns worker name → exit code (0 = clean)."""
        if self._closed:
            return {}
        self._closed = True
        if self._loop is not None and self.frontdoor is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self.frontdoor.shutdown(), self._loop
                ).result(timeout=self.config.drain_timeout_s + 10.0)
            except Exception:  # noqa: BLE001 - drain must proceed to reap
                pass
        self._stop_loop()
        return self.manager.drain_all(
            timeout_s=self.config.drain_timeout_s
        )

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Thread-safe aggregate metrics fetch (for the CLI's exit dump)."""
        if self._loop is None or self.frontdoor is None:
            return {"counters": self.metrics.snapshot().get("counters", {})}
        return asyncio.run_coroutine_threadsafe(
            self.frontdoor.metrics_snapshot(), self._loop
        ).result(timeout=30.0)
