"""What one serving deployment hosts, as a picklable value.

A :class:`Deployment` is the single description shared by every party
of a sharded deployment: the CLI builds it from flags, the front door
derives routing fingerprints from it, and each worker process receives
it (over a ``spawn`` pipe, hence *picklable primitives only*) and
builds its own :class:`~repro.service.DevicePool` + serving core from
it.  Keeping one value authoritative is what makes shard-transparency
cheap to guarantee: every shard deploys *exactly* the same kernels at
exactly the same sizing, so any shard produces byte-identical responses
for any request — routing only decides whose cache stays hot.

The builders here are also used by the single-process ``repro serve``
path, so "1 shard" and "no shards" run literally the same construction
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Subdirectory pattern of one shard's disk journal under the cache root.
SHARD_CACHE_SUBDIR = "shard-{name}"


@dataclass(frozen=True)
class Deployment:
    """Everything needed to build one shard's serving stack.

    ``kernel_ids`` name registered kernels (resolved in the worker);
    ``cache_dir`` is the *shared cache root* — each shard journals its
    own key range into a private subdirectory of it, so a re-spawned
    shard warm-starts from disk while concurrent shards never contend
    on one append handle.
    """

    kernel_ids: Tuple[int, ...] = (1,)
    replicas: int = 1
    n_pe: int = 16
    n_b: int = 4
    max_len: int = 256
    max_batch: int = 8
    max_delay_ms: float = 20.0
    queue_bound: int = 256
    backend: str = "systolic"
    cache_dir: Optional[str] = None
    cache_mem_mb: float = 64.0
    pool_workers: int = 1
    params_by_kernel: Dict[int, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kernel_ids:
            raise ValueError("a deployment needs at least one kernel")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")

    # -- derived values ------------------------------------------------

    def shard_cache_dir(self, shard_name: str) -> Optional[str]:
        """Disk-journal directory of one shard (``None`` without cache)."""
        if self.cache_dir is None:
            return None
        return str(Path(self.cache_dir) / SHARD_CACHE_SUBDIR.format(
            name=shard_name
        ))

    def for_shard(self, shard_name: str) -> "Deployment":
        """This deployment with the cache root narrowed to one shard."""
        return replace(self, cache_dir=self.shard_cache_dir(shard_name))

    # -- builders ------------------------------------------------------

    def specs(self):
        """Resolve ``kernel_ids`` to specs, refusing unservable kernels."""
        from repro.kernels import get_kernel

        specs = []
        for kernel_id in self.kernel_ids:
            spec = get_kernel(kernel_id)
            if spec.alphabet.is_struct:
                raise ValueError(
                    f"kernel {spec.name} consumes struct symbols and cannot "
                    f"be served over the JSON-line protocol"
                )
            specs.append(spec)
        return specs

    def launch_config(self):
        """The :class:`~repro.synth.LaunchConfig` every runtime uses."""
        from repro.synth import LaunchConfig

        return LaunchConfig(
            n_pe=self.n_pe, n_b=self.n_b, n_k=1,
            max_query_len=self.max_len, max_ref_len=self.max_len,
        )

    def prewarm(self) -> int:
        """Compile every served kernel now (compiled backend only).

        The worker ready path calls this before announcing its port, so
        the first request a shard sees never pays PE-function lowering
        latency; results land in the process-wide compiler cache that
        every :class:`~repro.host.DeviceRuntime` reuses.  Returns the
        number of kernels warmed (0 for the systolic backend, and
        kernels outside the compiled surface are skipped, not errors).
        """
        if self.backend != "compiled":
            return 0
        from repro.backend import prewarm

        warmed = 0
        for spec in self.specs():
            params = self.params_by_kernel.get(spec.kernel_id)
            if prewarm(spec, params):
                warmed += 1
        return warmed

    def build_cache(self):
        """The shard-private :class:`~repro.cache.CacheStack` (or ``None``)."""
        if self.cache_dir is None:
            return None
        from repro.cache import CacheConfig, CacheStack

        return CacheStack(CacheConfig(
            directory=self.cache_dir,
            memory_bytes=int(self.cache_mem_mb * 1024 * 1024),
        ))

    def build_pool(self, cache: Any = None):
        """A :class:`~repro.service.DevicePool` of this deployment."""
        from repro.host import DeviceRuntime
        from repro.service import DevicePool

        config = self.launch_config()
        runtimes = []
        for spec in self.specs():
            for _ in range(self.replicas):
                runtimes.append(DeviceRuntime(
                    spec, config,
                    params=self.params_by_kernel.get(spec.kernel_id),
                    backend=self.backend,
                ))
        return DevicePool(runtimes, workers=self.pool_workers, cache=cache)

    def build_core(self, cache: Any = None, recorder: Any = None):
        """A started-ready :class:`~repro.service.ServiceCore` (not started)."""
        from repro.service import BatcherConfig, ServiceCore

        return ServiceCore(
            self.build_pool(cache=cache),
            BatcherConfig(
                max_batch=self.max_batch,
                max_delay_ms=self.max_delay_ms,
                max_queue_depth=self.queue_bound,
            ),
            recorder=recorder,
        )
