"""Consistent-hash ring: cache fingerprints → shard names.

Each shard owns many *virtual nodes* — points on a 64-bit ring derived
by hashing ``"name#k"`` — and a key routes to the owner of the first
point at or after the key's own position (wrapping at the top).  The
two properties the serving tier leans on both fall out of that
construction:

* **balance** — with enough virtual nodes per shard (128 by default)
  the arc lengths owned by each shard concentrate around the fair
  share, so random fingerprints spread evenly;
* **minimal remapping** — adding a shard only claims the arcs between
  its new points and their predecessors (keys never move between two
  surviving shards), and removing one only reassigns the arcs it
  owned.  Each shard's memory-tier LRU therefore stays hot for its key
  range across membership changes elsewhere in the ring.

Keys are :mod:`repro.cache` fingerprints (SHA-256 hex): the leading
:data:`PREFIX_HEX_CHARS` characters *are* the ring position — already
uniform, no re-hashing needed.  Non-hex keys fall back to hashing, so
the ring is usable for any string key.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

#: Leading fingerprint characters used as the 64-bit ring position.
PREFIX_HEX_CHARS = 16

#: Default virtual nodes per shard (balance/memory trade-off).
DEFAULT_VNODES = 128

_RING_BITS = 64
_RING_SIZE = 1 << _RING_BITS


def key_point(key: str) -> int:
    """Ring position of a key.

    A hex key (a cache fingerprint) positions by its first
    :data:`PREFIX_HEX_CHARS` characters; anything else is hashed first,
    so arbitrary strings still spread uniformly.
    """
    prefix = key[:PREFIX_HEX_CHARS]
    try:
        point = int(prefix, 16)
    except ValueError:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
    # Short hex keys shift up so "ab" and "ab000..." agree on position.
    return (point << (4 * (PREFIX_HEX_CHARS - len(prefix)))) % _RING_SIZE


def node_point(node: str, replica: int) -> int:
    """Ring position of one virtual node of ``node``."""
    digest = hashlib.sha256(f"{node}#{replica}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named shards.

    Membership operations (:meth:`add` / :meth:`remove`) rebuild the
    sorted point list — they are rare control-plane events; lookups are
    a single binary search.
    """

    def __init__(self, nodes: Tuple[str, ...] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: Dict[str, List[int]] = {}
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------

    def add(self, node: str) -> None:
        """Insert a shard (idempotent is an error: names must be unique)."""
        if not node:
            raise ValueError("shard name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"shard {node!r} is already on the ring")
        self._nodes[node] = [node_point(node, k) for k in range(self.vnodes)]
        self._rebuild()

    def remove(self, node: str) -> None:
        """Evict a shard; its arcs fall to the ring's survivors."""
        if node not in self._nodes:
            raise KeyError(f"shard {node!r} is not on the ring")
        del self._nodes[node]
        self._rebuild()

    def _rebuild(self) -> None:
        """Re-sort the point list after a membership change.

        Colliding points (astronomically unlikely with 64-bit hashes)
        resolve by node-name order, so every process that saw the same
        membership routes identically.
        """
        pairs = sorted(
            (point, node)
            for node, points in self._nodes.items()
            for point in points
        )
        self._points = [point for point, _node in pairs]
        self._owners = [node for _point, node in pairs]

    @property
    def nodes(self) -> List[str]:
        """Current shard names, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        """Number of shards on the ring."""
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        """Whether a shard is on the ring."""
        return node in self._nodes

    # -- routing -------------------------------------------------------

    def route(self, key: str) -> str:
        """Owner of ``key`` (a fingerprint or any string).

        Raises :class:`LookupError` on an empty ring — the caller turns
        that into a reject-not-drop response.
        """
        if not self._points:
            raise LookupError("the ring has no shards")
        return self.route_point(key_point(key))

    def route_point(self, point: int) -> str:
        """Owner of an explicit 64-bit ring position."""
        if not self._points:
            raise LookupError("the ring has no shards")
        index = bisect.bisect_left(self._points, point % _RING_SIZE)
        if index == len(self._points):
            index = 0  # wrap past the highest point to the first
        return self._owners[index]

    # -- introspection -------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (shard names, vnode count, point total)."""
        return {
            "nodes": self.nodes,
            "vnodes": self.vnodes,
            "points": len(self._points),
        }

    def load_split(self, keys: List[str]) -> Dict[str, int]:
        """Histogram of ``keys`` by owning shard (test/diagnostic aid)."""
        split: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            split[self.route(key)] += 1
        return split


def arc_share(ring: HashRing, node: Optional[str] = None) -> Dict[str, float]:
    """Fraction of the 64-bit ring owned by each shard (or one shard).

    The exact stationary load split for uniformly distributed keys —
    what the balance test bounds without needing millions of samples.
    """
    points = ring._points
    owners = ring._owners
    if not points:
        return {}
    shares: Dict[str, float] = {name: 0.0 for name in ring.nodes}
    for index, owner in enumerate(owners):
        previous = points[index - 1] if index > 0 else points[-1] - _RING_SIZE
        shares[owner] += (points[index] - previous) / _RING_SIZE
    if node is not None:
        return {node: shares[node]}
    return shares
