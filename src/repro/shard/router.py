"""Front-door request fingerprinting: the routing key *is* the cache key.

Routing on anything other than the exact :mod:`repro.cache` fingerprint
would defeat the point of sharding by key range — a request would land
on one shard while its cached result lives on another.  So the front
door computes, per deployed kernel, the same
:func:`~repro.cache.fingerprint.runtime_fingerprint` that every worker's
:class:`~repro.cache.CachedRuntime` derives for its runtimes, and folds
each request's sequences in through
:func:`~repro.cache.fingerprint.pair_fingerprint`.  Identical request →
identical fingerprint → identical shard → that shard's memory LRU stays
hot for its key range; and when caching is enabled, the fingerprint the
worker attaches to the response equals the one routing used.

Runtime keys depend on the synthesized initiation interval, so building
a router synthesizes each deployed kernel once (the same work every
worker performs when constructing its runtimes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache.fingerprint import pair_fingerprint, runtime_fingerprint
from repro.shard.deployment import Deployment


class FingerprintRouter:
    """Per-kernel runtime keys + per-request pair fingerprints."""

    def __init__(self, runtime_keys: Dict[int, str]) -> None:
        if not runtime_keys:
            raise ValueError("a router needs at least one deployed kernel")
        self.runtime_keys = dict(runtime_keys)

    @classmethod
    def from_deployment(cls, deployment: Deployment) -> "FingerprintRouter":
        """Derive the runtime key of every kernel in a deployment.

        Matches :class:`~repro.cache.CachedRuntime` exactly: spec
        surface, effective params (deployment override or the spec
        default), ``n_pe``, the synthesized ``ii`` and the deployed
        length maxima.
        """
        from repro.synth import synthesize

        config = deployment.launch_config()
        keys: Dict[int, str] = {}
        for spec in deployment.specs():
            params = deployment.params_by_kernel.get(spec.kernel_id)
            if params is None:
                params = spec.default_params
            report = synthesize(spec, config)
            keys[spec.kernel_id] = runtime_fingerprint(
                spec, params, config.n_pe, report.ii,
                config.max_query_len, config.max_ref_len,
            )
        return cls(keys)

    # -- lookup --------------------------------------------------------

    def kernel_ids(self) -> List[int]:
        """Deployed kernel ids, ascending (mirrors the pool's view)."""
        return sorted(self.runtime_keys)

    def supports(self, kernel_id: int) -> bool:
        """Whether requests for ``kernel_id`` can be routed."""
        return kernel_id in self.runtime_keys

    def key(
        self,
        kernel_id: int,
        query: Sequence,
        reference: Sequence,
    ) -> str:
        """Content-addressed fingerprint of one request."""
        try:
            runtime_key = self.runtime_keys[kernel_id]
        except KeyError:
            raise KeyError(
                f"kernel #{kernel_id} is not deployed "
                f"(deployed: {self.kernel_ids()})"
            ) from None
        return pair_fingerprint(runtime_key, query, reference)
