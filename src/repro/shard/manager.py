"""Shard process lifecycle: spawn, ready handshake, drain, reap.

The :class:`ShardManager` owns the worker *processes*; the front door
owns their *connections*.  Separating the two keeps each side simple —
the manager blocks on pipes and ``Process.join`` (plain threads-and-
processes code), while the front door stays a pure asyncio program that
only ever asks the manager for facts (ports, liveness) or actions
(drain, kill) through small thread-safe calls.

Spawning uses the ``spawn`` multiprocessing context by default: the
parent runs an asyncio loop plus client threads, and forking a threaded
process can deadlock the child on locks held mid-fork.  ``fork`` can be
requested (``mp_context="fork"``) when startup latency matters more
than that hazard.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.shard.deployment import Deployment
from repro.shard.worker import DRAIN, start_worker

#: How long one worker may take to report ready (synthesis + bind).
DEFAULT_READY_TIMEOUT_S = 60.0


class ShardSpawnError(RuntimeError):
    """A worker failed to come up (construction error or timeout)."""


@dataclass
class ShardHandle:
    """One live worker: process, control pipe and bound port."""

    name: str
    process: Any
    conn: Any
    port: int
    spawned_at: float = field(default_factory=time.monotonic)
    drained: bool = False

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.is_alive()

    @property
    def exit_code(self) -> Optional[int]:
        """The worker's exit code (``None`` while running)."""
        return self.process.exitcode

    def describe(self) -> Dict[str, Any]:
        """JSON-safe health summary."""
        return {
            "name": self.name,
            "port": self.port,
            "alive": self.alive,
            "exit_code": self.exit_code,
            "uptime_s": time.monotonic() - self.spawned_at,
        }


class ShardManager:
    """Spawns and reaps the worker processes of one deployment."""

    def __init__(
        self,
        deployment: Deployment,
        n_shards: int,
        mp_context: str = "spawn",
        host: str = "127.0.0.1",
        ready_timeout_s: float = DEFAULT_READY_TIMEOUT_S,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.deployment = deployment
        self.n_shards = n_shards
        self.host = host
        self.ready_timeout_s = ready_timeout_s
        self._ctx = multiprocessing.get_context(mp_context)
        self._handles: Dict[str, ShardHandle] = {}
        self._lock = threading.Lock()

    @staticmethod
    def shard_name(index: int) -> str:
        """Canonical shard name (stable across restarts, keys the ring)."""
        return f"shard-{index:02d}"

    # -- spawn ---------------------------------------------------------

    def spawn(self, name: str) -> ShardHandle:
        """Start one worker and block until its ready handshake."""
        process, conn = start_worker(self._ctx, self.deployment, name)
        deadline = time.monotonic() + self.ready_timeout_s
        while not conn.poll(0.05):
            if time.monotonic() > deadline:
                process.terminate()
                raise ShardSpawnError(
                    f"{name} did not report ready within "
                    f"{self.ready_timeout_s:.0f}s"
                )
            if not process.is_alive():
                raise ShardSpawnError(
                    f"{name} died during startup "
                    f"(exit code {process.exitcode})"
                )
        status, value = conn.recv()
        if status != "ready":
            process.join(timeout=5.0)
            raise ShardSpawnError(f"{name} failed to start: {value}")
        handle = ShardHandle(name=name, process=process, conn=conn, port=value)
        with self._lock:
            self._handles[name] = handle
        return handle

    def spawn_all(self) -> List[ShardHandle]:
        """Start every shard of the deployment (``shard-00`` … ``shard-NN``).

        Workers start concurrently — a ``spawn`` interpreter boot plus
        kernel synthesis is the per-shard critical path, so serializing
        them would make ``--shards 8`` pay it eight times.
        """
        names = [self.shard_name(index) for index in range(self.n_shards)]
        results: Dict[str, Any] = {}

        def boot(name: str) -> None:
            try:
                results[name] = self.spawn(name)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                results[name] = exc

        threads = [
            threading.Thread(target=boot, args=(name,), daemon=True)
            for name in names
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        failures = [
            value for value in results.values() if isinstance(value, Exception)
        ]
        if failures:
            self.kill_all()
            raise ShardSpawnError("; ".join(str(f) for f in failures))
        return [results[name] for name in names]

    # -- introspection -------------------------------------------------

    def handles(self) -> List[ShardHandle]:
        """Live handle list (snapshot)."""
        with self._lock:
            return list(self._handles.values())

    def get(self, name: str) -> Optional[ShardHandle]:
        """Handle of one shard, if it is (still) managed."""
        with self._lock:
            return self._handles.get(name)

    # -- teardown ------------------------------------------------------

    def evict(self, name: str) -> None:
        """Forget a dead shard (kill it first if somehow still alive)."""
        with self._lock:
            handle = self._handles.pop(name, None)
        if handle is None:
            return
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def drain_all(self, timeout_s: float = 30.0) -> Dict[str, Optional[int]]:
        """Gracefully drain every worker; returns name → exit code.

        Sends :data:`~repro.shard.worker.DRAIN` to each worker, joins
        with a shared deadline, and escalates to ``terminate`` for any
        straggler (whose exit code then reflects the kill).
        """
        handles = self.handles()
        for handle in handles:
            if handle.alive and not handle.drained:
                try:
                    handle.conn.send(DRAIN)
                    handle.drained = True
                except (OSError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + timeout_s
        codes: Dict[str, Optional[int]] = {}
        for handle in handles:
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            codes[handle.name] = handle.process.exitcode
            try:
                handle.conn.close()
            except OSError:
                pass
        with self._lock:
            self._handles.clear()
        return codes

    def kill_all(self) -> None:
        """Terminate every worker immediately (startup-failure path)."""
        for handle in self.handles():
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        with self._lock:
            self._handles.clear()
