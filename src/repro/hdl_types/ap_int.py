"""Fixed-width integer types modelled on Vitis HLS ``ap_int``/``ap_uint``.

A type object is immutable and hashable; it carries no value.  Values are
plain Python integers that the type quantizes into its representable range
using either two's-complement wrap-around (the hardware default) or
saturation (``AP_SAT``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Overflow(enum.Enum):
    """Overflow handling mode, mirroring Vitis ``AP_WRAP``/``AP_SAT``."""

    WRAP = "wrap"
    SATURATE = "saturate"


@dataclass(frozen=True)
class ApIntType:
    """A ``width``-bit integer type, signed or unsigned.

    Parameters
    ----------
    width:
        Total number of bits (must be >= 1).
    signed:
        Two's-complement when ``True`` (``ap_int``), unsigned otherwise
        (``ap_uint``).
    overflow:
        What :meth:`quantize` does with out-of-range values.
    """

    width: int
    signed: bool = True
    overflow: Overflow = Overflow.WRAP

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.signed and self.width < 2 and self.overflow is Overflow.SATURATE:
            # A 1-bit signed saturating type can only hold {-1, 0}; allowed,
            # but worth validating the range logic below never divides by 0.
            pass

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def in_range(self, value: int) -> bool:
        """Whether ``value`` is representable without overflow."""
        return self.min_value <= value <= self.max_value

    def quantize(self, value: int) -> int:
        """Map an arbitrary integer into this type's range.

        Wrap mode reproduces two's-complement truncation to ``width`` bits;
        saturate mode clamps to the representable extremes.
        """
        value = int(value)
        if self.in_range(value):
            return value
        if self.overflow is Overflow.SATURATE:
            return max(self.min_value, min(self.max_value, value))
        span = 1 << self.width
        wrapped = value & (span - 1)
        if self.signed and wrapped >= (1 << (self.width - 1)):
            wrapped -= span
        return wrapped

    def quantize_array(self, values):
        """Vectorized :meth:`quantize` over a float64 NumPy array.

        Bit-identical to mapping :meth:`quantize` over the elements, for
        any value whose magnitude is exactly representable in float64
        (always true for the <= 32-bit types kernels use: every
        intermediate is far inside the 2**53 integer window).  Returns
        float64 so the compiled wavefront backend can keep one working
        dtype; the scalar path's ``int()`` truncation-toward-zero becomes
        ``np.trunc``.
        """
        import numpy as np

        values = np.trunc(np.asarray(values, dtype=np.float64))
        in_range = (values >= self.min_value) & (values <= self.max_value)
        if bool(np.all(in_range)):
            return values
        if self.overflow is Overflow.SATURATE:
            out = np.clip(values, self.min_value, self.max_value)
        else:
            span = 1 << self.width
            wrapped = values.astype(np.int64) & (span - 1)
            if self.signed:
                high = wrapped >= (1 << (self.width - 1))
                wrapped = np.where(high, wrapped - span, wrapped)
            out = wrapped.astype(np.float64)
        return np.where(in_range, values, out)

    def sentinel_low(self) -> int:
        """A safe "-infinity" for max-objective recurrences.

        Half the minimum so that adding one gap penalty cannot underflow the
        type — the same idiom hand-written RTL uses for boundary cells.
        """
        return self.min_value // 2

    def sentinel_high(self) -> int:
        """A safe "+infinity" for min-objective recurrences."""
        return self.max_value // 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = "ap_int" if self.signed else "ap_uint"
        return f"{base}<{self.width}>"


def ap_int(width: int, overflow: Overflow = Overflow.WRAP) -> ApIntType:
    """Shorthand for a signed :class:`ApIntType` (Vitis ``ap_int<W>``)."""
    return ApIntType(width=width, signed=True, overflow=overflow)


def ap_uint(width: int, overflow: Overflow = Overflow.WRAP) -> ApIntType:
    """Shorthand for an unsigned :class:`ApIntType` (Vitis ``ap_uint<W>``)."""
    return ApIntType(width=width, signed=False, overflow=overflow)
