"""Fixed-point types modelled on Vitis HLS ``ap_fixed<W, I>``.

``width`` is the total number of bits and ``int_width`` the number of bits
left of the binary point (including the sign bit when signed).  Values are
plain Python floats quantized onto the ``2**-(width - int_width)`` grid.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.hdl_types.ap_int import ApIntType, Overflow


class Rounding(enum.Enum):
    """Quantisation mode, mirroring Vitis ``AP_RND``/``AP_TRN``.

    ``ROUND`` snaps to the nearest grid point (ties away from zero via
    Python's ``round``); ``TRUNCATE`` drops fraction bits toward negative
    infinity — the cheaper hardware, and Vitis HLS's default.
    """

    ROUND = "round"      # AP_RND
    TRUNCATE = "trunc"   # AP_TRN


@dataclass(frozen=True)
class ApFixedType:
    """A fixed-point type with ``width`` total bits, ``int_width`` integer bits."""

    width: int
    int_width: int
    signed: bool = True
    overflow: Overflow = Overflow.SATURATE
    rounding: Rounding = Rounding.ROUND

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if not 0 <= self.int_width <= self.width:
            raise ValueError(
                f"int_width must be in [0, width], got {self.int_width} "
                f"with width {self.width}"
            )

    @property
    def frac_bits(self) -> int:
        """Number of bits right of the binary point."""
        return self.width - self.int_width

    @property
    def resolution(self) -> float:
        """The smallest representable increment."""
        return 2.0 ** -self.frac_bits

    @property
    def _raw_type(self) -> ApIntType:
        return ApIntType(self.width, signed=self.signed, overflow=self.overflow)

    @property
    def min_value(self) -> float:
        """Smallest representable value."""
        return self._raw_type.min_value * self.resolution

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return self._raw_type.max_value * self.resolution

    def to_raw(self, value: float) -> int:
        """Quantize to the underlying integer representation."""
        scaled = float(value) / self.resolution
        if self.rounding is Rounding.TRUNCATE:
            raw = math.floor(scaled)
        else:
            raw = round(scaled)
        return self._raw_type.quantize(raw)

    def from_raw(self, raw: int) -> float:
        """Convert an underlying integer representation back to a float."""
        return raw * self.resolution

    def quantize(self, value: float) -> float:
        """Snap an arbitrary real value onto the representable grid."""
        return self.from_raw(self.to_raw(value))

    def quantize_array(self, values):
        """Vectorized :meth:`quantize` over a float64 NumPy array.

        Bit-identical to the scalar path: ``resolution`` is an exact power
        of two (so the pre-scale is exact), ``math.floor`` == ``np.floor``,
        and Python's ``round`` and ``np.round`` both round half to even.
        """
        import numpy as np

        scaled = np.asarray(values, dtype=np.float64) / self.resolution
        if self.rounding is Rounding.TRUNCATE:
            raw = np.floor(scaled)
        else:
            raw = np.round(scaled)
        return self._raw_type.quantize_array(raw) * self.resolution

    def in_range(self, value: float) -> bool:
        """Whether ``value`` lies within the representable range."""
        return self.min_value <= value <= self.max_value

    def sentinel_low(self) -> float:
        """A safe "-infinity" that survives one more subtraction."""
        return self.min_value / 2.0

    def sentinel_high(self) -> float:
        """A safe "+infinity" that survives one more addition."""
        return self.max_value / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = "ap_fixed" if self.signed else "ap_ufixed"
        return f"{base}<{self.width},{self.int_width}>"
