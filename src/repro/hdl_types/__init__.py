"""Arbitrary-precision hardware number types.

DP-HLS kernels declare their score, traceback-pointer and index data types
using Vitis HLS ``ap_int``/``ap_uint``/``ap_fixed`` templates.  This package
emulates those types in Python: each *type object* describes a bit-width and
signedness plus an overflow mode, and quantizes plain Python numbers onto the
representable grid exactly the way the hardware datapath would.

The simulator stores values as plain ``int``/``float`` and applies the type's
:meth:`~repro.hdl_types.ap_int.ApIntType.quantize` after every processing
element evaluation, so overflow and precision behaviour match a fixed-width
datapath while keeping the inner loop fast.
"""

from repro.hdl_types.ap_fixed import ApFixedType, Rounding
from repro.hdl_types.ap_int import ApIntType, Overflow, ap_int, ap_uint
from repro.hdl_types.width import bits_for_range, bits_for_states

__all__ = [
    "ApFixedType",
    "ApIntType",
    "Overflow",
    "Rounding",
    "ap_int",
    "ap_uint",
    "bits_for_range",
    "bits_for_states",
]
