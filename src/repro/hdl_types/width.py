"""Bit-width helpers used when sizing traceback pointers and indices."""

from __future__ import annotations


def bits_for_states(n_states: int) -> int:
    """Minimum bits needed to encode ``n_states`` distinct states.

    >>> bits_for_states(1)
    1
    >>> bits_for_states(4)
    2
    >>> bits_for_states(5)
    3
    """
    if n_states < 1:
        raise ValueError(f"n_states must be >= 1, got {n_states}")
    if n_states == 1:
        return 1
    return (n_states - 1).bit_length()


def bits_for_range(low: int, high: int) -> int:
    """Minimum bits for a signed/unsigned integer range ``[low, high]``.

    Returns the width of the narrowest two's-complement (if ``low < 0``) or
    unsigned (otherwise) integer that represents every value in the range.
    """
    if low > high:
        raise ValueError(f"empty range [{low}, {high}]")
    if low >= 0:
        return max(1, high.bit_length())
    width = 1
    while not (-(1 << (width - 1)) <= low and high <= (1 << (width - 1)) - 1):
        width += 1
    return width
