"""Kernel verification harness — the paper's C-simulation step as an API.

``verify_kernel`` runs a kernel over a workload of realistic input pairs
at several PE counts and checks, for every run:

1. systolic output == row-major oracle (score, start cell, moves),
2. recovered tracebacks terminate and stay inside the matrix (the walker
   enforces this; failures surface as exceptions),
3. the engine's cycle total equals the closed-form model.

A :class:`VerificationReport` summarises pass/fail per check so front-end
authors can validate a new kernel with one call (see
``examples/custom_kernel.py`` for the workflow it supports).  With
``workers > 1`` the per-pair checks fan out across a process pool (see
:mod:`repro.parallel`); that path needs the spec to be a registered
kernel, since worker processes re-resolve it by id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.core.spec import KernelSpec
from repro.parallel import ParallelExecutor
from repro.reference.dp_oracle import oracle_align
from repro.synth.throughput import cycles_per_alignment
from repro.systolic.engine import align


@dataclass(frozen=True)
class VerificationFailure:
    """One mismatch found during verification."""

    check: str
    n_pe: int
    pair_index: int
    detail: str


@dataclass
class VerificationReport:
    """Outcome of verifying one kernel over a workload."""

    kernel_name: str
    pairs_checked: int
    runs: int
    failures: List[VerificationFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every run matched the oracle and the cycle model."""
        return not self.failures

    def summary(self) -> str:
        """Human-readable verification summary."""
        status = "PASS" if self.passed else f"FAIL ({len(self.failures)})"
        lines = [
            f"verification of {self.kernel_name}: {status} "
            f"({self.pairs_checked} pairs x {self.runs // max(1, self.pairs_checked)} "
            f"configurations)"
        ]
        for failure in self.failures[:10]:
            lines.append(
                f"  [{failure.check}] n_pe={failure.n_pe} "
                f"pair={failure.pair_index}: {failure.detail}"
            )
        return "\n".join(lines)


def _check_pair(
    spec: KernelSpec,
    index: int,
    query: Sequence[Any],
    reference: Sequence[Any],
    n_pe_values: Sequence[int],
    backend: str = "systolic",
) -> Tuple[int, List[VerificationFailure]]:
    """All checks for one pair at every PE count: (runs, failures)."""
    from repro.backend import get_backend

    align_fn = align if backend == "systolic" else get_backend(backend)
    failures: List[VerificationFailure] = []
    runs = 0
    expected = oracle_align(spec, query, reference)
    for n_pe in n_pe_values:
        runs += 1
        actual = align_fn(spec, query, reference, n_pe=n_pe)
        if not np.isclose(actual.score, expected.score):
            failures.append(
                VerificationFailure(
                    "score", n_pe, index,
                    f"systolic {actual.score} != oracle {expected.score}",
                )
            )
            continue
        if actual.start != expected.start:
            failures.append(
                VerificationFailure(
                    "start_cell", n_pe, index,
                    f"systolic {actual.start} != oracle {expected.start}",
                )
            )
        if spec.has_traceback:
            ours = actual.alignment.moves if actual.alignment else None
            theirs = expected.alignment.moves if expected.alignment else None
            if ours != theirs:
                failures.append(
                    VerificationFailure(
                        "traceback", n_pe, index,
                        "recovered move sequences differ",
                    )
                )
        tb_len = (
            actual.alignment.aligned_length if actual.alignment else 0
        )
        predicted = cycles_per_alignment(
            spec, n_pe, len(query), len(reference), ii=1, tb_path_len=tb_len
        )
        if actual.cycles.total != predicted:
            failures.append(
                VerificationFailure(
                    "cycles", n_pe, index,
                    f"engine {actual.cycles.total} != model {predicted}",
                )
            )
    return runs, failures


def _verify_pair_task(payload: Tuple, _seed: int):
    """Picklable pooled work item: re-resolve the spec by id, check one pair."""
    from repro.kernels import get_kernel

    kernel_id, index, query, reference, n_pe_values, backend = payload
    return _check_pair(
        get_kernel(kernel_id), index, query, reference, n_pe_values, backend
    )


def verify_kernel(
    spec: KernelSpec,
    pairs: Sequence[Tuple[Any, Any]],
    n_pe_values: Sequence[int] = (1, 4, 8),
    workers: int = 1,
    backend: str = "systolic",
) -> VerificationReport:
    """Verify a kernel against the oracle and cycle model on ``pairs``.

    ``backend`` selects the engine under test (``"systolic"`` or
    ``"compiled"``); the oracle and the closed-form cycle model are the
    same either way, so a compiled-backend run checks the full
    bit-identity contract including cycle totals.
    """
    if not pairs:
        raise ValueError("verification needs at least one sequence pair")
    report = VerificationReport(
        kernel_name=spec.name, pairs_checked=len(pairs), runs=0
    )
    if workers == 1:
        checked = [
            _check_pair(spec, index, query, reference, n_pe_values, backend)
            for index, (query, reference) in enumerate(pairs)
        ]
    else:
        from repro.kernels import is_registered

        if not is_registered(spec):
            raise ValueError(
                f"parallel verification needs a registered kernel so "
                f"workers can resolve it by id; {spec.name!r} is not "
                f"kernel #{spec.kernel_id} in the registry — use workers=1"
            )
        payloads = [
            (spec.kernel_id, index, query, reference, tuple(n_pe_values),
             backend)
            for index, (query, reference) in enumerate(pairs)
        ]
        executor = ParallelExecutor(workers=workers)
        checked = executor.map(_verify_pair_task, payloads).values()
    for runs, failures in checked:
        report.runs += runs
        report.failures.extend(failures)
    return report
