"""Core front-end of the DP-HLS reproduction.

This package is the Python equivalent of the paper's *front-end* (Section 4):
everything a kernel author touches lives here — alphabets, scoring parameter
containers, the :class:`~repro.core.spec.KernelSpec` that bundles the
per-cell recurrence (``PE_func``), initialization, and the traceback finite
state machine.  Nothing in here knows about systolic arrays or FPGA
resources; those live in :mod:`repro.systolic` and :mod:`repro.synth`
(the *back-end*).
"""

from repro.core.alphabet import (
    COMPLEX_SIGNAL,
    DNA,
    INT_SIGNAL,
    PROFILE_DNA,
    PROTEIN,
    Alphabet,
)
from repro.core.ops import eq, lookup, select, vabs, vmax, vmin
from repro.core.result import Alignment, AlignmentResult, CycleReport
from repro.core.spec import (
    TB_DIAG,
    TB_END,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Move,
    Objective,
    PEInput,
    PEOutput,
    StartRule,
    TracebackSpec,
)

__all__ = [
    "Alphabet",
    "DNA",
    "PROTEIN",
    "PROFILE_DNA",
    "COMPLEX_SIGNAL",
    "INT_SIGNAL",
    "Alignment",
    "AlignmentResult",
    "CycleReport",
    "KernelSpec",
    "PEInput",
    "PEOutput",
    "Move",
    "Objective",
    "StartRule",
    "EndRule",
    "TracebackSpec",
    "TB_DIAG",
    "TB_UP",
    "TB_LEFT",
    "TB_END",
    "vmax",
    "vmin",
    "select",
    "vabs",
    "eq",
    "lookup",
]
