"""Expression tracing — the third execution mode of ``PE_func``.

:mod:`repro.core.ops` runs kernel recurrences in two modes: functional
simulation (plain numbers) and datapath tracing
(:class:`~repro.core.trace.TracedValue`, which records operator *statistics*
for the synthesis models but deliberately forgets dataflow).  The compiled
wavefront backend (:mod:`repro.backend`) needs the dataflow itself: which
operator feeds which, all the way from the PE inputs to the per-layer
scores and the packed traceback pointer.

:class:`ExprValue` is that third operand kind.  Every arithmetic operator,
comparison and :mod:`~repro.core.ops` helper applied to one builds a
:class:`Node` in a shared expression DAG instead of computing a number.
Running ``pe_func`` once over ``ExprValue`` inputs therefore yields a
complete, closed-form description of the recurrence, which
:mod:`repro.backend.compiler` lowers to a vectorized NumPy function
operating on whole anti-diagonals.

The same rules as datapath tracing apply: kernels must not branch on data
(``__bool__`` raises), must use :func:`~repro.core.ops.select` instead of
``if``, and :func:`~repro.core.ops.eq` instead of ``==``.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

#: Node operators understood by the backend emitter.  ``in`` nodes carry a
#: source string (``up[0]``, ``qry``, ``p['match']``, ...); ``gather`` nodes
#: index a parameter table with const/int or symbol operands.
_BINOPS = ("add", "sub", "mul", "lt", "le", "gt", "ge", "eq",
           "maximum", "minimum")
_UNOPS = ("abs", "neg")


class ExprError(TypeError):
    """An operation the compiled backend cannot lower."""


class Node:
    """One operator (or leaf) of a traced PE expression DAG.

    Nodes are identity-hashed: the emitter assigns one NumPy statement per
    distinct node, so values reused by the recurrence (the running ``best``
    of a compare-select cascade, say) are computed exactly once — the DAG
    *is* the common-subexpression structure.
    """

    __slots__ = ("op", "args", "source")

    def __init__(self, op: str, args: Tuple[Any, ...] = (),
                 source: Optional[str] = None):
        self.op = op
        self.args = args
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "in":
            return f"Node(in:{self.source})"
        if self.op == "const":
            return f"Node(const:{self.args[0]!r})"
        return f"Node({self.op}, {len(self.args)} args)"


def const(value: Any) -> Node:
    """A literal operand (gap penalties folded into the recurrence, tags)."""
    if not isinstance(value, (int, float, bool)):
        raise ExprError(
            f"cannot lower constant of type {type(value).__name__!r}; "
            f"PE functions may only mix expressions with plain numbers"
        )
    return Node("const", (value,))


def as_node(value: Any) -> Node:
    """Coerce an operand (ExprValue or plain number) to a DAG node."""
    if isinstance(value, ExprValue):
        return value.node
    return const(value)


class ExprValue:
    """A symbolic scalar flowing through ``PE_func`` during expr tracing."""

    __slots__ = ("node",)

    def __init__(self, node: Node):
        self.node = node

    # -- construction helpers -----------------------------------------

    @classmethod
    def input(cls, source: str) -> "ExprValue":
        """A PE input leaf (``up[0]``, ``qry``, ``p['match']``, ...)."""
        return cls(Node("in", (), source=source))

    def _bin(self, op: str, other: Any, reflected: bool = False) -> "ExprValue":
        a, b = as_node(other if reflected else self), None
        if reflected:
            b = self.node
        else:
            b = as_node(other)
        return ExprValue(Node(op, (a, b)))

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: Any) -> "ExprValue":
        return self._bin("add", other)

    def __radd__(self, other: Any) -> "ExprValue":
        return self._bin("add", other, reflected=True)

    def __sub__(self, other: Any) -> "ExprValue":
        return self._bin("sub", other)

    def __rsub__(self, other: Any) -> "ExprValue":
        return self._bin("sub", other, reflected=True)

    def __mul__(self, other: Any) -> "ExprValue":
        return self._bin("mul", other)

    def __rmul__(self, other: Any) -> "ExprValue":
        return self._bin("mul", other, reflected=True)

    def __neg__(self) -> "ExprValue":
        return ExprValue(Node("neg", (self.node,)))

    def __abs__(self) -> "ExprValue":
        return ExprValue(Node("abs", (self.node,)))

    # -- comparisons (strict semantics match the scalar engine) --------

    def __lt__(self, other: Any) -> "ExprValue":
        return self._bin("lt", other)

    def __le__(self, other: Any) -> "ExprValue":
        return self._bin("le", other)

    def __gt__(self, other: Any) -> "ExprValue":
        return self._bin("gt", other)

    def __ge__(self, other: Any) -> "ExprValue":
        return self._bin("ge", other)

    # NOTE: __eq__ is deliberately *not* overloaded.  Kernels must use
    # ops.eq() for symbol equality; leaving the default identity semantics
    # keeps ExprValue hashable and catches accidental `==` on data.

    def __bool__(self) -> bool:
        raise ExprError(
            "PE functions must not branch on data values; use "
            "repro.core.ops.select instead of if/and/or"
        )


def select_expr(cond: Any, if_true: Any, if_false: Any) -> ExprValue:
    """Multiplexer node (``np.where`` after lowering)."""
    return ExprValue(Node("where", (as_node(cond), as_node(if_true),
                                    as_node(if_false))))


def fold_expr(values: Tuple[Any, ...], op: str) -> ExprValue:
    """Chained binary max/min — value-equivalent to Python max()/min()."""
    result = as_node(values[0])
    for value in values[1:]:
        result = Node(op, (result, as_node(value)))
    return ExprValue(result)


def abs_expr(value: Any) -> ExprValue:
    """Absolute-value node (``np.abs`` after lowering)."""
    return ExprValue(Node("abs", (as_node(value),)))


def eq_expr(a: Any, b: Any) -> ExprValue:
    """Symbol-equality node (elementwise ``==`` after lowering)."""
    return ExprValue(Node("eq", (as_node(a), as_node(b))))


class ExprTable:
    """A parameter table (ROM) being indexed during expr tracing.

    Supports the partial-indexing protocol :func:`repro.core.ops.lookup`
    uses (``table[i0][i1]...``): each ``__getitem__`` consumes one
    dimension; once every dimension is indexed the result collapses to an
    :class:`ExprValue` gather node.  Runtime indices must be input symbols
    or constants — arbitrary computed indices are outside the supported
    spec surface (see docs/backends.md).
    """

    __slots__ = ("name", "shape", "indices")

    def __init__(self, name: str, shape: Tuple[int, ...],
                 indices: Tuple[Any, ...] = ()):
        self.name = name
        self.shape = shape
        self.indices = indices

    def __len__(self) -> int:
        return self.shape[len(self.indices)]

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, ExprValue):
            node = index.node
            if node.op not in ("in", "const"):
                raise ExprError(
                    f"table {self.name!r} indexed by a computed expression; "
                    f"the compiled backend only supports symbol or constant "
                    f"table indices"
                )
            idx = node
        elif isinstance(index, (int, bool)):
            idx = const(int(index))
        else:
            raise ExprError(
                f"table {self.name!r} indexed by {type(index).__name__!r}"
            )
        consumed = self.indices + (idx,)
        if len(consumed) == len(self.shape):
            return ExprValue(Node("gather", consumed, source=self.name))
        return ExprTable(self.name, self.shape, consumed)


def is_expr(*values: Any) -> bool:
    """Whether any operand is part of an expression trace."""
    return any(isinstance(v, (ExprValue, ExprTable)) for v in values)
