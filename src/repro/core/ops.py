"""Multi-mode operator helpers available inside ``PE_func``.

Kernel recurrences are written once and executed in three modes:

* **functional simulation** — operands are plain Python numbers; the helpers
  behave like ordinary ``max``/``min``/ternary/abs/table-indexing.
* **datapath tracing** — operands are :class:`repro.core.trace.TracedValue`;
  the helpers record the corresponding hardware operators (comparators,
  multiplexers, ROM ports) into the active
  :class:`~repro.core.trace.DatapathGraph`.
* **expression tracing** — operands are :class:`repro.core.expr.ExprValue`;
  the helpers build the dataflow DAG the compiled wavefront backend
  (:mod:`repro.backend`) lowers to vectorized NumPy.

Kernels must use :func:`select` instead of ``if``/ternary expressions on data
values and :func:`eq` instead of ``==`` on symbols, mirroring how HLS code
must express data-dependent choices as multiplexers.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core import expr as _expr
from repro.core.trace import OpKind, TracedTable, TracedValue


def _traced(*values: Any) -> TracedValue:
    """Return the first traced operand, or raise if none exist."""
    for value in values:
        if isinstance(value, TracedValue):
            return value
    raise TypeError("no traced operand")


def _is_traced(*values: Any) -> bool:
    return any(isinstance(v, TracedValue) for v in values)


def select(cond: Any, if_true: Any, if_false: Any) -> Any:
    """Hardware multiplexer: ``if_true`` when ``cond`` else ``if_false``."""
    if _expr.is_expr(cond, if_true, if_false):
        return _expr.select_expr(cond, if_true, if_false)
    if _is_traced(cond, if_true, if_false):
        probe = _traced(cond, if_true, if_false)
        graph = probe.graph
        width = max(
            (v.width for v in (if_true, if_false) if isinstance(v, TracedValue)),
            default=probe.width,
        )
        depth = max(
            (v.depth for v in (cond, if_true, if_false) if isinstance(v, TracedValue)),
            default=0.0,
        )
        out_depth = graph.record(OpKind.MUX, width, depth)
        return TracedValue(graph, width, out_depth)
    return if_true if cond else if_false


def _fold(values: Sequence[Any], plain_fn: Any) -> Any:
    """Reduce with a compare+mux tree (what max/min synthesize to)."""
    if not values:
        raise ValueError("need at least one value")
    if not _is_traced(*values):
        return plain_fn(values)
    result = values[0]
    for value in values[1:]:
        cond = _compare_traced(result, value)
        result = select(cond, result, value)
    return result


def _compare_traced(a: Any, b: Any) -> TracedValue:
    probe = _traced(a, b)
    if isinstance(a, TracedValue):
        return a < b  # records one comparator
    return b < a


def vmax(*values: Any) -> Any:
    """Maximum of the operands (comparator + multiplexer tree)."""
    if _expr.is_expr(*values):
        return _expr.fold_expr(values, "maximum")
    return _fold(values, max)


def vmin(*values: Any) -> Any:
    """Minimum of the operands (comparator + multiplexer tree)."""
    if _expr.is_expr(*values):
        return _expr.fold_expr(values, "minimum")
    return _fold(values, min)


def vabs(value: Any) -> Any:
    """Absolute value (negate + multiplexer in hardware)."""
    if isinstance(value, _expr.ExprValue):
        return _expr.abs_expr(value)
    if isinstance(value, TracedValue):
        depth = value.graph.record(OpKind.ABS, value.width, value.depth)
        return TracedValue(value.graph, value.width, depth)
    return abs(value)


def eq(a: Any, b: Any) -> Any:
    """Symbol equality comparator (kernels must not use ``==`` on data)."""
    if _expr.is_expr(a, b):
        return _expr.eq_expr(a, b)
    if _is_traced(a, b):
        probe = _traced(a, b)
        width = max(
            (v.width for v in (a, b) if isinstance(v, TracedValue)),
            default=probe.width,
        )
        depth = max(
            (v.depth for v in (a, b) if isinstance(v, TracedValue)), default=0.0
        )
        out_depth = probe.graph.record(OpKind.CMP, width, depth)
        return TracedValue(probe.graph, 1, out_depth)
    return a == b


def lookup(table: Any, *indices: Any) -> Any:
    """Index a parameter table (a ROM port per runtime index in hardware)."""
    result = table
    for index in indices:
        if isinstance(result, (TracedTable, _expr.ExprTable)) or isinstance(
            index, (TracedValue, _expr.ExprValue)
        ):
            result = result[index]
        else:
            result = result[int(index)]
    return result
