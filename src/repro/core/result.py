"""Alignment results and cycle accounting.

The systolic engine returns an :class:`AlignmentResult`: the optimal score,
where the traceback started/ended in the DP matrix, the recovered alignment
(when the kernel has a traceback stage) and a :class:`CycleReport` holding
the co-simulation-style cycle breakdown used by the throughput model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class Move(enum.Enum):
    """One traceback step in the DP matrix.

    The matrix has the query along rows (index ``i``) and the reference
    along columns (index ``j``).  Following the paper's listings, moving up
    consumes a query symbol (``AL_DEL``), moving left consumes a reference
    symbol (``AL_INS``) and the diagonal consumes one of each (``AL_MMI``).
    """

    MATCH = "M"   # diagonal: (i-1, j-1)
    DEL = "D"     # up:       (i-1, j)   — gap in the reference
    INS = "I"     # left:     (i,   j-1) — gap in the query
    END = "E"     # terminate the traceback


@dataclass(frozen=True)
class CycleReport:
    """Cycle breakdown of one alignment on one systolic block.

    Mirrors the stages the paper's co-simulation accounts for: sequential
    row/column initialization, per-chunk query loading, the wavefront
    pipeline itself, the reduction locating the traceback start cell, the
    traceback walk, and host-interface overhead.
    """

    init_cycles: int = 0
    load_cycles: int = 0
    compute_cycles: int = 0
    reduction_cycles: int = 0
    traceback_cycles: int = 0
    interface_cycles: int = 0
    wavefronts: int = 0
    ii: int = 1

    @property
    def total(self) -> int:
        """Total cycles from input handoff to result availability."""
        return (
            self.init_cycles
            + self.load_cycles
            + self.compute_cycles
            + self.reduction_cycles
            + self.traceback_cycles
            + self.interface_cycles
        )

    def seconds(self, frequency_hz: float) -> float:
        """Wall-clock latency at a given clock frequency."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.total / frequency_hz


def compress_cigar(moves: Sequence[Move]) -> str:
    """Run-length encode a move sequence into a CIGAR string.

    >>> compress_cigar([Move.MATCH, Move.MATCH, Move.INS])
    '2M1I'
    """
    out: List[str] = []
    run_char: Optional[str] = None
    run_len = 0
    for move in moves:
        if move is Move.END:
            continue
        if move.value == run_char:
            run_len += 1
        else:
            if run_char is not None:
                out.append(f"{run_len}{run_char}")
            run_char = move.value
            run_len = 1
    if run_char is not None:
        out.append(f"{run_len}{run_char}")
    return "".join(out)


def expand_cigar(cigar: str) -> Tuple[Move, ...]:
    """Decode a CIGAR string back into its move sequence.

    The exact inverse of :func:`compress_cigar` for END-free paths
    (END is dropped by compression, so round-trips exclude it) — what
    lets a served CIGAR reconstruct the device's traceback losslessly.

    >>> expand_cigar('2M1I')
    (<Move.MATCH: 'M'>, <Move.MATCH: 'M'>, <Move.INS: 'I'>)
    """
    moves: List[Move] = []
    count = 0
    for ch in cigar:
        if ch.isdigit():
            count = count * 10 + int(ch)
            continue
        if count < 1:
            raise ValueError(f"malformed CIGAR {cigar!r}: zero-length run")
        try:
            move = Move(ch)
        except ValueError:
            raise ValueError(
                f"malformed CIGAR {cigar!r}: unknown op {ch!r}"
            ) from None
        moves.extend([move] * count)
        count = 0
    if count:
        raise ValueError(f"malformed CIGAR {cigar!r}: trailing count")
    return tuple(moves)


@dataclass
class Alignment:
    """A recovered alignment path through the DP matrix.

    ``moves`` run from the top-left end of the path to the bottom-right,
    i.e. in sequence order.  ``query_start``/``ref_start`` are 0-based
    offsets of the first aligned symbol; ``query_end``/``ref_end`` are
    exclusive ends.
    """

    moves: Tuple[Move, ...]
    query_start: int
    query_end: int
    ref_start: int
    ref_end: int

    @property
    def cigar(self) -> str:
        """CIGAR representation of the path."""
        return compress_cigar(self.moves)

    @property
    def aligned_length(self) -> int:
        """Number of alignment columns (excluding END)."""
        return sum(1 for m in self.moves if m is not Move.END)

    def pretty(self, query: Sequence, reference: Sequence, letters: str = "ACGT") -> str:
        """Render the alignment as three text rows (query / bars / reference).

        ``letters`` maps integer symbol codes to characters; symbols outside
        the map (e.g. numeric signals) are rendered as ``*``.
        """

        def render(symbol) -> str:
            if isinstance(symbol, int) and 0 <= symbol < len(letters):
                return letters[symbol]
            return "*"

        top: List[str] = []
        mid: List[str] = []
        bot: List[str] = []
        qi, rj = self.query_start, self.ref_start
        for move in self.moves:
            if move is Move.MATCH:
                q, r = render(query[qi]), render(reference[rj])
                top.append(q)
                bot.append(r)
                mid.append("|" if q == r else ".")
                qi += 1
                rj += 1
            elif move is Move.DEL:
                top.append(render(query[qi]))
                bot.append("-")
                mid.append(" ")
                qi += 1
            elif move is Move.INS:
                top.append("-")
                bot.append(render(reference[rj]))
                mid.append(" ")
                rj += 1
        return "\n".join(("".join(top), "".join(mid), "".join(bot)))


@dataclass
class AlignmentResult:
    """Everything one kernel invocation produces.

    ``score`` is the value of the reported scoring layer at the traceback
    start cell (or the reduced optimum for score-only kernels).  ``start``
    and ``end`` are (i, j) cells in the (Q+1)x(R+1) DP matrix — ``start``
    is where the traceback began (bottom/right end of the path).
    """

    score: float
    start: Tuple[int, int]
    end: Tuple[int, int] = (0, 0)
    alignment: Optional[Alignment] = None
    cycles: Optional[CycleReport] = None
    matrix: Optional[object] = None  # np.ndarray when requested

    @property
    def cigar(self) -> str:
        """CIGAR of the alignment ('' for score-only kernels)."""
        return self.alignment.cigar if self.alignment else ""
