"""Sequence alphabets (Section 2.2.1 of the paper).

An :class:`Alphabet` describes the ``char_t`` a kernel consumes: how many
bits one symbol occupies in device memory, whether the symbol is a scalar
code (DNA base, amino acid, quantised current level) or a struct (a complex
sample for DTW, a frequency column for profile alignment), and — for
discrete alphabets — how many distinct symbols exist.

Struct symbols are represented at runtime as plain tuples whose positions
are named by :attr:`Alphabet.fields`; during datapath tracing the same
positions are populated with :class:`~repro.core.trace.TracedValue`
operands of the declared field widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.trace import DatapathGraph, TracedValue


@dataclass(frozen=True)
class Alphabet:
    """Description of one kernel's input symbol type (``char_t``).

    Parameters
    ----------
    name:
        Human-readable identifier.
    storage_bits:
        Bits one symbol occupies in sequence memory on the device.
    size:
        Number of distinct symbols for discrete alphabets (``None`` for
        numeric alphabets such as signals).
    fields:
        ``(field_name, field_bits)`` pairs for struct symbols; empty for
        scalar symbols.
    """

    name: str
    storage_bits: int
    size: int = 0
    fields: Tuple[Tuple[str, int], ...] = ()

    @property
    def is_struct(self) -> bool:
        """Whether symbols are tuples of named components."""
        return bool(self.fields)

    def traced_symbol(self, graph: DatapathGraph) -> Any:
        """Build the symbolic operand a traced ``PE_func`` receives."""
        if not self.is_struct:
            return TracedValue(graph, self.storage_bits)
        return tuple(TracedValue(graph, bits) for _name, bits in self.fields)

    def validate_symbol(self, symbol: Any) -> bool:
        """Lightweight runtime check that ``symbol`` matches the alphabet."""
        if self.is_struct:
            return isinstance(symbol, tuple) and len(symbol) == len(self.fields)
        if self.size:
            return isinstance(symbol, int) and 0 <= symbol < self.size
        return isinstance(symbol, (int, float))


#: 2-bit DNA/RNA bases (A=0, C=1, G=2, T/U=3).
DNA = Alphabet("dna", storage_bits=2, size=4)

#: 3-bit DNA with an explicit gap symbol, used by the PairHMM/Viterbi kernel
#: whose 5x5 emission matrix covers {A, C, G, T, -}.
DNA_WITH_GAP = Alphabet("dna_gap", storage_bits=3, size=5)

#: 5-bit amino-acid codes (20 canonical residues).
PROTEIN = Alphabet("protein", storage_bits=5, size=20)

#: Profile alignment columns: frequencies of {A, C, G, T, gap} at one
#: alignment position, each a 16-bit fixed-point fraction.
PROFILE_DNA = Alphabet(
    "profile_dna",
    storage_bits=5 * 16,
    fields=(("a", 16), ("c", 16), ("g", 16), ("t", 16), ("gap", 16)),
)

#: Complex temporal samples for DTW basecalling: 24-bit fixed-point
#: real and imaginary parts (``ap_fixed<24,12>`` each).
COMPLEX_SIGNAL = Alphabet(
    "complex_signal", storage_bits=48, fields=(("re", 24), ("im", 24))
)

#: Integer-quantised nanopore current levels for sDTW (SquiggleFilter uses
#: 8-bit normalised samples).
INT_SIGNAL = Alphabet("int_signal", storage_bits=8)

#: Convenience index for tests and the kernel registry.
STANDARD_ALPHABETS = {
    alpha.name: alpha
    for alpha in (DNA, DNA_WITH_GAP, PROTEIN, PROFILE_DNA, COMPLEX_SIGNAL, INT_SIGNAL)
}

DNA_LETTERS = "ACGT"
PROTEIN_LETTERS = "ARNDCQEGHILKMFPSTWYV"


def encode_dna(sequence: str) -> Tuple[int, ...]:
    """Encode an ACGT string into 2-bit codes (T and U both map to 3)."""
    table = {"A": 0, "C": 1, "G": 2, "T": 3, "U": 3}
    try:
        return tuple(table[ch] for ch in sequence.upper())
    except KeyError as exc:
        raise ValueError(f"not a DNA base: {exc.args[0]!r}") from None


def decode_dna(codes: Any) -> str:
    """Decode 2-bit codes back into an ACGT string."""
    return "".join(DNA_LETTERS[c] for c in codes)


def encode_protein(sequence: str) -> Tuple[int, ...]:
    """Encode a protein string into 5-bit amino-acid codes."""
    table = {ch: i for i, ch in enumerate(PROTEIN_LETTERS)}
    try:
        return tuple(table[ch] for ch in sequence.upper())
    except KeyError as exc:
        raise ValueError(f"not a canonical amino acid: {exc.args[0]!r}") from None


def decode_protein(codes: Any) -> str:
    """Decode 5-bit amino-acid codes back into a protein string."""
    return "".join(PROTEIN_LETTERS[c] for c in codes)
