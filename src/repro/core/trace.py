"""Datapath tracing for PE functions.

The HLS compiler derives a kernel's logic resources, initiation interval and
achievable clock frequency from the structure of the user's ``PE_func``.  We
reproduce that step by *tracing*: the function is executed once with
:class:`TracedValue` operands whose arithmetic operators record every
adder, comparator, multiplier, multiplexer and ROM access into a
:class:`DatapathGraph`, together with an abstract logic depth.

The graph is consumed by :mod:`repro.synth.resources` (operator counts ×
bit-widths → LUT/FF/DSP) and :mod:`repro.synth.timing` (critical-path depth →
initiation interval and Fmax).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class OpKind(enum.Enum):
    """The operator classes the resource/timing models distinguish."""

    ADD = "add"          # adders and subtractors
    MUL = "mul"          # multipliers (mapped to DSP blocks)
    CMP = "cmp"          # magnitude/equality comparators
    MUX = "mux"          # 2:1 multiplexers (select / max / min selection)
    ABS = "abs"          # absolute value (negate + mux)
    ROM = "rom"          # table lookup (substitution matrices, emissions)


#: Abstract propagation delay of each operator class, in "logic levels".
#: These are relative numbers: a ripple/carry-lookahead add is the unit,
#: a multiplier costs several levels, a mux half of one.
OP_DEPTH: Dict[OpKind, float] = {
    OpKind.ADD: 1.0,
    OpKind.MUL: 3.0,
    OpKind.CMP: 1.0,
    OpKind.MUX: 0.5,
    OpKind.ABS: 1.5,
    OpKind.ROM: 1.0,
}


@dataclass
class DatapathGraph:
    """Accumulated statistics of one traced ``PE_func`` evaluation."""

    #: (kind, width) -> number of operator instances
    op_counts: Counter = field(default_factory=Counter)
    #: deepest path (in abstract logic levels) through any produced value
    critical_depth: float = 0.0
    #: operand-width pairs of every multiplier (sized individually for DSPs)
    mults: list = field(default_factory=list)

    def record(self, kind: OpKind, width: int, in_depth: float) -> float:
        """Register one operator; returns the depth at its output."""
        self.op_counts[(kind, width)] += 1
        out_depth = in_depth + OP_DEPTH[kind]
        if out_depth > self.critical_depth:
            self.critical_depth = out_depth
        return out_depth

    def count(self, kind: OpKind) -> int:
        """Total instances of one operator class across all widths."""
        return sum(n for (k, _w), n in self.op_counts.items() if k is kind)

    def width_weighted_count(self, kind: OpKind) -> int:
        """Sum of (instances × bit-width) for one operator class."""
        return sum(n * w for (k, w), n in self.op_counts.items() if k is kind)

    def multiplier_instances(self) -> Tuple[Tuple[int, int], ...]:
        """Operand-width pairs (wa, wb) of every multiplier instance."""
        return tuple(self.mults)


def _operand_width(value: Any, default: int) -> int:
    if isinstance(value, TracedValue):
        return value.width
    return default


def _operand_depth(value: Any) -> float:
    if isinstance(value, TracedValue):
        return value.depth
    return 0.0


class TracedValue:
    """A symbolic operand flowing through a traced ``PE_func``.

    Supports the arithmetic and comparison operators kernels are allowed to
    use.  Comparisons yield a 1-bit :class:`TracedValue` suitable for
    :func:`repro.core.ops.select`.
    """

    __slots__ = ("graph", "width", "depth")

    def __init__(self, graph: DatapathGraph, width: int, depth: float = 0.0):
        self.graph = graph
        self.width = width
        self.depth = depth

    # -- helpers ----------------------------------------------------------
    def _binary(self, other: Any, kind: OpKind, out_width: int = 0) -> "TracedValue":
        width = max(self.width, _operand_width(other, self.width))
        depth = max(self.depth, _operand_depth(other))
        out_depth = self.graph.record(kind, width, depth)
        return TracedValue(self.graph, out_width or width, out_depth)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: Any) -> "TracedValue":
        return self._binary(other, OpKind.ADD)

    __radd__ = __add__

    def __sub__(self, other: Any) -> "TracedValue":
        return self._binary(other, OpKind.ADD)

    __rsub__ = __sub__

    def __mul__(self, other: Any) -> "TracedValue":
        self.graph.mults.append(
            (self.width, _operand_width(other, self.width))
        )
        return self._binary(other, OpKind.MUL)

    __rmul__ = __mul__

    def __neg__(self) -> "TracedValue":
        out_depth = self.graph.record(OpKind.ADD, self.width, self.depth)
        return TracedValue(self.graph, self.width, out_depth)

    # -- comparisons (all produce a 1-bit condition) -----------------------
    def _compare(self, other: Any) -> "TracedValue":
        return self._binary(other, OpKind.CMP, out_width=1)

    def __lt__(self, other: Any) -> "TracedValue":
        return self._compare(other)

    def __le__(self, other: Any) -> "TracedValue":
        return self._compare(other)

    def __gt__(self, other: Any) -> "TracedValue":
        return self._compare(other)

    def __ge__(self, other: Any) -> "TracedValue":
        return self._compare(other)

    # NOTE: __eq__/__ne__ stay identity comparisons so TracedValue remains
    # hashable; kernels must use repro.core.ops.eq for symbol equality.

    def __bool__(self) -> bool:
        raise TypeError(
            "PE functions must not branch on data values; use "
            "repro.core.ops.select(cond, a, b) so the datapath stays "
            "synthesizable (HLS maps it to a multiplexer)."
        )


class TracedTable:
    """A ROM standing in for a parameter matrix during tracing.

    Indexing with a plain integer descends a dimension (compile-time
    constant index → just wiring); indexing with a :class:`TracedValue`
    is a runtime lookup and is recorded as a ROM access.
    """

    def __init__(self, graph: DatapathGraph, shape: Tuple[int, ...], width: int):
        if not shape:
            raise ValueError("TracedTable needs at least one dimension")
        self.graph = graph
        self.shape = shape
        self.width = width

    def __getitem__(self, index: Any) -> Any:
        rest = self.shape[1:]
        if isinstance(index, TracedValue):
            depth = self.graph.record(OpKind.ROM, self.width, index.depth)
            if rest:
                return TracedTable(self.graph, rest, self.width)
            return TracedValue(self.graph, self.width, depth)
        if rest:
            return TracedTable(self.graph, rest, self.width)
        return TracedValue(self.graph, self.width)

    def __len__(self) -> int:
        return self.shape[0]
