"""Kernel specification — the DP-HLS front-end contract.

A :class:`KernelSpec` is the Python equivalent of the six front-end
customization steps in Section 4 of the paper:

1. data types and parameters  → ``alphabet``, ``score_type``, ``n_layers``,
   ``params_type``/``default_params``, ``tb_ptr_bits``, ``tb_states``,
   ``banding``
2. row/column initialization  → ``init_row`` / ``init_col``
3. the PE function            → ``pe_func``
4. the traceback strategy     → ``traceback`` + ``tb_transition``
5. parallelism (N_PE/N_B/N_K) → :class:`LaunchConfig` (runtime, not spec)
6. host-side program          → :mod:`repro.host`

Everything the back-end (:mod:`repro.systolic`, :mod:`repro.synth`) does is
derived from this object; kernel authors never touch the back-end.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from repro.core.alphabet import Alphabet
from repro.core.result import Move
from repro.core.trace import DatapathGraph, TracedTable, TracedValue
from repro.hdl_types import ApFixedType, ApIntType

#: Standard traceback pointer encodings shared by all kernels.  Kernels with
#: richer pointers (affine extension flags, two-piece layers) pack extra bits
#: above these two.
TB_DIAG = 0
TB_UP = 1
TB_LEFT = 2
TB_END = 3

ScoreType = Union[ApIntType, ApFixedType]


class Objective(enum.Enum):
    """Whether the recurrence keeps the maximum or minimum (Section 2.2.2d)."""

    MAXIMIZE = "max"
    MINIMIZE = "min"


class StartRule(enum.Enum):
    """Where the traceback path starts (Section 2.2.3)."""

    BOTTOM_RIGHT = "bottom_right"          # global
    GLOBAL_MAX = "global_max"              # local
    LAST_ROW_MAX = "last_row_max"          # semi-global
    LAST_ROW_OR_COL_MAX = "last_row_or_col_max"  # overlap


class EndRule(enum.Enum):
    """Where the traceback path terminates."""

    TOP_LEFT = "top_left"                  # global: walk all the way to (0, 0)
    SENTINEL = "sentinel"                  # local: stop at a TB_END pointer
    TOP_ROW = "top_row"                    # semi-global: stop at row 0
    TOP_ROW_OR_LEFT_COL = "top_row_or_left_col"  # overlap


@dataclass(frozen=True)
class TracebackSpec:
    """Traceback termination condition plus the FSM's initial state.

    Where the traceback *starts* is the kernel's :attr:`KernelSpec.start_rule`
    — score-only kernels need it too (it defines which cell's score is
    reported), so it lives on the spec rather than here.
    """

    end: EndRule
    initial_state: int = 0


@dataclass
class PEInput:
    """Everything one processing element sees when computing cell (i, j).

    ``up``/``diag``/``left`` hold the ``n_layers`` scores of the three
    neighbouring cells; ``qry``/``ref`` are the local query and reference
    symbols (``lc_qry_val``/``lc_ref_val`` in the paper's listings);
    ``params`` is the runtime :class:`ScoringParams` instance.
    """

    up: Tuple[Any, ...]
    diag: Tuple[Any, ...]
    left: Tuple[Any, ...]
    qry: Any
    ref: Any
    params: Any


#: ``PE_func`` returns the cell's per-layer scores plus its traceback pointer.
PEOutput = Tuple[Tuple[Any, ...], int]

#: The traceback FSM: (current state, stored pointer) -> (move, next state).
TBTransition = Callable[[int, int], Tuple[Move, int]]

#: Row/column initializer: (params, length) -> array of shape (length, n_layers).
Initializer = Callable[[Any, int], np.ndarray]


@dataclass(frozen=True)
class KernelSpec:
    """A complete 2-D DP kernel description (one row of Table 1)."""

    name: str
    kernel_id: int
    alphabet: Alphabet
    score_type: ScoreType
    n_layers: int
    objective: Objective
    pe_func: Callable[[PEInput], PEOutput]
    init_row: Initializer
    init_col: Initializer
    default_params: Any
    start_rule: StartRule = StartRule.BOTTOM_RIGHT
    traceback: Optional[TracebackSpec] = None
    tb_transition: Optional[TBTransition] = None
    tb_ptr_bits: int = 2
    tb_states: Tuple[str, ...] = ("MM",)
    score_layer: int = 0
    banding: Optional[int] = None
    description: str = ""
    applications: Tuple[str, ...] = ()
    reference_tools: Tuple[str, ...] = ()
    modifications: str = "N/A"

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ValueError(f"n_layers must be >= 1, got {self.n_layers}")
        if not 0 <= self.score_layer < self.n_layers:
            raise ValueError(
                f"score_layer {self.score_layer} out of range for "
                f"{self.n_layers} layers"
            )
        if self.banding is not None and self.banding < 1:
            raise ValueError(f"banding width must be >= 1, got {self.banding}")
        if (self.traceback is None) != (self.tb_transition is None):
            raise ValueError(
                "traceback and tb_transition must be provided together "
                "(or both omitted for score-only kernels)"
            )
        if self.tb_ptr_bits < 2:
            raise ValueError("traceback pointers need at least 2 bits")

    # ------------------------------------------------------------------
    # objective helpers
    # ------------------------------------------------------------------
    @property
    def has_traceback(self) -> bool:
        """Whether the kernel recovers an alignment path."""
        return self.traceback is not None

    def sentinel(self) -> float:
        """The boundary value standing in for -inf (max) / +inf (min)."""
        if self.objective is Objective.MAXIMIZE:
            return self.score_type.sentinel_low()
        return self.score_type.sentinel_high()

    def better(self, a: float, b: float) -> bool:
        """Whether score ``a`` beats score ``b`` under the objective."""
        if self.objective is Objective.MAXIMIZE:
            return a > b
        return a < b

    def quantize(self, value: float) -> float:
        """Snap a score onto the kernel's hardware number grid."""
        return self.score_type.quantize(value)

    # ------------------------------------------------------------------
    # initialization helpers
    # ------------------------------------------------------------------
    def init_row_scores(self, params: Any, length: int) -> np.ndarray:
        """Evaluate and validate ``init_row`` (cells (0, j), j in [0, length))."""
        return self._init("init_row", self.init_row, params, length)

    def init_col_scores(self, params: Any, length: int) -> np.ndarray:
        """Evaluate and validate ``init_col`` (cells (i, 0), i in [0, length))."""
        return self._init("init_col", self.init_col, params, length)

    def _init(
        self, label: str, fn: Initializer, params: Any, length: int
    ) -> np.ndarray:
        scores = np.asarray(fn(params, length), dtype=float)
        if scores.shape != (length, self.n_layers):
            raise ValueError(
                f"{self.name}: {label} produced shape {scores.shape}, "
                f"expected ({length}, {self.n_layers})"
            )
        return scores

    # ------------------------------------------------------------------
    # datapath tracing (consumed by the synthesis models)
    # ------------------------------------------------------------------
    def trace_datapath(self) -> DatapathGraph:
        """Run ``pe_func`` symbolically and return its datapath graph."""
        graph = DatapathGraph()
        width = self.score_type.width

        def layer_inputs() -> Tuple[TracedValue, ...]:
            return tuple(TracedValue(graph, width) for _ in range(self.n_layers))

        cell = PEInput(
            up=layer_inputs(),
            diag=layer_inputs(),
            left=layer_inputs(),
            qry=self.alphabet.traced_symbol(graph),
            ref=self.alphabet.traced_symbol(graph),
            params=wrap_params(self.default_params, graph, width),
        )
        scores, _ptr = self.pe_func(cell)
        if len(scores) != self.n_layers:
            raise ValueError(
                f"{self.name}: pe_func produced {len(scores)} layers, "
                f"expected {self.n_layers}"
            )
        return graph


def wrap_params(params: Any, graph: DatapathGraph, width: int) -> Any:
    """Build a traced mirror of a ScoringParams dataclass.

    Scalar fields become :class:`TracedValue` operands; array/nested-list
    fields become :class:`TracedTable` ROMs.  The mirror exposes the same
    attribute names so ``pe_func`` code is oblivious to the mode it runs in.
    """
    if not dataclasses.is_dataclass(params):
        raise TypeError(
            f"ScoringParams must be a dataclass instance, got {type(params)!r}"
        )
    mirror: dict = {}
    for f in dataclasses.fields(params):
        value = getattr(params, f.name)
        if isinstance(value, (int, float)):
            mirror[f.name] = TracedValue(graph, width)
        elif isinstance(value, (list, tuple, np.ndarray)):
            shape = np.asarray(value).shape
            mirror[f.name] = TracedTable(graph, shape, width)
        else:
            raise TypeError(
                f"unsupported ScoringParams field {f.name!r} of type "
                f"{type(value)!r}"
            )
    return SimpleNamespace(**mirror)


def band_contains(banding: Optional[int], i: int, j: int) -> bool:
    """Whether matrix cell (i, j) lies inside the fixed band (|i-j| <= W)."""
    if banding is None:
        return True
    return abs(i - j) <= banding
