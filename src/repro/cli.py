"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflow of Fig. 2A plus the experiment harnesses:

* ``list``                      — the kernel registry (Table 1)
* ``align KERNEL QUERY REF``    — functional alignment of two sequences
* ``synth KERNEL``              — Vitis-style synthesis report
* ``rtl KERNEL``                — structural Verilog skeleton (Section 7.2)
* ``verify KERNEL``             — oracle verification of a stock workload
* ``campaign KERNEL|all``       — bulk two-tier verification campaign
* ``fuzz``                      — differential fuzzing of the engine
* ``serve``                     — run the online alignment service (TCP)
* ``loadgen``                   — open-loop Poisson load against a service,
  or closed-loop replay of a recorded tile trace (``--trace``)
* ``map``                       — stream a (simulated) long-read flowcell
  through the read-mapping pipeline to SAM (:mod:`repro.pipeline`)
* ``cache stats|warm|clear``    — inspect, warm or clear the persistent
  content-addressed alignment cache (:mod:`repro.cache`)
* ``trace``                     — serve a traced workload in-process and
  export a Chrome trace (chrome://tracing / Perfetto)
* ``table2`` / ``fig3`` / ``fig4`` / ``fig5`` / ``fig6`` / ``hls`` /
  ``tiling``                    — regenerate an evaluation table/figure

``verify``, ``campaign`` and ``fuzz`` accept ``--workers N`` to fan work
items across a process pool (:mod:`repro.parallel`).
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional

from repro.core.alphabet import encode_dna, encode_protein
from repro.kernels import get_kernel, list_kernels
from repro.synth import LaunchConfig, synthesize
from repro.synth.rtlgen import generate_rtl_skeleton
from repro.systolic import align


def _kernel_arg(value: str):
    """Resolve a kernel id or name, exiting cleanly on an unknown one."""
    try:
        return get_kernel(value)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))


def _encode_for(spec, text: str):
    if spec.alphabet.name in ("dna", "dna_gap"):
        return encode_dna(text)
    if spec.alphabet.name == "protein":
        return encode_protein(text)
    if spec.alphabet.name == "int_signal":
        return tuple(int(v) for v in text.split(","))
    raise SystemExit(
        f"kernel {spec.name} consumes {spec.alphabet.name} symbols; "
        f"the CLI only accepts DNA, protein or comma-separated integer "
        f"signals"
    )


def cmd_list(_args) -> int:
    """List the registered kernels (the Table 1 view)."""
    print(f"{'#':>3} {'name':28s} {'layers':>6} {'objective':>9} "
          f"{'traceback':>9} {'band':>5}  tools")
    for info in list_kernels():
        print(
            f"{info['id']:>3} {info['name']:28s} {info['layers']:>6} "
            f"{info['objective']:>9} "
            f"{'yes' if info['traceback'] else 'no':>9} "
            f"{info['banding'] or '-':>5}  "
            f"{', '.join(info['reference_tools'])}"
        )
    return 0


def cmd_align(args) -> int:
    """Align two sequences on a kernel and print the result."""
    spec = _kernel_arg(args.kernel)
    query = _encode_for(spec, args.query)
    reference = _encode_for(spec, args.reference)
    result = align(spec, query, reference, n_pe=args.n_pe)
    print(f"kernel : #{spec.kernel_id} {spec.name}")
    print(f"score  : {result.score}")
    if result.alignment:
        print(f"cigar  : {result.cigar}")
        print(result.alignment.pretty(
            query, reference,
            letters="ACGT" if spec.alphabet.name.startswith("dna")
            else "ARNDCQEGHILKMFPSTWYV",
        ))
    print(f"cycles : {result.cycles.total}")
    return 0


def cmd_synth(args) -> int:
    """Print the Vitis-style synthesis report for a configuration."""
    spec = _kernel_arg(args.kernel)
    report = synthesize(
        spec,
        LaunchConfig(
            n_pe=args.n_pe, n_b=args.n_b, n_k=args.n_k,
            max_query_len=args.max_len, max_ref_len=args.max_len,
        ),
    )
    print(report.summary())
    return 0 if report.feasible else 1


def cmd_rtl(args) -> int:
    """Emit the structural Verilog skeleton of a kernel."""
    spec = _kernel_arg(args.kernel)
    print(generate_rtl_skeleton(spec, LaunchConfig(n_pe=args.n_pe, n_b=args.n_b)))
    return 0


def cmd_verify(args) -> int:
    """Verify a kernel against the oracle on a stock workload."""
    from repro.experiments.workloads import WORKLOADS
    from repro.verify import verify_kernel

    spec = _kernel_arg(args.kernel)
    workload = WORKLOADS.get(spec.kernel_id)
    if workload is None:
        raise SystemExit(
            f"no stock workload for kernel #{spec.kernel_id}; use "
            f"repro.verify.verify_kernel with your own pairs"
        )
    pairs = [
        (q[: args.length], r[: args.length])
        for q, r in workload.make_pairs(args.pairs, args.seed)
    ]
    report = verify_kernel(
        spec, pairs, n_pe_values=(1, 4, 8), workers=args.workers
    )
    print(report.summary())
    return 0 if report.passed else 1


def cmd_campaign(args) -> int:
    """Run a bulk two-tier verification campaign (one kernel or ``all``)."""
    from repro.campaign import run_campaign, run_full_campaign

    if args.kernel == "all":
        full = run_full_campaign(
            n_pairs=args.pairs, engine_sample=args.engine_sample,
            max_length=args.length, seed=args.seed, workers=args.workers,
            backend=args.backend,
        )
        print(full.summary())
        return 0 if full.passed else 1
    spec = _kernel_arg(args.kernel)
    report = run_campaign(
        spec.kernel_id, n_pairs=args.pairs, engine_sample=args.engine_sample,
        max_length=args.length, seed=args.seed, workers=args.workers,
        backend=args.backend,
    )
    print(report.summary())
    return 0 if report.passed else 1


def cmd_fuzz(args) -> int:
    """Differentially fuzz the systolic engine against its oracles."""
    from repro.verify_fuzz import fuzz

    kernels = [_kernel_arg(k).kernel_id for k in args.kernel] or None
    cases = args.cases
    if args.budget is not None and cases is None:
        cases = 1  # one case per kernel per round; rounds fill the budget
    report = fuzz(
        kernels=kernels,
        cases_per_kernel=cases if cases is not None else 10,
        seed=args.seed,
        workers=args.workers,
        max_len=args.max_len,
        budget_s=args.budget,
    )
    print(report.summary())
    print(f"elapsed: {report.elapsed_s:.1f}s")
    return 0 if report.passed else 1


def _service_pool(kernels, n_pe: int, n_b: int, replicas: int, max_len: int,
                  cache=None, backend: str = "systolic"):
    """Build a :class:`DevicePool` serving the requested kernels."""
    from repro.host import DeviceRuntime
    from repro.service import DevicePool
    from repro.synth import LaunchConfig

    runtimes = []
    for spec in kernels:
        if spec.alphabet.is_struct:
            raise SystemExit(
                f"kernel {spec.name} consumes struct symbols and cannot be "
                f"served over the JSON-line protocol"
            )
        for _ in range(replicas):
            runtimes.append(DeviceRuntime(
                spec,
                LaunchConfig(
                    n_pe=n_pe, n_b=n_b, n_k=1,
                    max_query_len=max_len, max_ref_len=max_len,
                ),
                backend=backend,
            ))
    return DevicePool(runtimes, cache=cache)


def _service_workload(kernels, pairs_per_kernel: int, length: int, seed: int):
    """Random (kernel_id, query, reference) tuples for the load generator."""
    import random

    rng = random.Random(seed)
    workload = []
    for spec in kernels:
        cardinality = spec.alphabet.size or 64
        for _ in range(pairs_per_kernel):
            workload.append((
                spec.kernel_id,
                tuple(rng.randrange(cardinality) for _ in range(length)),
                tuple(rng.randrange(cardinality) for _ in range(length)),
            ))
    rng.shuffle(workload)
    return workload


def _deployment_from_args(args):
    """Build the :class:`~repro.shard.Deployment` a serve-shaped
    argparse namespace describes (shared by serve and in-proc loadgen)."""
    from repro.shard import Deployment

    kernel_ids = tuple(
        _kernel_arg(k).kernel_id for k in (args.kernel or ["1"])
    )
    try:
        deployment = Deployment(
            kernel_ids=kernel_ids,
            replicas=args.replicas,
            n_pe=args.n_pe,
            n_b=args.n_b,
            max_len=args.max_len,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            queue_bound=args.queue_bound,
            backend=args.backend,
            cache_dir=getattr(args, "cache_dir", None),
            cache_mem_mb=getattr(args, "cache_mem_mb", 64.0),
        )
        deployment.specs()  # fail fast on unservable kernels
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return deployment


def _print_deployed(kernel_ids) -> None:
    """Describe the deployed kernels, one line each."""
    deployed = set(kernel_ids)
    for info in list_kernels():
        if info["id"] in deployed:
            print(f"  kernel #{info['id']} {info['name']} "
                  f"({info['alphabet']}, {info['layers']} layers, "
                  f"traceback={'yes' if info['traceback'] else 'no'})")


def cmd_serve(args) -> int:
    """Run the always-on alignment service until interrupted.

    ``--shards 1`` (the default) serves from this process;
    ``--shards N`` spawns N worker processes behind an asyncio front
    door that routes each request by its cache fingerprint.
    """
    import json as json_module
    import signal

    def _graceful(signum, frame) -> None:
        """Turn SIGTERM/SIGINT into the KeyboardInterrupt drain path."""
        raise KeyboardInterrupt

    if threading.current_thread() is threading.main_thread():
        # Explicit handlers: a server backgrounded from a script
        # inherits SIGINT=ignore (POSIX job control), and SIGTERM
        # should drain gracefully rather than kill mid-request.
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)

    deployment = _deployment_from_args(args)
    if args.shards > 1:
        from repro.shard import ShardServer

        server = ShardServer(
            (args.host, args.port), deployment, n_shards=args.shards
        ).start()
        host, port = server.address
        _print_deployed(deployment.kernel_ids)
        shard_ports = ", ".join(
            f"{h.name}:{h.port}" for h in server.manager.handles()
        )
        print(f"serving kernels {list(deployment.kernel_ids)} on "
              f"{host}:{port} ({args.shards} shards: {shard_ports}, "
              f"backend={deployment.backend})",
              flush=True)
        snapshot = {}
        stop = threading.Event()
        try:
            # wait() with a timeout stays interruptible by SIGINT
            # (an untimed lock acquire on the main thread is not).
            while not stop.wait(1.0):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            try:
                snapshot = server.metrics_snapshot()
            except Exception:  # noqa: BLE001 - shutdown still proceeds
                pass
            codes = server.close()
            print(json_module.dumps(snapshot, indent=2, sort_keys=True))
            print(f"drained shards: {json_module.dumps(codes, sort_keys=True)}")
        return 0 if all(code == 0 for code in codes.values()) else 1

    from repro.service import AlignmentServer

    core = deployment.build_core(cache=deployment.build_cache()).start()
    server = AlignmentServer((args.host, args.port), core)
    host, port = server.server_address
    _print_deployed(deployment.kernel_ids)
    print(f"serving kernels {list(deployment.kernel_ids)} on {host}:{port} "
          f"({len(core.pool.members)} runtimes, max_batch={args.max_batch}, "
          f"max_delay={args.max_delay_ms}ms, queue_bound={args.queue_bound}, "
          f"backend={deployment.backend})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print(json_module.dumps(core.metrics_snapshot(), indent=2, sort_keys=True))
    return 0


def _validate_loadgen_sources(args) -> None:
    """Reject mixing ``--trace`` with the Poisson workload knobs.

    The two sources are mutually exclusive: a trace fixes the request
    stream (content, order, volume), so every synthetic-workload flag
    would be silently ignored — fail loudly instead.  Called before the
    synthetic defaults are filled in, so "explicit flag" is detectable
    as "not None / non-empty".
    """
    if args.trace is None:
        return
    conflicts = []
    if args.rate:
        conflicts.append("--rate")
    if args.requests is not None:
        conflicts.append("--requests")
    if args.pairs is not None:
        conflicts.append("--pairs")
    if args.length is not None:
        conflicts.append("--length")
    if args.kernel:
        conflicts.append("--kernel")
    if args.concurrency is not None:
        conflicts.append("--concurrency")
    if args.profile is not None:
        conflicts.append("--profile")
    if args.duration is not None:
        conflicts.append("--duration")
    if conflicts:
        raise SystemExit(
            f"--trace replays a recorded workload and cannot be combined "
            f"with the synthetic-load options: {', '.join(conflicts)}. "
            f"Drop them, or drop --trace to generate Poisson load."
        )


def cmd_loadgen(args) -> int:
    """Drive a service: open-loop Poisson load, or trace replay.

    Without ``--trace``, fires a synthetic random workload open-loop at
    each ``--rate``.  With ``--trace``, replays a tile trace recorded by
    ``repro map --trace-out`` closed-loop, in recorded order — the
    request stream (and therefore the cache hit profile) a real mapping
    run produced.
    """
    import json as json_module

    from repro.service import (
        InProcClient,
        LoadGenerator,
        RetryPolicy,
        connect_with_retry,
    )

    _validate_loadgen_sources(args)
    if args.trace is not None:
        from repro.pipeline import read_trace

        try:
            workload = read_trace(args.trace)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load trace: {exc}") from None
        if not workload:
            raise SystemExit(f"trace {args.trace} holds no requests")
        # The deployment must serve the kernels the trace names.
        args.kernel = [str(k) for k in sorted({k for k, _, _ in workload})]
    else:
        args.requests = 100 if args.requests is None else args.requests
        args.pairs = 16 if args.pairs is None else args.pairs
        args.length = 24 if args.length is None else args.length
        kernels = [_kernel_arg(k) for k in (args.kernel or ["1"])]
        workload = _service_workload(
            kernels, args.pairs, args.length, args.seed
        )
    args.concurrency = 1 if args.concurrency is None else args.concurrency
    core = None
    if args.in_proc:
        deployment = _deployment_from_args(args)
        core = deployment.build_core(cache=deployment.build_cache()).start()
        client = InProcClient(core)
    else:
        client = connect_with_retry(
            args.host, args.port,
            policy=RetryPolicy(attempts=args.connect_retries),
            read_timeout=args.read_timeout,
        )
    failures = 0
    try:
        generator = LoadGenerator(client, workload, seed=args.seed)
        if args.trace is not None:
            report = generator.replay(
                deadline_ms=args.deadline_ms, window=args.window
            )
            failures += report.errors
            print(report.summary())
        else:
            profile = None
            if args.profile is not None:
                from repro.service import LoadProfile

                profile = LoadProfile.parse(args.profile)
            for rate in args.rate or [100.0]:
                if args.duration is not None:
                    report = generator.run(
                        rate, duration_s=args.duration,
                        deadline_ms=args.deadline_ms, profile=profile,
                    )
                else:
                    report = generator.run_concurrent(
                        rate, args.requests, args.concurrency,
                        deadline_ms=args.deadline_ms, profile=profile,
                    )
                failures += report.errors
                print(report.summary())
        snapshot = client.metrics()
        if not snapshot.get("counters"):
            print("error: empty metrics snapshot")
            return 1
        print(json_module.dumps(snapshot, indent=2, sort_keys=True))
    finally:
        client.close()
        if core is not None:
            core.stop()
    return 0 if failures == 0 else 1


def cmd_autoscale(args) -> int:
    """Run the closed-loop autoscaling demo and judge the outcome.

    Exit code 0 means the loop both *scaled up* under the shifted load
    and *recovered* the p99 under the SLO in the tail window — the
    assertion the smoke-autoscale CI job makes.  ``--dry-run`` rehearses
    the loop without touching the pool and always exits 0.
    """
    import json as json_module
    from pathlib import Path

    from repro.autoscale import run_autoscale_demo
    from repro.service import LoadProfile

    profile = (
        LoadProfile.parse(args.profile) if args.profile is not None else None
    )
    kernels = [_kernel_arg(k).kernel_id for k in (args.kernel or ["1"])]
    result = run_autoscale_demo(
        kernels=kernels,
        rate_rps=args.rate,
        profile=profile,
        duration_s=args.duration,
        interval_s=args.interval,
        slo_ms=args.slo_ms,
        max_replicas=args.max_replicas,
        cooldown_s=args.cooldown,
        per_replica_rps=args.per_replica_rps,
        length=args.length,
        backend=args.backend,
        dry_run=args.dry_run,
        seed=args.seed,
        keep_decisions=not args.no_decisions,
    )
    rendered = json_module.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(rendered + "\n")
    print(rendered)

    def fmt(value) -> str:
        return "n/a" if value is None else f"{value:.0f}ms"

    print(
        f"autoscale: baseline p99 {fmt(result['baseline_p99_ms'])}, "
        f"violation p99 {fmt(result['violation_p99_ms'])}, "
        f"recovered p99 {fmt(result['recovered_p99_ms'])} "
        f"(slo {result['slo_target_ms']:.0f}ms); "
        f"{result['scale_up_decisions']} scale-up(s), "
        f"replicas {result['replicas_initial']} -> "
        f"{result['replicas_final']}"
    )
    if args.dry_run:
        return 0
    ok = result["scale_up_decisions"] >= 1 and result["recovered"]
    if not ok:
        print("autoscale: FAILED (no scale-up or no SLO recovery)")
    return 0 if ok else 1


def cmd_map(args) -> int:
    """Map a long-read flowcell to SAM through the streaming pipeline.

    Without ``--fastq``, simulates a flowcell from the (seeded) random
    reference first — the self-contained form the smoke-pipeline CI job
    runs.  Tiles execute in-process by default; ``--connect HOST:PORT``
    dispatches them to a running alignment service instead.  The emitted
    SAM is re-parsed (and thereby validated) before the command reports
    success.
    """
    import json as json_module
    from pathlib import Path

    from repro.data.fastq import write_flowcell
    from repro.data.genome import random_genome
    from repro.data.sam import iter_sam
    from repro.pipeline import ServiceTileDispatcher, map_flowcell

    genome = random_genome(args.genome_length, seed=args.genome_seed)
    fastq = args.fastq
    if fastq is None:
        fastq = str(Path(args.out).with_suffix(".fastq"))
        n = write_flowcell(
            fastq, genome, args.reads, length=args.read_length,
            error_rate=args.error_rate, seed=args.seed,
        )
        print(f"simulated {n} reads ({args.read_length} bp, "
              f"{args.error_rate:.0%} error) -> {fastq}", flush=True)

    dispatcher = None
    cache = None
    try:
        if args.connect is not None:
            from repro.service import RetryPolicy, connect_with_retry

            host, _, port = args.connect.rpartition(":")
            if not host or not port.isdigit():
                raise SystemExit(
                    f"--connect needs HOST:PORT, got {args.connect!r}"
                )
            client = connect_with_retry(
                host, int(port),
                policy=RetryPolicy(attempts=args.connect_retries),
            )
            dispatcher = ServiceTileDispatcher(
                client, kernel_id=_kernel_arg(args.kernel).kernel_id
            )
        elif args.cache_dir is not None:
            from repro.cache import CacheConfig, CacheStack

            cache = CacheStack(CacheConfig(
                directory=args.cache_dir,
                memory_bytes=int(args.cache_mem_mb * 1024 * 1024),
            ))
        report = map_flowcell(
            fastq, genome, args.out,
            chunk_size=args.chunk_size,
            queue_bound=args.queue_bound,
            k=args.k,
            tile_size=args.tile_size,
            overlap=args.overlap,
            min_identity=args.min_identity,
            n_pe=args.n_pe,
            backend=args.backend,
            cache=cache,
            dispatcher=dispatcher,
            trace_path=args.trace_out,
        )
    finally:
        if cache is not None:
            cache.close()
    parsed = sum(1 for _ in iter_sam(args.out))
    print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    print(f"sam: {parsed} records validated -> {args.out}")
    if args.trace_out is not None:
        print(f"trace: {report.trace_records} tile requests -> "
              f"{args.trace_out}")
    if parsed != report.reads:
        print(f"error: SAM round-trip saw {parsed} records "
              f"for {report.reads} reads")
        return 1
    if report.reads == 0 or report.mapped == 0:
        print("error: pipeline mapped no reads")
        return 1
    if report.pipeline.dropped:
        print(f"error: {report.pipeline.dropped} chunks dropped")
        return 1
    return 0


def cmd_trace(args) -> int:
    """Serve a traced workload in-process and export a Chrome trace.

    Spins up an in-process :class:`~repro.service.ServiceCore` under a
    :class:`~repro.obs.TraceRecorder`, pushes a small random workload
    through the full request path (service → pool → host → engine),
    writes the Chrome trace-event JSON to ``--out``, and prints the
    plain-text metrics snapshot.  Open the JSON in ``chrome://tracing``
    or https://ui.perfetto.dev.
    """
    from repro.obs import TraceRecorder, use_recorder, write_chrome_trace
    from repro.obs.export import render_text_snapshot
    from repro.service import BatcherConfig, InProcClient, ServiceCore, Status

    kernels = [_kernel_arg(k) for k in (args.kernel or ["1"])]
    recorder = TraceRecorder()
    failures = 0
    with use_recorder(recorder):
        pool = _service_pool(
            kernels, args.n_pe, args.n_b, args.replicas, args.max_len
        )
        core = ServiceCore(pool, BatcherConfig(
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
        ), recorder=recorder).start()
        client = InProcClient(core)
        workload = _service_workload(
            kernels, args.pairs, args.length, args.seed
        )
        try:
            slots = [
                client.submit(kernel_id, query, reference)
                for kernel_id, query, reference in workload
            ]
            for slot in slots:
                if slot.result(timeout=120.0).status is not Status.OK:
                    failures += 1
        finally:
            core.stop()
    write_chrome_trace(recorder, args.out)
    categories = sorted({
        event.category for event in recorder.events() if event.kind == "span"
    })
    print(render_text_snapshot(core.metrics_snapshot()))
    print(f"trace: {len(recorder.events())} events "
          f"(spans in {', '.join(categories)}; "
          f"{recorder.dropped_events} dropped) -> {args.out}")
    if failures:
        print(f"error: {failures} request(s) did not resolve OK")
        return 1
    return 0


def cmd_cache(args) -> int:
    """Inspect, warm or clear a persistent alignment cache directory."""
    import hashlib
    import json as json_module

    from repro.cache import CacheConfig, CacheStack

    if args.cache_command == "stats":
        from repro.cache import DiskStore

        store = DiskStore(args.dir)
        try:
            print(json_module.dumps(
                store.stats().to_dict(), indent=2, sort_keys=True
            ))
        finally:
            store.close()
        return 0

    if args.cache_command == "clear":
        from repro.cache import DiskStore

        store = DiskStore(args.dir)
        try:
            dropped = store.clear()
        finally:
            store.close()
        print(f"cleared {dropped} entries from {args.dir}")
        return 0

    # warm: push a deterministic workload through an in-proc ServiceCore
    # backed by the cache directory, then report attribution.  Running
    # the same command twice (even across process restarts) must produce
    # a byte-identical response digest with a nonzero hit count on the
    # second pass — the smoke-cache CI job pins exactly that.
    from repro.service import BatcherConfig, InProcClient, ServiceCore, Status

    kernels = [_kernel_arg(k) for k in (args.kernel or ["1"])]
    stack = CacheStack(CacheConfig(
        directory=args.dir,
        memory_bytes=int(args.cache_mem_mb * 1024 * 1024),
    ))
    pool = _service_pool(
        kernels, args.n_pe, args.n_b, args.replicas, args.max_len,
        cache=stack,
    )
    core = ServiceCore(pool, BatcherConfig(max_batch=args.max_batch)).start()
    client = InProcClient(core)
    workload = _service_workload(kernels, args.pairs, args.length, args.seed)
    failures = 0
    lines = []
    try:
        slots = [
            client.submit(kernel_id, query, reference)
            for kernel_id, query, reference in workload
        ]
        for slot in slots:
            response = slot.result(timeout=120.0)
            if response.status is not Status.OK:
                failures += 1
            lines.append(response.to_line(with_latency=False))
    finally:
        core.stop()
        stack.close()
    digest = hashlib.sha256(b"".join(sorted(lines))).hexdigest()
    snapshot = core.metrics_snapshot()
    counters = snapshot.get("counters", {})
    hits = counters.get("cache_hits_total", 0)
    misses = counters.get("cache_misses_total", 0)
    print(f"warmed {len(lines)} responses from {len(workload)} requests "
          f"({hits} cache hits, {misses} misses)")
    print(f"response digest: {digest}")
    print(json_module.dumps(snapshot.get("cache"), indent=2, sort_keys=True))
    if failures:
        print(f"error: {failures} request(s) did not resolve OK")
        return 1
    return 0


def cmd_occupancy(args) -> int:
    """Render the PE activity Gantt for a matrix shape."""
    from repro.systolic.activity import render_occupancy

    spec = _kernel_arg(args.kernel)
    print(
        render_occupancy(
            args.query_len, args.ref_len, args.n_pe, banding=spec.banding
        )
    )
    return 0


def cmd_matrix(args) -> int:
    """Render a filled DP matrix with the traceback path."""
    from repro.experiments.matrix_viz import render_dp_matrix

    spec = _kernel_arg(args.kernel)
    query = _encode_for(spec, args.query)
    reference = _encode_for(spec, args.reference)
    print(render_dp_matrix(spec, query, reference))
    return 0


def cmd_experiment(args) -> int:
    """Regenerate one of the paper's tables/figures."""
    name = args.command
    if name == "table2":
        from repro.experiments import table2

        print(table2.render())
    elif name == "fig3":
        from repro.experiments import fig3

        print(fig3.render(args.kernel_id))
    elif name == "fig4":
        from repro.experiments import fig4

        print(fig4.render())
    elif name == "fig5":
        from repro.experiments import fig5

        print(fig5.render())
    elif name == "fig6":
        from repro.experiments import fig6

        print(fig6.render())
    elif name == "hls":
        from repro.experiments import hls_cmp

        print(hls_cmp.render())
    elif name == "tiling":
        from repro.experiments import tiling_exp

        print(tiling_exp.render())
    elif name == "table1":
        from repro.experiments import table1

        print(table1.render())
    elif name == "all":
        from repro.experiments.summary import reproduce_all

        print(reproduce_all().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DP-HLS reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered kernels")

    p = sub.add_parser("align", help="align two sequences on a kernel")
    p.add_argument("kernel")
    p.add_argument("query")
    p.add_argument("reference")
    p.add_argument("--n-pe", type=int, default=8)

    p = sub.add_parser("synth", help="synthesize a kernel configuration")
    p.add_argument("kernel")
    p.add_argument("--n-pe", type=int, default=32)
    p.add_argument("--n-b", type=int, default=1)
    p.add_argument("--n-k", type=int, default=1)
    p.add_argument("--max-len", type=int, default=256)

    p = sub.add_parser("rtl", help="emit the structural Verilog skeleton")
    p.add_argument("kernel")
    p.add_argument("--n-pe", type=int, default=32)
    p.add_argument("--n-b", type=int, default=1)

    p = sub.add_parser("verify", help="verify a kernel against the oracle")
    p.add_argument("kernel")
    p.add_argument("--pairs", type=int, default=3)
    p.add_argument("--length", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for the per-pair checks")

    p = sub.add_parser("campaign", help="bulk functional-verification campaign")
    p.add_argument("kernel", help="kernel number/name, or 'all'")
    p.add_argument("--pairs", type=int, default=25)
    p.add_argument("--engine-sample", type=int, default=2)
    p.add_argument("--length", type=int, default=48)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool width for the broad tier")
    p.add_argument("--backend", choices=("systolic", "compiled"),
                   default="systolic",
                   help="engine the deep-tier sample runs through")

    p = sub.add_parser(
        "fuzz",
        help="differentially fuzz the engine against the reference oracles",
    )
    p.add_argument("--kernel", action="append", default=[],
                   help="kernel number/name (repeatable; default: all)")
    p.add_argument("--cases", type=int, default=None,
                   help="cases per kernel (per round under --budget)")
    p.add_argument("--budget", type=float, default=None,
                   help="keep fuzzing until this many seconds have elapsed")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--max-len", type=int, default=32,
                   help="upper bound on randomized sequence lengths")

    p = sub.add_parser("serve", help="run the online alignment service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--kernel", action="append", default=[],
                   help="kernel number/name to deploy (repeatable; default 1)")
    p.add_argument("--replicas", type=int, default=1,
                   help="runtimes per deployed kernel")
    p.add_argument("--n-pe", type=int, default=16)
    p.add_argument("--n-b", type=int, default=4)
    p.add_argument("--max-len", type=int, default=256)
    p.add_argument("--max-batch", type=int, default=8,
                   help="size-triggered flush threshold (per kernel)")
    p.add_argument("--max-delay-ms", type=float, default=20.0,
                   help="deadline-triggered flush linger bound")
    p.add_argument("--queue-bound", type=int, default=256,
                   help="per-kernel admission bound (backpressure)")
    p.add_argument("--cache-dir", default=None,
                   help="enable the content-addressed cache, persisted here")
    p.add_argument("--cache-mem-mb", type=float, default=64.0,
                   help="in-memory cache tier budget (MiB)")
    p.add_argument("--backend", choices=("systolic", "compiled"),
                   default="systolic",
                   help="alignment engine backing every runtime")
    p.add_argument("--shards", type=int, default=1,
                   help="worker shard processes behind an asyncio front "
                        "door routing on cache fingerprints (1 = serve "
                        "from this process)")

    p = sub.add_parser(
        "loadgen",
        help="drive open-loop Poisson load against a service, or replay "
             "a recorded tile trace (--trace)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7878)
    p.add_argument("--in-proc", action="store_true",
                   help="spin up an in-process service instead of TCP")
    p.add_argument("--trace", default=None,
                   help="replay this tile trace (from repro map "
                        "--trace-out) instead of generating Poisson "
                        "load; mutually exclusive with the synthetic "
                        "workload options")
    p.add_argument("--window", type=int, default=64,
                   help="max in-flight requests during --trace replay")
    p.add_argument("--kernel", action="append", default=[],
                   help="kernel number/name to request (repeatable; default 1)")
    p.add_argument("--rate", action="append", type=float, default=[],
                   help="offered load in req/s (repeatable; default 100)")
    p.add_argument("--requests", type=int, default=None,
                   help="requests per offered-load point (default 100)")
    p.add_argument("--pairs", type=int, default=None,
                   help="distinct random pairs per kernel in the "
                        "workload (default 16)")
    p.add_argument("--length", type=int, default=None,
                   help="sequence length of synthetic pairs (default 24)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--deadline-ms", type=float, default=None)
    p.add_argument("--replicas", type=int, default=1)
    p.add_argument("--n-pe", type=int, default=16)
    p.add_argument("--n-b", type=int, default=4)
    p.add_argument("--max-len", type=int, default=256)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--max-delay-ms", type=float, default=20.0)
    p.add_argument("--queue-bound", type=int, default=256)
    p.add_argument("--cache-dir", default=None,
                   help="enable the content-addressed cache (in-proc only)")
    p.add_argument("--cache-mem-mb", type=float, default=64.0)
    p.add_argument("--backend", choices=("systolic", "compiled"),
                   default="systolic",
                   help="alignment engine backing the in-proc service")
    p.add_argument("--concurrency", type=int, default=None,
                   help="parallel open-loop firing threads splitting the "
                        "offered rate (default 1)")
    p.add_argument("--profile", default=None,
                   help="shift the offered load over the run: "
                        "step:<t>:<mult> multiplies the rate after t "
                        "seconds; ramp:<t0>:<t1>:<mult> ramps linearly "
                        "between t0 and t1 (default constant)")
    p.add_argument("--duration", type=float, default=None,
                   help="bound the run by wall time (seconds) instead "
                        "of --requests; forces a single firing thread")
    p.add_argument("--connect-retries", type=int, default=5,
                   help="connection attempts (exponential backoff) while "
                        "the service comes up")
    p.add_argument("--read-timeout", type=float, default=None,
                   help="fail outstanding requests if the server goes "
                        "silent this long (seconds)")

    p = sub.add_parser(
        "autoscale",
        help="closed-loop autoscaling demo: shifting load against an "
             "in-proc service, live metrics drive replica counts",
    )
    p.add_argument("--kernel", action="append", default=[],
                   help="kernel number/name to serve (repeatable; "
                        "default 1)")
    p.add_argument("--rate", type=float, default=5.0,
                   help="baseline offered load in req/s")
    p.add_argument("--profile", default=None,
                   help="load shape: step:<t>:<mult> or "
                        "ramp:<t0>:<t1>:<mult> (default "
                        "step at duration/4, x8)")
    p.add_argument("--duration", type=float, default=24.0,
                   help="run length in seconds")
    p.add_argument("--interval", type=float, default=0.5,
                   help="control-loop sampling interval (seconds)")
    p.add_argument("--slo-ms", type=float, default=400.0,
                   help="p99 latency objective (milliseconds)")
    p.add_argument("--max-replicas", type=int, default=6,
                   help="per-kernel replica ceiling")
    p.add_argument("--cooldown", type=float, default=1.5,
                   help="per-kernel actuation cooldown (seconds)")
    p.add_argument("--per-replica-rps", type=float, default=30.0,
                   help="calibrated full-batch capacity of one replica")
    p.add_argument("--length", type=int, default=48,
                   help="sequence length of the synthetic workload")
    p.add_argument("--backend", choices=("systolic", "compiled"),
                   default="compiled")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--dry-run", action="store_true",
                   help="rehearse the control loop without touching "
                        "the pool (always exits 0)")
    p.add_argument("--out", default=None,
                   help="also write the full JSON report here")
    p.add_argument("--no-decisions", action="store_true",
                   help="omit the per-step decision log from the report")

    p = sub.add_parser(
        "map",
        help="map a (simulated) long-read flowcell to SAM through the "
             "streaming pipeline",
    )
    p.add_argument("--out", default="mapped.sam",
                   help="SAM output path")
    p.add_argument("--fastq", default=None,
                   help="input FASTQ; omitted = simulate a flowcell "
                        "from the reference first")
    p.add_argument("--genome-length", type=int, default=2_000_000,
                   help="length of the seeded random reference")
    p.add_argument("--genome-seed", type=int, default=0)
    p.add_argument("--reads", type=int, default=32,
                   help="reads to simulate when --fastq is omitted")
    p.add_argument("--read-length", type=int, default=512)
    p.add_argument("--error-rate", type=float, default=0.12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--chunk-size", type=int, default=16,
                   help="reads per pipeline chunk")
    p.add_argument("--queue-bound", type=int, default=4,
                   help="inter-stage queue capacity (chunks)")
    p.add_argument("--k", type=int, default=12, help="seed k-mer size")
    p.add_argument("--tile-size", type=int, default=128)
    p.add_argument("--overlap", type=int, default=32)
    p.add_argument("--min-identity", type=float, default=0.55,
                   help="accept floor on base-level identity")
    p.add_argument("--n-pe", type=int, default=32)
    p.add_argument("--backend", choices=("systolic", "compiled"),
                   default="compiled",
                   help="engine for in-process tile execution")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed tile cache (in-process only)")
    p.add_argument("--cache-mem-mb", type=float, default=64.0)
    p.add_argument("--trace-out", default=None,
                   help="record every tile request here (JSONL) for "
                        "repro loadgen --trace")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="dispatch tiles to a running alignment service "
                        "instead of in-process")
    p.add_argument("--connect-retries", type=int, default=5)
    p.add_argument("--kernel", default="1",
                   help="tile kernel for --connect dispatch (must be a "
                        "global kernel)")

    p = sub.add_parser(
        "cache",
        help="inspect, warm or clear a persistent alignment cache",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cp = cache_sub.add_parser("stats", help="print cache directory statistics")
    cp.add_argument("--dir", required=True, help="cache directory")
    cp = cache_sub.add_parser("clear", help="delete every cached entry")
    cp.add_argument("--dir", required=True, help="cache directory")
    cp = cache_sub.add_parser(
        "warm",
        help="serve a deterministic workload through the cache "
             "(run twice to measure the warm pass)",
    )
    cp.add_argument("--dir", required=True, help="cache directory")
    cp.add_argument("--kernel", action="append", default=[],
                    help="kernel number/name (repeatable; default 1)")
    cp.add_argument("--pairs", type=int, default=16,
                    help="distinct random pairs per kernel")
    cp.add_argument("--length", type=int, default=24)
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--replicas", type=int, default=1)
    cp.add_argument("--n-pe", type=int, default=16)
    cp.add_argument("--n-b", type=int, default=4)
    cp.add_argument("--max-len", type=int, default=256)
    cp.add_argument("--max-batch", type=int, default=8)
    cp.add_argument("--cache-mem-mb", type=float, default=64.0)

    p = sub.add_parser(
        "trace",
        help="serve a traced workload in-process and export a Chrome trace",
    )
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--kernel", action="append", default=[],
                   help="kernel number/name to trace (repeatable; default 1)")
    p.add_argument("--pairs", type=int, default=8,
                   help="random pairs per kernel pushed through the service")
    p.add_argument("--length", type=int, default=24)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--replicas", type=int, default=1)
    p.add_argument("--n-pe", type=int, default=16)
    p.add_argument("--n-b", type=int, default=4)
    p.add_argument("--max-len", type=int, default=256)
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--max-delay-ms", type=float, default=20.0)

    p = sub.add_parser("occupancy", help="render the PE activity Gantt")
    p.add_argument("kernel")
    p.add_argument("--query-len", type=int, default=24)
    p.add_argument("--ref-len", type=int, default=32)
    p.add_argument("--n-pe", type=int, default=8)

    p = sub.add_parser("matrix", help="render a filled DP matrix with path")
    p.add_argument("kernel")
    p.add_argument("query")
    p.add_argument("reference")

    for exp in ("table1", "table2", "fig4", "fig5", "fig6", "hls", "tiling",
                "all"):
        sub.add_parser(exp, help=f"regenerate {exp}")
    p = sub.add_parser("fig3", help="regenerate fig3 for one kernel")
    p.add_argument("kernel_id", type=int, choices=(1, 9))

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "align": cmd_align,
        "synth": cmd_synth,
        "rtl": cmd_rtl,
        "verify": cmd_verify,
        "occupancy": cmd_occupancy,
        "campaign": cmd_campaign,
        "fuzz": cmd_fuzz,
        "matrix": cmd_matrix,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "autoscale": cmd_autoscale,
        "map": cmd_map,
        "trace": cmd_trace,
        "cache": cmd_cache,
    }
    handler = handlers.get(args.command, cmd_experiment)
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
