"""Alignment path re-scoring.

Replaying an alignment through the scoring model and comparing with the
reported optimum is the strongest cheap check on a traceback: a path with
the optimal score *is* an optimal alignment.  One rescorer per gap-model
family; all follow the kernels' convention that a gap of length L costs
``open + L * extend`` (linear = extend-only).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.result import Alignment, Move


def _pairs(alignment: Alignment, query: Sequence[Any], reference: Sequence[Any]):
    """Yield (move, query_symbol, ref_symbol) along the path."""
    qi, rj = alignment.query_start, alignment.ref_start
    for move in alignment.moves:
        if move is Move.MATCH:
            yield move, query[qi], reference[rj]
            qi += 1
            rj += 1
        elif move is Move.DEL:
            yield move, query[qi], None
            qi += 1
        elif move is Move.INS:
            yield move, None, reference[rj]
            rj += 1
    if qi != alignment.query_end or rj != alignment.ref_end:
        raise ValueError(
            f"alignment path inconsistent with its endpoints: consumed "
            f"({qi}, {rj}), declared ({alignment.query_end}, "
            f"{alignment.ref_end})"
        )


def rescore_linear(
    alignment: Alignment,
    query: Sequence[Any],
    reference: Sequence[Any],
    match: float,
    mismatch: float,
    gap: float,
) -> float:
    """Score a path under the linear gap model."""
    score = 0.0
    for move, q, r in _pairs(alignment, query, reference):
        if move is Move.MATCH:
            score += match if q == r else mismatch
        else:
            score += gap
    return score


def rescore_matrix_linear(
    alignment: Alignment,
    query: Sequence[int],
    reference: Sequence[int],
    matrix,
    gap: float,
) -> float:
    """Score a path under a substitution matrix + linear gaps (kernel #15)."""
    score = 0.0
    for move, q, r in _pairs(alignment, query, reference):
        if move is Move.MATCH:
            score += matrix[q][r]
        else:
            score += gap
    return score


def rescore_affine(
    alignment: Alignment,
    query: Sequence[Any],
    reference: Sequence[Any],
    match: float,
    mismatch: float,
    gap_open: float,
    gap_extend: float,
) -> float:
    """Score a path under the affine model (open charged once per run)."""
    score = 0.0
    run: Move = Move.MATCH
    for move, q, r in _pairs(alignment, query, reference):
        if move is Move.MATCH:
            score += match if q == r else mismatch
        else:
            if move is not run:
                score += gap_open
            score += gap_extend
        run = move
    return score


def rescore_two_piece(
    alignment: Alignment,
    query: Sequence[Any],
    reference: Sequence[Any],
    match: float,
    mismatch: float,
    gap_open1: float,
    gap_extend1: float,
    gap_open2: float,
    gap_extend2: float,
) -> float:
    """Score a path under the two-piece model (best piece per gap run)."""
    score = 0.0
    run_len = 0
    run_move: Move = Move.MATCH

    def close_run() -> float:
        if run_len == 0:
            return 0.0
        return max(
            gap_open1 + gap_extend1 * run_len,
            gap_open2 + gap_extend2 * run_len,
        )

    for move, q, r in _pairs(alignment, query, reference):
        if move is Move.MATCH:
            score += close_run()
            run_len = 0
            score += match if q == r else mismatch
        else:
            if move is not run_move and run_len:
                score += close_run()
                run_len = 0
            run_len += 1
        run_move = move
    score += close_run()
    return score


def rescore_dtw(
    alignment: Alignment,
    query: Sequence[Any],
    reference: Sequence[Any],
) -> float:
    """Accumulated squared-Euclidean cost along a DTW warping path.

    Every step of a DTW path pays the cost of the cell it lands on, so
    gaps contribute the distance between the still-current pair.
    """
    cost = 0.0
    qi, rj = alignment.query_start, alignment.ref_start
    for move in alignment.moves:
        if move is Move.MATCH:
            qi += 1
            rj += 1
        elif move is Move.DEL:
            qi += 1
        elif move is Move.INS:
            rj += 1
        else:
            continue
        q, r = query[qi - 1], reference[rj - 1]
        cost += (q[0] - r[0]) ** 2 + (q[1] - r[1]) ** 2
    return cost
