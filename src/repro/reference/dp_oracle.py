"""Spec-driven row-major DP oracle.

Computes the identical recurrence as :func:`repro.systolic.align`, but in
the obvious row-by-row order with a dense pointer matrix — no chunks, no
wavefronts, no PE registers.  Systolic output must match this oracle
cell-for-cell; the pair of implementations cross-checks the back-end's
dataflow against the kernel's mathematical definition.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import AlignmentResult
from repro.core.spec import KernelSpec, PEInput, StartRule, band_contains
from repro.systolic.traceback import walk_traceback


class _MatrixPointerStore:
    """Adapter exposing a dense pointer matrix via the memory-read API."""

    def __init__(self, ptrs: np.ndarray):
        self._ptrs = ptrs

    def read(self, i: int, j: int) -> int:
        return int(self._ptrs[i, j])


def oracle_align(
    spec: KernelSpec,
    query: Sequence[Any],
    reference: Sequence[Any],
    params: Any = None,
    collect_matrix: bool = False,
) -> AlignmentResult:
    """Row-major evaluation of ``spec`` over one sequence pair."""
    n_rows, n_cols = len(query), len(reference)
    if n_rows < 1 or n_cols < 1:
        raise ValueError("query and reference must be non-empty")
    if params is None:
        params = spec.default_params
    n_layers = spec.n_layers
    sentinel = spec.sentinel()
    banding = spec.banding
    quantize = spec.score_type.quantize

    scores = np.full((n_layers, n_rows + 1, n_cols + 1), sentinel)
    scores[:, 0, :] = spec.init_row_scores(params, n_cols + 1).T
    scores[:, :, 0] = spec.init_col_scores(params, n_rows + 1).T
    ptrs = np.zeros((n_rows + 1, n_cols + 1), dtype=np.int64)

    cell = PEInput(
        up=(), diag=(), left=(), qry=None, ref=None, params=params
    )
    best: Optional[Tuple[float, int, int]] = None

    def eligible(i: int, j: int) -> bool:
        rule = spec.start_rule
        if rule is StartRule.GLOBAL_MAX:
            return True
        if rule is StartRule.BOTTOM_RIGHT:
            return i == n_rows and j == n_cols
        if rule is StartRule.LAST_ROW_MAX:
            return i == n_rows
        return i == n_rows or j == n_cols

    def neighbour(i: int, j: int) -> Tuple[float, ...]:
        if banding is not None and not band_contains(banding, i, j):
            return (sentinel,) * n_layers
        return tuple(scores[layer, i, j] for layer in range(n_layers))

    for i in range(1, n_rows + 1):
        for j in range(1, n_cols + 1):
            if not band_contains(banding, i, j):
                continue
            cell.up = neighbour(i - 1, j)
            cell.diag = neighbour(i - 1, j - 1)
            cell.left = neighbour(i, j - 1)
            cell.qry = query[i - 1]
            cell.ref = reference[j - 1]
            out, ptr = spec.pe_func(cell)
            out = tuple(quantize(s) for s in out)
            for layer in range(n_layers):
                scores[layer, i, j] = out[layer]
            ptrs[i, j] = ptr
            if eligible(i, j):
                value = out[spec.score_layer]
                if best is None or spec.better(value, best[0]):
                    best = (value, i, j)
                # Row-major scan order already yields smallest-(i, j) ties.

    if best is None:
        raise ValueError(
            f"{spec.name}: no cell satisfied start rule "
            f"{spec.start_rule.value}"
        )
    score, si, sj = best
    start = (si, sj)
    alignment = None
    if spec.has_traceback:
        alignment = walk_traceback(spec, _MatrixPointerStore(ptrs), start)
    if alignment is not None:
        end = (alignment.query_start, alignment.ref_start)
    else:
        end = (0, 0)
    return AlignmentResult(
        score=score,
        start=start,
        end=end,
        alignment=alignment,
        cycles=None,
        matrix=scores if collect_matrix else None,
    )
