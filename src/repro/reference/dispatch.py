"""One entry point mapping every kernel to its textbook score.

``classic_score(kernel_id, query, reference)`` evaluates the independent
implementation from :mod:`repro.reference.classic` with the kernel's
default parameters — the function the bulk verification campaign and the
cross-implementation tests share.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.kernels import get_kernel
from repro.reference import classic


def classic_score(
    kernel_id: int, query: Sequence[Any], reference: Sequence[Any]
) -> float:
    """Textbook score of one pair under a kernel's default parameters."""
    spec = get_kernel(kernel_id)
    p = spec.default_params
    if kernel_id == 1:
        return classic.nw_linear(query, reference, p.match, p.mismatch,
                                 p.linear_gap)
    if kernel_id == 2:
        return classic.gotoh_global(query, reference, p.match, p.mismatch,
                                    p.gap_open, p.gap_extend)
    if kernel_id == 3:
        return classic.sw_linear(query, reference, p.match, p.mismatch,
                                 p.linear_gap)
    if kernel_id == 4:
        return classic.gotoh_local(query, reference, p.match, p.mismatch,
                                   p.gap_open, p.gap_extend)
    if kernel_id == 5:
        return classic.two_piece_global(
            query, reference, p.match, p.mismatch,
            p.gap_open1, p.gap_extend1, p.gap_open2, p.gap_extend2,
        )
    if kernel_id == 6:
        return classic.overlap_score(query, reference, p.match, p.mismatch,
                                     p.linear_gap)
    if kernel_id == 7:
        return classic.semiglobal_score(query, reference, p.match,
                                        p.mismatch, p.linear_gap)
    if kernel_id == 8:
        return classic.profile_global(query, reference, p.sop, p.linear_gap)
    if kernel_id == 9:
        return classic.dtw_distance(query, reference)
    if kernel_id == 10:
        return classic.viterbi_loglik(query, reference, p.log_mu,
                                      p.log_lambda, p.emission)
    if kernel_id == 11:
        return classic.banded_nw_linear(
            query, reference, band=spec.banding,
            match=p.match, mismatch=p.mismatch, gap=p.linear_gap,
        )
    if kernel_id == 12:
        return classic.banded_gotoh_local(
            query, reference, band=spec.banding,
            match=p.match, mismatch=p.mismatch,
            gap_open=p.gap_open, gap_extend=p.gap_extend,
        )
    if kernel_id == 13:
        return classic.banded_two_piece_global(
            query, reference, band=spec.banding,
            match=p.match, mismatch=p.mismatch,
            gap_open1=p.gap_open1, gap_extend1=p.gap_extend1,
            gap_open2=p.gap_open2, gap_extend2=p.gap_extend2,
        )
    if kernel_id == 14:
        return classic.sdtw_distance(query, reference)
    if kernel_id == 15:
        return classic.matrix_local(query, reference, p.matrix, p.linear_gap)
    raise KeyError(f"no classic reference for kernel #{kernel_id}")
