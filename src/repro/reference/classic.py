"""Textbook DP implementations, written independently of the framework.

Each function computes the optimal score of one algorithm with plain
numpy arrays and row sweeps — no KernelSpec, no PE function, no systolic
anything.  Tests compare these against the framework kernels to catch
semantic errors that a shared implementation could mask.

Conventions (deliberately identical to the kernels so scores are
comparable): the query runs along rows, the reference along columns, and
an affine gap of length L costs ``open + L * extend`` (both negative).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

NEG = -1e15


def _sub_matrix(query, reference, match: float, mismatch: float) -> np.ndarray:
    q = np.asarray(query)[:, None]
    r = np.asarray(reference)[None, :]
    return np.where(q == r, float(match), float(mismatch))


def nw_linear(query, reference, match=2, mismatch=-2, gap=-3) -> float:
    """Needleman-Wunsch global score with a linear gap penalty."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    prev = gap * np.arange(m + 1, dtype=float)
    for i in range(1, n + 1):
        curr = np.empty(m + 1)
        curr[0] = gap * i
        for j in range(1, m + 1):
            curr[j] = max(
                prev[j - 1] + sub[i - 1, j - 1], prev[j] + gap, curr[j - 1] + gap
            )
        prev = curr
    return float(prev[m])


def sw_linear(query, reference, match=2, mismatch=-2, gap=-3) -> float:
    """Smith-Waterman local score with a linear gap penalty."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    prev = np.zeros(m + 1)
    best = 0.0
    for i in range(1, n + 1):
        curr = np.zeros(m + 1)
        for j in range(1, m + 1):
            curr[j] = max(
                0.0,
                prev[j - 1] + sub[i - 1, j - 1],
                prev[j] + gap,
                curr[j - 1] + gap,
            )
        best = max(best, curr.max())
        prev = curr
    return float(best)


def gotoh_global(query, reference, match=2, mismatch=-4,
                 gap_open=-4, gap_extend=-2) -> float:
    """Gotoh global score with an affine gap penalty."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    oc = gap_open + gap_extend
    h_prev = gap_open + gap_extend * np.arange(m + 1, dtype=float)
    h_prev[0] = 0.0
    d_prev = np.full(m + 1, NEG)
    for i in range(1, n + 1):
        h = np.empty(m + 1)
        d = np.empty(m + 1)
        ins = NEG
        h[0] = gap_open + gap_extend * i
        d[0] = NEG
        for j in range(1, m + 1):
            ins = max(h[j - 1] + oc, ins + gap_extend)
            d[j] = max(h_prev[j] + oc, d_prev[j] + gap_extend)
            h[j] = max(h_prev[j - 1] + sub[i - 1, j - 1], ins, d[j])
        h_prev, d_prev = h, d
    return float(h_prev[m])


def gotoh_local(query, reference, match=2, mismatch=-4,
                gap_open=-4, gap_extend=-2) -> float:
    """Smith-Waterman-Gotoh local score with an affine gap penalty."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    oc = gap_open + gap_extend
    h_prev = np.zeros(m + 1)
    d_prev = np.full(m + 1, NEG)
    best = 0.0
    for i in range(1, n + 1):
        h = np.zeros(m + 1)
        d = np.empty(m + 1)
        d[0] = NEG
        ins = NEG
        for j in range(1, m + 1):
            ins = max(h[j - 1] + oc, ins + gap_extend)
            d[j] = max(h_prev[j] + oc, d_prev[j] + gap_extend)
            h[j] = max(0.0, h_prev[j - 1] + sub[i - 1, j - 1], ins, d[j])
        best = max(best, h.max())
        h_prev, d_prev = h, d
    return float(best)


def two_piece_global(query, reference, match=2, mismatch=-4,
                     gap_open1=-4, gap_extend1=-2,
                     gap_open2=-24, gap_extend2=-1) -> float:
    """Minimap2-style two-piece affine global score."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    oc1 = gap_open1 + gap_extend1
    oc2 = gap_open2 + gap_extend2
    ks = np.arange(m + 1, dtype=float)
    h_prev = np.maximum(gap_open1 + gap_extend1 * ks, gap_open2 + gap_extend2 * ks)
    h_prev[0] = 0.0
    d1_prev = np.full(m + 1, NEG)
    d2_prev = np.full(m + 1, NEG)
    for i in range(1, n + 1):
        h = np.empty(m + 1)
        d1 = np.empty(m + 1)
        d2 = np.empty(m + 1)
        h[0] = max(gap_open1 + gap_extend1 * i, gap_open2 + gap_extend2 * i)
        d1[0] = d2[0] = NEG
        i1 = i2 = NEG
        for j in range(1, m + 1):
            i1 = max(h[j - 1] + oc1, i1 + gap_extend1)
            i2 = max(h[j - 1] + oc2, i2 + gap_extend2)
            d1[j] = max(h_prev[j] + oc1, d1_prev[j] + gap_extend1)
            d2[j] = max(h_prev[j] + oc2, d2_prev[j] + gap_extend2)
            h[j] = max(h_prev[j - 1] + sub[i - 1, j - 1], i1, d1[j], i2, d2[j])
        h_prev, d1_prev, d2_prev = h, d1, d2
    return float(h_prev[m])


def overlap_score(query, reference, match=2, mismatch=-3, gap=-2) -> float:
    """Overlap alignment: free leading ends, best cell on last row/column."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    prev = np.zeros(m + 1)
    best = NEG
    for i in range(1, n + 1):
        curr = np.zeros(m + 1)
        for j in range(1, m + 1):
            curr[j] = max(
                prev[j - 1] + sub[i - 1, j - 1], prev[j] + gap, curr[j - 1] + gap
            )
        best = max(best, curr[m])
        prev = curr
    best = max(best, prev[1:].max() if m >= 1 else NEG)
    return float(best)


def semiglobal_score(query, reference, match=2, mismatch=-2, gap=-3) -> float:
    """Semi-global: query end-to-end, free reference ends (last-row max)."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    prev = np.zeros(m + 1)
    for i in range(1, n + 1):
        curr = np.empty(m + 1)
        curr[0] = gap * i
        for j in range(1, m + 1):
            curr[j] = max(
                prev[j - 1] + sub[i - 1, j - 1], prev[j] + gap, curr[j - 1] + gap
            )
        prev = curr
    return float(prev.max())


def dtw_distance(query: Sequence[Tuple[float, float]],
                 reference: Sequence[Tuple[float, float]]) -> float:
    """Global DTW distance over complex samples (squared Euclidean cost)."""
    n, m = len(query), len(reference)
    q = np.asarray(query, dtype=float)
    r = np.asarray(reference, dtype=float)
    cost = (
        (q[:, None, 0] - r[None, :, 0]) ** 2
        + (q[:, None, 1] - r[None, :, 1]) ** 2
    )
    big = 1e15
    prev = np.full(m + 1, big)
    prev[0] = 0.0
    for i in range(1, n + 1):
        curr = np.full(m + 1, big)
        for j in range(1, m + 1):
            curr[j] = cost[i - 1, j - 1] + min(
                prev[j - 1], prev[j], curr[j - 1]
            )
        prev = curr
        prev[0] = big
    return float(prev[m])


def sdtw_distance(query: Sequence[int], reference: Sequence[int]) -> float:
    """Semi-global DTW: free start anywhere on the reference, last-row min."""
    n, m = len(query), len(reference)
    big = 1e15
    prev = np.zeros(m + 1)
    for i in range(1, n + 1):
        curr = np.empty(m + 1)
        curr[0] = big
        for j in range(1, m + 1):
            curr[j] = abs(query[i - 1] - reference[j - 1]) + min(
                prev[j - 1], prev[j], curr[j - 1]
            )
        prev = curr
    return float(prev[1:].min())


def viterbi_loglik(query, reference, log_mu: float, log_lambda: float,
                   emission) -> float:
    """Pair-HMM Viterbi log-likelihood (M state at the bottom-right).

    Matches the kernel's simplified transition structure: entering I/D
    costs ``log_mu``, staying costs ``log_lambda``, returning to M is free.
    """
    n, m = len(query), len(reference)
    em = np.asarray(emission, dtype=float)
    M = np.full((n + 1, m + 1), NEG)
    I = np.full((n + 1, m + 1), NEG)
    D = np.full((n + 1, m + 1), NEG)
    M[0, 0] = 0.0
    for j in range(1, m + 1):
        I[0, j] = log_mu + log_lambda * (j - 1)
    for i in range(1, n + 1):
        D[i, 0] = log_mu + log_lambda * (i - 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            M[i, j] = em[query[i - 1], reference[j - 1]] + max(
                M[i - 1, j - 1], I[i - 1, j - 1], D[i - 1, j - 1]
            )
            I[i, j] = max(M[i, j - 1] + log_mu, I[i, j - 1] + log_lambda)
            D[i, j] = max(M[i - 1, j] + log_mu, D[i - 1, j] + log_lambda)
    return float(M[n, m])


def profile_global(query_profile, ref_profile, sop, gap=-3.0) -> float:
    """Global profile-to-profile alignment with Sum-of-Pairs scoring."""
    s = np.asarray(sop, dtype=float)
    q = np.asarray(query_profile, dtype=float)
    r = np.asarray(ref_profile, dtype=float)
    sub = q @ s @ r.T
    n, m = len(q), len(r)
    prev = gap * np.arange(m + 1, dtype=float)
    for i in range(1, n + 1):
        curr = np.empty(m + 1)
        curr[0] = gap * i
        for j in range(1, m + 1):
            curr[j] = max(
                prev[j - 1] + sub[i - 1, j - 1], prev[j] + gap, curr[j - 1] + gap
            )
        prev = curr
    return float(prev[m])


def matrix_local(query, reference, matrix, gap=-5) -> float:
    """Local alignment with an arbitrary substitution matrix (kernel #15)."""
    s = np.asarray(matrix, dtype=float)
    n, m = len(query), len(reference)
    prev = np.zeros(m + 1)
    best = 0.0
    for i in range(1, n + 1):
        curr = np.zeros(m + 1)
        for j in range(1, m + 1):
            curr[j] = max(
                0.0,
                prev[j - 1] + s[query[i - 1], reference[j - 1]],
                prev[j] + gap,
                curr[j - 1] + gap,
            )
        best = max(best, curr.max())
        prev = curr
    return float(best)


def banded_nw_linear(query, reference, band: int,
                     match=2, mismatch=-2, gap=-3) -> float:
    """Needleman-Wunsch restricted to |i - j| <= band."""
    if abs(len(query) - len(reference)) > band:
        raise ValueError("banded global alignment needs |Q - R| <= band")
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    prev = np.full(m + 1, NEG)
    limit = min(m, band)
    prev[: limit + 1] = gap * np.arange(limit + 1, dtype=float)
    for i in range(1, n + 1):
        curr = np.full(m + 1, NEG)
        if i <= band:
            curr[0] = gap * i
        lo, hi = max(1, i - band), min(m, i + band)
        for j in range(lo, hi + 1):
            curr[j] = max(
                prev[j - 1] + sub[i - 1, j - 1],
                prev[j] + gap,
                curr[j - 1] + gap,
            )
        prev = curr
    return float(prev[m])


def banded_gotoh_local(query, reference, band: int, match=2, mismatch=-4,
                       gap_open=-4, gap_extend=-2) -> float:
    """Banded Smith-Waterman-Gotoh local score (kernel #12)."""
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    oc = gap_open + gap_extend
    h_prev = np.zeros(m + 1)
    d_prev = np.full(m + 1, NEG)
    best = 0.0
    for i in range(1, n + 1):
        h = np.full(m + 1, NEG)
        d = np.full(m + 1, NEG)
        if i <= band:
            h[0] = 0.0
        ins = NEG
        lo, hi = max(1, i - band), min(m, i + band)
        for j in range(lo, hi + 1):
            h_left = h[j - 1] if abs(i - (j - 1)) <= band else NEG
            h_up = h_prev[j] if abs((i - 1) - j) <= band else NEG
            h_diag = h_prev[j - 1] if abs((i - 1) - (j - 1)) <= band else NEG
            d_up = d_prev[j] if abs((i - 1) - j) <= band else NEG
            ins = max(h_left + oc, ins + gap_extend) if j > lo else max(
                h_left + oc, NEG
            )
            d[j] = max(h_up + oc, d_up + gap_extend)
            h[j] = max(0.0, h_diag + sub[i - 1, j - 1], ins, d[j])
            best = max(best, h[j])
        h_prev, d_prev = h, d
    return float(best)


def banded_two_piece_global(query, reference, band: int, **kwargs) -> float:
    """Banded two-piece global score via masking (kernel #13).

    Reuses the dense two-piece recurrence with explicit band masks —
    intentionally a different construction than the banded engine.
    """
    match = kwargs.get("match", 2)
    mismatch = kwargs.get("mismatch", -4)
    o1 = kwargs.get("gap_open1", -4)
    e1 = kwargs.get("gap_extend1", -2)
    o2 = kwargs.get("gap_open2", -24)
    e2 = kwargs.get("gap_extend2", -1)
    if abs(len(query) - len(reference)) > band:
        raise ValueError("banded global alignment needs |Q - R| <= band")
    sub = _sub_matrix(query, reference, match, mismatch)
    n, m = len(query), len(reference)
    oc1, oc2 = o1 + e1, o2 + e2

    def in_band(i: int, j: int) -> bool:
        return abs(i - j) <= band

    ks = np.arange(m + 1, dtype=float)
    h_prev = np.maximum(o1 + e1 * ks, o2 + e2 * ks)
    h_prev[0] = 0.0
    h_prev[band + 1:] = NEG
    d1_prev = np.full(m + 1, NEG)
    d2_prev = np.full(m + 1, NEG)
    for i in range(1, n + 1):
        h = np.full(m + 1, NEG)
        d1 = np.full(m + 1, NEG)
        d2 = np.full(m + 1, NEG)
        if i <= band:
            h[0] = max(o1 + e1 * i, o2 + e2 * i)
        i1 = i2 = NEG
        for j in range(max(1, i - band), min(m, i + band) + 1):
            h_left = h[j - 1] if in_band(i, j - 1) else NEG
            i1 = max(h_left + oc1, (i1 if in_band(i, j - 1) else NEG) + e1)
            i2 = max(h_left + oc2, (i2 if in_band(i, j - 1) else NEG) + e2)
            h_up = h_prev[j] if in_band(i - 1, j) else NEG
            d1[j] = max(h_up + oc1, (d1_prev[j] if in_band(i - 1, j) else NEG) + e1)
            d2[j] = max(h_up + oc2, (d2_prev[j] if in_band(i - 1, j) else NEG) + e2)
            h_diag = h_prev[j - 1] if in_band(i - 1, j - 1) else NEG
            h[j] = max(h_diag + sub[i - 1, j - 1], i1, d1[j], i2, d2[j])
        h_prev, d1_prev, d2_prev = h, d1, d2
    return float(h_prev[m])
