"""Reference implementations used as correctness oracles.

Two independent layers of verification back every kernel:

* :mod:`repro.reference.dp_oracle` — a plain row-major evaluation of the
  *same* :class:`~repro.core.spec.KernelSpec`.  Any disagreement with the
  systolic engine isolates a dataflow/scheduling bug in the back-end.
* :mod:`repro.reference.classic` — textbook implementations of the
  underlying algorithms (Needleman-Wunsch, Gotoh, Smith-Waterman, DTW,
  Viterbi, ...) written without the framework.  Any disagreement with the
  oracle isolates a semantic bug in a kernel's ``PE_func``.

:mod:`repro.reference.rescore` closes the loop on tracebacks: replaying a
reported alignment through the scoring model must reproduce the reported
optimal score.
"""

from repro.reference.dp_oracle import oracle_align

__all__ = ["oracle_align"]
