"""Anti-diagonal vectorized scorers for bulk verification campaigns.

The paper functionally verifies every kernel over 1,000 simulated reads;
a pure-Python cell loop makes that expensive.  These scorers evaluate the
linear-gap recurrences one *anti-diagonal* at a time — the same wavefront
order the systolic array uses — with numpy operating on the whole
diagonal at once, which is an order of magnitude faster than the scalar
references while remaining an independent implementation (no KernelSpec,
no engine code).
"""

from __future__ import annotations

import numpy as np

NEG = -1e15


def _repin_floor(values: np.ndarray) -> np.ndarray:
    """Re-pin near-floor scores to exactly ``NEG``.

    Unreachable cells gather ``NEG`` from their neighbours, and arithmetic
    drags the sentinel off its floor (``NEG + gap``, ``NEG + subs``, ...).
    Those drifted values compare *greater* than ``NEG`` itself, so on short
    bands — where a cell may see nothing but sentinels — they survive the
    max-reduction and masquerade as reachable scores.  Any value at or
    below ``NEG / 2`` is unreachable by construction (real scores are
    bounded by sequence length times the largest |parameter|), so clamp it
    back to the exact sentinel before it propagates.
    """
    return np.where(values <= NEG / 2, NEG, values)


def _substitution_matrixless(query, reference, match, mismatch):
    q = np.asarray(query)
    r = np.asarray(reference)
    return np.where(q[:, None] == r[None, :], float(match), float(mismatch))


def nw_linear_score(query, reference, match=2, mismatch=-2, gap=-3) -> float:
    """Needleman-Wunsch score via vectorized anti-diagonal sweeps.

    Cell (i, j) lives on anti-diagonal d = i + j; all its dependencies sit
    on d-1 (up, left) and d-2 (diag), so each diagonal is one vector op.
    """
    n, m = len(query), len(reference)
    sub = _substitution_matrixless(query, reference, match, mismatch)
    # H[d] stored as vector over i in [max(0, d-m), min(n, d)].
    prev2 = np.array([0.0])                      # d = 0: cell (0, 0)
    prev = np.array([float(gap), float(gap)])    # d = 1: (0,1) and (1,0)
    if n + m == 0:
        return 0.0
    if n + m == 1:
        return float(prev[0])

    def bounds(d):
        return max(0, d - m), min(n, d)

    for d in range(2, n + m + 1):
        lo, hi = bounds(d)
        i_vals = np.arange(lo, hi + 1)
        j_vals = d - i_vals
        size = hi - lo + 1
        up = np.full(size, NEG)      # (i-1, j)  on d-1
        left = np.full(size, NEG)    # (i, j-1)  on d-1
        diag = np.full(size, NEG)    # (i-1, j-1) on d-2
        p_lo, p_hi = bounds(d - 1)
        pp_lo, pp_hi = bounds(d - 2)
        # up: index (i-1) into prev
        sel = (i_vals - 1 >= p_lo) & (i_vals - 1 <= p_hi)
        up[sel] = prev[i_vals[sel] - 1 - p_lo]
        # left: index i into prev (j-1 = d-1-i)
        sel = (i_vals >= p_lo) & (i_vals <= p_hi)
        left[sel] = prev[i_vals[sel] - p_lo]
        # diag: index (i-1) into prev2
        sel = (i_vals - 1 >= pp_lo) & (i_vals - 1 <= pp_hi)
        diag[sel] = prev2[i_vals[sel] - 1 - pp_lo]

        interior = (i_vals >= 1) & (j_vals >= 1)
        subs = sub[np.maximum(i_vals - 1, 0), np.maximum(j_vals - 1, 0)]
        curr = _repin_floor(
            np.maximum(np.maximum(up, left) + gap, diag + subs)
        )
        curr = np.where(interior, curr, 0.0)
        # boundary cells: (0, d) and (d, 0)
        if lo == 0:
            curr[0] = gap * d          # cell (0, d)
        if hi == d:                    # cell (d, 0) exists only when d <= n
            curr[-1] = gap * d
        prev2, prev = prev, curr
    # diagonal n + m holds exactly one cell: (n, m)
    return float(prev[0])


def gotoh_global_score(query, reference, match=2, mismatch=-4,
                       gap_open=-4, gap_extend=-2) -> float:
    """Gotoh global score via vectorized anti-diagonal sweeps.

    Three layers per diagonal (H, I, D); every dependency again sits on
    the two previous anti-diagonals, so each step is a handful of vector
    operations regardless of matrix width.
    """
    n, m = len(query), len(reference)
    sub = _substitution_matrixless(query, reference, match, mismatch)
    oc = gap_open + gap_extend

    def bounds(d):
        return max(0, d - m), min(n, d)

    # d = 0
    h_prev2 = np.array([0.0])
    i_prev2 = np.array([NEG])
    d_prev2 = np.array([NEG])
    # d = 1: cells (0, 1) and (1, 0)
    h_prev = np.array([gap_open + gap_extend, gap_open + gap_extend])
    i_prev = np.array([NEG, NEG])
    d_prev = np.array([NEG, NEG])
    if n + m == 0:
        return 0.0
    if n + m == 1:
        return float(h_prev[0])

    for d in range(2, n + m + 1):
        lo, hi = bounds(d)
        i_vals = np.arange(lo, hi + 1)
        j_vals = d - i_vals
        size = hi - lo + 1

        def gather(prev_arr, prev_lo, prev_hi, idx):
            out = np.full(size, NEG)
            sel = (idx >= prev_lo) & (idx <= prev_hi)
            out[sel] = prev_arr[idx[sel] - prev_lo]
            return out

        p_lo, p_hi = bounds(d - 1)
        pp_lo, pp_hi = bounds(d - 2)
        h_up = gather(h_prev, p_lo, p_hi, i_vals - 1)
        d_up = gather(d_prev, p_lo, p_hi, i_vals - 1)
        h_left = gather(h_prev, p_lo, p_hi, i_vals)
        i_left = gather(i_prev, p_lo, p_hi, i_vals)
        h_diag = gather(h_prev2, pp_lo, pp_hi, i_vals - 1)

        ins = _repin_floor(np.maximum(h_left + oc, i_left + gap_extend))
        dele = _repin_floor(np.maximum(h_up + oc, d_up + gap_extend))
        subs = sub[np.maximum(i_vals - 1, 0), np.maximum(j_vals - 1, 0)]
        h = _repin_floor(np.maximum(np.maximum(ins, dele), h_diag + subs))

        boundary_cost = gap_open + gap_extend * d
        interior = (i_vals >= 1) & (j_vals >= 1)
        h = np.where(interior, h, boundary_cost)
        ins = np.where(interior, ins, NEG)
        dele = np.where(interior, dele, NEG)

        h_prev2, i_prev2, d_prev2 = h_prev, i_prev, d_prev
        h_prev, i_prev, d_prev = h, ins, dele
    return float(h_prev[0])


def banded_nw_linear_score(query, reference, band: int,
                           match=2, mismatch=-2, gap=-3) -> float:
    """Banded Needleman-Wunsch (|i - j| <= band) via anti-diagonal sweeps.

    Vector twin of :func:`repro.reference.classic.banded_nw_linear`.  The
    band makes sentinel hygiene load-bearing: a cell at the band edge
    gathers ``NEG`` from its clipped neighbours, and without re-pinning
    (:func:`_repin_floor`) and coordinate masking the drifted near-floor
    values win max-reductions on short bands and leak into real scores.
    """
    n, m = len(query), len(reference)
    if abs(n - m) > band:
        raise ValueError("banded global alignment needs |Q - R| <= band")
    if n + m == 0:
        return 0.0
    sub = _substitution_matrixless(query, reference, match, mismatch)

    def bounds(d):
        return max(0, d - m), min(n, d)

    prev2 = np.array([0.0])                      # d = 0: cell (0, 0)
    lo, hi = bounds(1)
    i_vals = np.arange(lo, hi + 1)
    prev = np.where(np.abs(i_vals - (1 - i_vals)) <= band, float(gap), NEG)
    if n + m == 1:
        return float(prev[0])

    for d in range(2, n + m + 1):
        lo, hi = bounds(d)
        i_vals = np.arange(lo, hi + 1)
        j_vals = d - i_vals
        size = hi - lo + 1
        up = np.full(size, NEG)
        left = np.full(size, NEG)
        diag = np.full(size, NEG)
        p_lo, p_hi = bounds(d - 1)
        pp_lo, pp_hi = bounds(d - 2)
        sel = (i_vals - 1 >= p_lo) & (i_vals - 1 <= p_hi)
        up[sel] = prev[i_vals[sel] - 1 - p_lo]
        sel = (i_vals >= p_lo) & (i_vals <= p_hi)
        left[sel] = prev[i_vals[sel] - p_lo]
        sel = (i_vals - 1 >= pp_lo) & (i_vals - 1 <= pp_hi)
        diag[sel] = prev2[i_vals[sel] - 1 - pp_lo]

        interior = (i_vals >= 1) & (j_vals >= 1)
        subs = sub[np.maximum(i_vals - 1, 0), np.maximum(j_vals - 1, 0)]
        curr = _repin_floor(
            np.maximum(np.maximum(up, left) + gap, diag + subs)
        )
        curr = np.where(interior, curr, 0.0)
        if lo == 0:                    # cell (0, d): in band only if d <= band
            curr[0] = gap * d if d <= band else NEG
        if hi == d:                    # cell (d, 0)
            curr[-1] = gap * d if d <= band else NEG
        # out-of-band cells must hold the *exact* sentinel, or the next
        # diagonal's gathers treat them as (terrible but real) scores
        curr = np.where(np.abs(i_vals - j_vals) <= band, curr, NEG)
        prev2, prev = prev, curr
    # diagonal n + m holds exactly one cell: (n, m), in band by the
    # |Q - R| <= band precondition
    return float(prev[0])


def sw_linear_score(query, reference, match=2, mismatch=-2, gap=-3) -> float:
    """Smith-Waterman score via vectorized anti-diagonal sweeps."""
    n, m = len(query), len(reference)
    sub = _substitution_matrixless(query, reference, match, mismatch)
    best = 0.0
    prev2 = np.array([0.0])
    prev = np.array([0.0, 0.0])
    if n + m < 2:
        return 0.0

    def bounds(d):
        return max(0, d - m), min(n, d)

    for d in range(2, n + m + 1):
        lo, hi = bounds(d)
        i_vals = np.arange(lo, hi + 1)
        j_vals = d - i_vals
        size = hi - lo + 1
        up = np.full(size, NEG)
        left = np.full(size, NEG)
        diag = np.full(size, NEG)
        p_lo, p_hi = bounds(d - 1)
        pp_lo, pp_hi = bounds(d - 2)
        sel = (i_vals - 1 >= p_lo) & (i_vals - 1 <= p_hi)
        up[sel] = prev[i_vals[sel] - 1 - p_lo]
        sel = (i_vals >= p_lo) & (i_vals <= p_hi)
        left[sel] = prev[i_vals[sel] - p_lo]
        sel = (i_vals - 1 >= pp_lo) & (i_vals - 1 <= pp_hi)
        diag[sel] = prev2[i_vals[sel] - 1 - pp_lo]

        interior = (i_vals >= 1) & (j_vals >= 1)
        subs = sub[np.maximum(i_vals - 1, 0), np.maximum(j_vals - 1, 0)]
        curr = np.maximum.reduce(
            [np.zeros(size), up + gap, left + gap, diag + subs]
        )
        curr = np.where(interior, curr, 0.0)
        if curr.size:
            best = max(best, float(curr.max()))
        prev2, prev = prev, curr
    return best
