"""The ``Stage``/``Pipeline`` composition protocol.

Every streaming workload in this repo — the whole-genome read mapper in
:mod:`repro.pipeline`, the app ports in :mod:`repro.apps` — composes the
same way TAPA composes hardware (PAPERS.md): independent task-parallel
stages connected by *bounded* streams.  A :class:`Stage` transforms
chunks; a :class:`Pipeline` wires stages with bounded queues, runs one
thread per stage, and drains gracefully.

Backpressure is reject-not-drop: every queue ``put`` blocks until the
consumer makes room, so a slow stage throttles the whole line back to
the source and **no chunk is ever dropped** (``PipelineReport.dropped``
is structurally zero; it is reported so monitors can assert it).  Drain
is by sentinel: when the source is exhausted a sentinel flows down the
line, each stage gets its :meth:`Stage.finish` chance to flush held
state (e.g. the assembler emitting contigs), and threads exit in
topological order.

Each stage reports through the current :mod:`repro.obs` recorder:

* span ``pipeline.<stage>.process`` around every chunk,
* counters ``pipeline.<stage>.chunks`` / ``pipeline.<stage>.items``,
* gauge ``pipeline.<stage>.queue_depth`` (input occupancy at dequeue),
* histogram ``pipeline.<stage>.queue_ms`` (time a chunk sat queued).

Exact per-stage p50/p95 queue times are additionally kept in
:class:`StageStats` for the benchmark artifact.
"""

from __future__ import annotations

import abc
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.recorder import get_recorder

#: End-of-stream marker flowed through every queue on drain.
_SENTINEL = object()


class Stage(abc.ABC):
    """One transform in a streaming pipeline.

    A stage consumes *chunks* (whatever unit the upstream stage emits —
    typically a list of reads or records, never the whole dataset) and
    emits zero or more output chunks per input.  Stages must not assume
    they see the full stream at once; state that spans chunks is flushed
    in :meth:`finish`.
    """

    @property
    def name(self) -> str:
        """Stable identifier used in metric names (``pipeline.<name>.*``)."""
        return type(self).__name__.lower()

    @abc.abstractmethod
    def process(self, chunk: Any) -> Iterable[Any]:
        """Transform one chunk into zero or more output chunks."""

    def finish(self) -> Iterable[Any]:
        """Flush state held across chunks; called once at drain time."""
        return ()

    def close(self) -> None:
        """Release resources; called after the stage's queue is drained."""


class FnStage(Stage):
    """Adapter lifting a plain ``chunk -> iterable`` function to a Stage."""

    def __init__(self, fn: Callable[[Any], Iterable[Any]], name: str) -> None:
        self._fn = fn
        self._name = name

    @property
    def name(self) -> str:
        """The name given at construction."""
        return self._name

    def process(self, chunk: Any) -> Iterable[Any]:
        """Apply the wrapped function."""
        return self._fn(chunk)


def _percentile(samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of a sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class StageStats:
    """Observed behaviour of one stage across a pipeline run."""

    name: str
    chunks_in: int = 0
    items_out: int = 0
    errors: int = 0
    queue_ms: List[float] = field(default_factory=list)

    @property
    def queue_p50_ms(self) -> float:
        """Median time a chunk sat in this stage's input queue."""
        return _percentile(self.queue_ms, 0.50)

    @property
    def queue_p95_ms(self) -> float:
        """95th-percentile input-queue time."""
        return _percentile(self.queue_ms, 0.95)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (sample list reduced to percentiles)."""
        return {
            "name": self.name,
            "chunks_in": self.chunks_in,
            "items_out": self.items_out,
            "errors": self.errors,
            "queue_p50_ms": round(self.queue_p50_ms, 3),
            "queue_p95_ms": round(self.queue_p95_ms, 3),
        }


@dataclass
class PipelineReport:
    """What one :meth:`Pipeline.run` did, stage by stage.

    ``dropped`` is always 0 — blocking bounded queues cannot drop — and
    is carried so downstream assertions (CI smoke job, monitors) can pin
    the reject-not-drop contract rather than trust it.
    """

    stages: List[StageStats]
    elapsed_s: float
    emitted: int
    dropped: int = 0

    def stage(self, name: str) -> StageStats:
        """Stats of the named stage."""
        for stats in self.stages:
            if stats.name == name:
                return stats
        raise KeyError(f"no stage named {name!r}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe report."""
        return {
            "stages": [stats.to_dict() for stats in self.stages],
            "elapsed_s": round(self.elapsed_s, 6),
            "emitted": self.emitted,
            "dropped": self.dropped,
        }


class PipelineError(RuntimeError):
    """A stage raised; carries the stage name and the original error."""

    def __init__(self, stage_name: str, error: BaseException) -> None:
        super().__init__(f"stage {stage_name!r} failed: {error}")
        self.stage_name = stage_name
        self.error = error


class Pipeline:
    """Bounded-queue, thread-per-stage streaming executor.

    ``queue_bound`` caps every inter-stage queue (and the ingest queue),
    which bounds the pipeline's in-flight memory to
    ``(n_stages + 1) * queue_bound`` chunks regardless of stream length
    — the property the bounded-memory test pins.
    """

    def __init__(self, stages: Sequence[Stage], queue_bound: int = 4) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        self.stages = list(stages)
        self.queue_bound = queue_bound

    # -- execution ----------------------------------------------------

    def run(
        self,
        source: Iterable[Any],
        sink: Optional[Callable[[Any], None]] = None,
    ) -> PipelineReport:
        """Stream ``source`` through every stage, feeding ``sink``.

        The source is pulled lazily by a feeder thread (blocking on the
        first queue for backpressure); the main thread consumes the last
        stage's output and calls ``sink`` per emitted chunk.  Returns
        the per-stage report; raises :class:`PipelineError` if any stage
        (or the source) raised, after all threads have been joined.
        """
        queues: List[queue.Queue] = [
            queue.Queue(maxsize=self.queue_bound)
            for _ in range(len(self.stages) + 1)
        ]
        stats = [StageStats(name=stage.name) for stage in self.stages]
        failures: List[Tuple[str, BaseException]] = []
        failure_lock = threading.Lock()

        def fail(stage_name: str, error: BaseException) -> None:
            with failure_lock:
                failures.append((stage_name, error))

        def feeder() -> None:
            try:
                for chunk in source:
                    queues[0].put((time.monotonic(), chunk))
            except BaseException as exc:  # noqa: BLE001 - reported below
                fail("<source>", exc)
            finally:
                queues[0].put((time.monotonic(), _SENTINEL))

        def worker(index: int, stage: Stage) -> None:
            recorder = get_recorder()
            q_in, q_out = queues[index], queues[index + 1]
            stage_stats = stats[index]
            prefix = f"pipeline.{stage.name}"
            broken = False
            try:
                while True:
                    if recorder.enabled:
                        recorder.gauge(f"{prefix}.queue_depth", q_in.qsize())
                    enqueued_s, chunk = q_in.get()
                    if chunk is _SENTINEL:
                        break
                    waited_ms = (time.monotonic() - enqueued_s) * 1000.0
                    stage_stats.queue_ms.append(waited_ms)
                    if broken:
                        continue  # drain upstream after a failure
                    stage_stats.chunks_in += 1
                    if recorder.enabled:
                        recorder.observe(f"{prefix}.queue_ms", waited_ms)
                        recorder.count(f"{prefix}.chunks")
                    try:
                        with recorder.span(f"{prefix}.process"):
                            outputs = stage.process(chunk)
                        for item in outputs:
                            q_out.put((time.monotonic(), item))
                            stage_stats.items_out += 1
                            if recorder.enabled:
                                recorder.count(f"{prefix}.items")
                    except BaseException as exc:  # noqa: BLE001
                        stage_stats.errors += 1
                        fail(stage.name, exc)
                        broken = True
                if not broken:
                    try:
                        for item in stage.finish():
                            q_out.put((time.monotonic(), item))
                            stage_stats.items_out += 1
                            if recorder.enabled:
                                recorder.count(f"{prefix}.items")
                    except BaseException as exc:  # noqa: BLE001
                        stage_stats.errors += 1
                        fail(stage.name, exc)
            finally:
                q_out.put((time.monotonic(), _SENTINEL))
                try:
                    stage.close()
                except BaseException as exc:  # noqa: BLE001
                    fail(stage.name, exc)

        started_s = time.monotonic()
        threads = [threading.Thread(target=feeder, name="pipeline-feeder")]
        threads += [
            threading.Thread(
                target=worker, args=(i, stage),
                name=f"pipeline-{stage.name}",
            )
            for i, stage in enumerate(self.stages)
        ]
        for thread in threads:
            thread.start()
        emitted = 0
        final = queues[-1]
        sink_failure: Optional[BaseException] = None
        while True:
            _enq, item = final.get()
            if item is _SENTINEL:
                break
            if sink_failure is not None:
                continue  # keep draining so stages can exit
            emitted += 1
            if sink is not None:
                try:
                    sink(item)
                except BaseException as exc:  # noqa: BLE001
                    sink_failure = exc
                    fail("<sink>", exc)
        for thread in threads:
            thread.join()
        elapsed_s = time.monotonic() - started_s
        if failures:
            stage_name, error = failures[0]
            raise PipelineError(stage_name, error) from error
        return PipelineReport(
            stages=stats, elapsed_s=elapsed_s, emitted=emitted, dropped=0
        )

    def run_collect(self, source: Iterable[Any]) -> Tuple[List[Any], PipelineReport]:
        """Convenience: run and collect every emitted chunk into a list.

        Only for streams small enough to hold — the streaming contract
        lives in :meth:`run` with a true sink.
        """
        out: List[Any] = []
        report = self.run(source, sink=out.append)
        return out, report
