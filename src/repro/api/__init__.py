"""Stable public facade: compose stages, align pairs, serve traffic.

``repro.api`` is the one import an application needs:

* :class:`Stage` / :class:`Pipeline` — the composition protocol every
  streaming workload implements (bounded queues, ``process(chunk)``,
  drain semantics); see :mod:`repro.api.stage`.
* :func:`align` — one-shot functional alignment (re-exported from
  :mod:`repro.systolic`).
* :class:`RunOptions` — the documented knob set of
  :meth:`repro.host.runtime.DeviceRuntime.run`.
* :func:`serve` — start an alignment service (in-process TCP server or
  the sharded front door) from a :class:`repro.shard.Deployment`.
* :func:`map_flowcell` — the streaming read-mapping pipeline
  (re-exported from :mod:`repro.pipeline`).

Everything here is covered by the one-release deprecation policy: names
exported from this module do not change signature without a
``DeprecationWarning`` cycle first.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.api.stage import (
    FnStage,
    Pipeline,
    PipelineError,
    PipelineReport,
    Stage,
    StageStats,
)
from repro.host.runtime import RunOptions
from repro.pipeline.flow import MapReport, map_flowcell
from repro.systolic import align


class ServiceHandle:
    """A started single-process alignment service (TCP + batcher core).

    The sharded path returns a :class:`repro.shard.ShardServer`, which
    exposes the same ``address`` / ``metrics_snapshot()`` / ``close()``
    surface; callers of :func:`serve` can treat both uniformly.
    """

    def __init__(self, server: Any, core: Any) -> None:
        self._server = server
        self._core = core

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the service accepts connections on."""
        return self._server.server_address

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The service core's JSON-safe metrics snapshot."""
        return self._core.metrics_snapshot()

    def close(self) -> Dict[str, int]:
        """Stop accepting, drain the batcher, and release the pool."""
        self._server.close()
        self._core.stop()
        return {"service": 0}


def serve(
    deployment: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    shards: int = 1,
) -> Any:
    """Start an alignment service for a :class:`repro.shard.Deployment`.

    ``shards=1`` serves from this process (a
    :class:`~repro.service.AlignmentServer` over a batcher core, with
    the deployment's cache attached); ``shards > 1`` spawns worker
    processes behind the asyncio front door
    (:class:`repro.shard.ShardServer`).  Returns a started handle with
    ``address``, ``metrics_snapshot()`` and ``close()``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > 1:
        from repro.shard import ShardServer

        return ShardServer((host, port), deployment, n_shards=shards).start()
    from repro.service import AlignmentServer

    core = deployment.build_core(cache=deployment.build_cache()).start()
    try:
        server = AlignmentServer((host, port), core)
    except BaseException:
        core.stop()
        raise
    return ServiceHandle(server, core)


__all__ = [
    "Stage",
    "FnStage",
    "Pipeline",
    "PipelineError",
    "PipelineReport",
    "StageStats",
    "RunOptions",
    "ServiceHandle",
    "MapReport",
    "align",
    "map_flowcell",
    "serve",
]
