"""X-Drop adaptive-banded extension alignment (Zhang et al., 2000).

The greedy seed-extension heuristic behind BLAST and Darwin-WGA: starting
from a seed, the DP frontier advances anti-diagonal by anti-diagonal and a
cell is pruned once its score falls more than ``x_drop`` below the best
score seen so far, so the live band adapts to alignment quality instead of
being fixed (Section 2.2.4's *adaptive* category).

The implementation sweeps anti-diagonals (the same wavefront order the
systolic array uses), tracks the live column interval per diagonal, and
returns the best extension score, its end cell, and per-wavefront band
widths — the quantity an adaptive-banded hardware design would need to
provision for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

NEG = -1e15


@dataclass(frozen=True)
class XDropResult:
    """Outcome of one X-Drop extension."""

    score: float
    end: Tuple[int, int]          # (query consumed, reference consumed)
    cells_computed: int
    band_widths: Tuple[int, ...]  # live cells per anti-diagonal

    @property
    def max_band(self) -> int:
        """Widest live band — the adaptive analogue of BANDWIDTH."""
        return max(self.band_widths) if self.band_widths else 0


def xdrop_extend(
    query: Sequence[int],
    reference: Sequence[int],
    match: float = 2,
    mismatch: float = -3,
    gap: float = -3,
    x_drop: float = 20.0,
) -> XDropResult:
    """Extend an alignment from (0, 0) under the X-Drop criterion.

    Scores use the linear gap model.  Extension stops when every cell of
    the current anti-diagonal has been pruned.
    """
    if x_drop <= 0:
        raise ValueError(f"x_drop must be positive, got {x_drop}")
    n, m = len(query), len(reference)
    if n == 0 or m == 0:
        return XDropResult(0.0, (0, 0), 0, ())

    # prev2/prev hold scores of the two previous anti-diagonals; index by
    # i (query offset).  Anti-diagonal d holds cells (i, d - i).
    best = 0.0
    best_end = (0, 0)
    cells = 0
    widths: List[int] = []
    prev = {0: 0.0}    # anti-diagonal d = 0: the origin cell (0, 0)
    prev2: dict = {}   # anti-diagonal d = -1: empty
    for d in range(1, n + m + 1):
        curr: dict = {}
        i_min = max(0, d - m)
        i_max = min(n, d)
        for i in range(i_min, i_max + 1):
            j = d - i
            # neighbours on anti-diagonals d-1 (up: i-1, left: i) and d-2
            up = prev.get(i - 1, NEG) if i >= 1 else NEG
            left = prev.get(i, NEG) if j >= 1 else NEG
            diag = prev2.get(i - 1, NEG) if (i >= 1 and j >= 1) else NEG
            if i >= 1 and j >= 1:
                sub = match if query[i - 1] == reference[j - 1] else mismatch
                score = max(diag + sub, up + gap, left + gap)
            elif i == 0:
                score = left + gap if left > NEG / 2 else NEG
            else:  # j == 0
                score = up + gap if up > NEG / 2 else NEG
            if score <= NEG / 2:
                continue
            cells += 1
            if score > best:
                best = score
                best_end = (i, j)
            if score >= best - x_drop:   # the X-Drop liveness test
                curr[i] = score
        widths.append(len(curr))
        if not curr:
            break
        prev2, prev = prev, curr
    return XDropResult(
        score=best, end=best_end, cells_computed=cells,
        band_widths=tuple(widths),
    )
