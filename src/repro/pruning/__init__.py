"""Search-space pruning heuristics beyond fixed banding (Section 2.2.4).

Fixed banding is a compile-time property of a kernel (``KernelSpec.banding``);
*adaptive* pruning like X-Drop [Zhang et al. 2000], used by Darwin-WGA's
BSW accelerator, decides cell liveness from scores at runtime.
:mod:`repro.pruning.xdrop` implements X-Drop extension alignment as a
host-visible algorithm over the same scoring models.
"""

from repro.pruning.xdrop import XDropResult, xdrop_extend

__all__ = ["XDropResult", "xdrop_extend"]
