"""Whole-flowcell pipeline benchmark; writes ``BENCH_pipeline.json``.

Maps a simulated long-read flowcell (32 reads x 512 bp) against a
multi-megabase reference twice through one shared tile cache: the cold
pass measures end-to-end streaming throughput, the warm pass measures
what the cache turns the same flowcell into.  The committed artifact
records reads/sec, the tile cache hit rate, and per-stage queue
percentiles, so CI can detect pipeline regressions by regenerating it
and diffing within a band (``benchmarks/bench_diff.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cache.facade import CacheStack
from repro.data.fastq import write_flowcell
from repro.data.genome import random_genome
from repro.data.sam import iter_sam
from repro.pipeline import map_flowcell

from benchmarks.conftest import emit

BENCH_PIPELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"

GENOME_LEN = 2_000_000
N_READS = 32
READ_LEN = 512


def _pass_dict(report) -> dict:
    """The per-pass slice of the artifact: throughput + stage queues."""
    return {
        "elapsed_s": report.elapsed_s,
        "reads_per_sec": report.reads_per_sec,
        "mapped": report.mapped,
        "tiles": report.tiles,
        "tile_cache_hit_rate": report.tile_hit_rate,
        "stages": {
            name: {
                "queue_p50_ms": stats["queue_p50_ms"],
                "queue_p95_ms": stats["queue_p95_ms"],
            }
            for name, stats in report.to_dict()["stages"].items()
        },
    }


def test_flowcell_mapping_writes_bench_json(tmp_path):
    """Cold + warm flowcell passes through one cache; commit the numbers.

    The warm-speedup floor (>= 2x) is the pipeline's cache-integration
    claim: every tile of an identical flowcell must come out of the
    cache, so the second pass pays only seeding + stitching.
    """
    genome = random_genome(GENOME_LEN, seed=11)
    fastq = tmp_path / "flowcell.fastq"
    n = write_flowcell(
        fastq, genome, N_READS, length=READ_LEN, error_rate=0.12, seed=12
    )
    assert n == N_READS

    stack = CacheStack()
    cold_sam = tmp_path / "cold.sam"
    warm_sam = tmp_path / "warm.sam"
    cold = map_flowcell(fastq, genome, cold_sam, cache=stack)
    warm = map_flowcell(fastq, genome, warm_sam, cache=stack)

    assert cold.reads == N_READS and warm.reads == N_READS
    assert cold.mapped > 0
    assert cold.pipeline.dropped == 0 and warm.pipeline.dropped == 0
    assert sum(1 for _ in iter_sam(cold_sam)) == N_READS
    assert cold_sam.read_bytes() == warm_sam.read_bytes()
    assert warm.tile_hit_rate == 1.0

    speedup = cold.elapsed_s / warm.elapsed_s
    assert speedup >= 2.0, (
        f"warm flowcell pass only {speedup:.2f}x faster than cold"
    )

    doc = {
        "schema": "bench-pipeline/v1",
        "genome_length": GENOME_LEN,
        "n_reads": N_READS,
        "read_length": READ_LEN,
        "mapped": cold.mapped,
        "cold": _pass_dict(cold),
        "warm": _pass_dict(warm),
        "warm_speedup": speedup,
    }
    BENCH_PIPELINE_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"flowcell mapping — {N_READS} reads x {READ_LEN} bp vs "
        f"{GENOME_LEN / 1e6:.0f} Mb reference, tile cache shared",
    ]
    for label, report in (("cold", cold), ("warm", warm)):
        lines.append(
            f"  {label}: {report.reads_per_sec:6.1f} reads/s "
            f"({report.elapsed_s:.2f} s), {report.mapped}/{report.reads} "
            f"mapped, tile hit rate {report.tile_hit_rate:.2f}"
        )
    lines.append(f"  warm speedup {speedup:.1f}x -> BENCH_pipeline.json")
    emit("pipeline_flowcell", "\n".join(lines))
