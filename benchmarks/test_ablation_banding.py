"""Ablation: fixed band width — throughput gained vs alignment score lost.

Banding is the paper's main search-space pruning lever (kernels #11-13).
Sweeping the band half-width on noisy 128-base read pairs shows the
trade-off a deployer navigates: narrow bands multiply throughput but start
truncating indel-rich optimal paths.
"""

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.kernels import get_kernel
from repro.kernels.variants import make_banded
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna

LENGTH = 128
BANDS = (4, 8, 16, 32, 64)


def sweep_bands():
    base = get_kernel(1)
    ref = random_dna(LENGTH, seed=5)
    qry = mutated_copy(ref, seed=6, error_rate=0.15)[:LENGTH]
    qry = qry + ref[len(qry):]  # equalise lengths for banded-global validity
    exact = align(base, qry, ref, n_pe=16)
    rows = [("none", exact.score, exact.cycles.compute_cycles, 1.0, 100.0)]
    for band in BANDS:
        spec = make_banded(base, band)
        result = align(spec, qry, ref, n_pe=16)
        rows.append(
            (
                band,
                result.score,
                result.cycles.compute_cycles,
                exact.cycles.compute_cycles / result.cycles.compute_cycles,
                100.0 * result.score / exact.score,
            )
        )
    return rows, exact


def test_ablation_band_width(benchmark):
    rows, exact = benchmark.pedantic(sweep_bands, rounds=2, iterations=1)
    emit(
        "ablation_banding",
        format_table(
            headers=["band", "score", "compute cycles", "speedup", "% of optimal"],
            rows=rows,
            title="Ablation — fixed band width (kernel #1 base, 128 bp, 15% error)",
        ),
    )
    banded = rows[1:]
    # speedup grows monotonically as the band narrows
    speedups = [r[3] for r in banded]
    assert speedups == sorted(speedups, reverse=True)
    # a generous band is lossless; the narrowest may truncate the optimum
    assert banded[-1][1] == exact.score          # band 64: exact
    assert all(r[1] <= exact.score for r in banded)
