"""Benchmark: robustness of the reproduction to its calibrated constants.

Perturbs each fitted constant by ±20-25 % and re-measures the headline
quantities; no claimed direction (DP-HLS beats SeqAn3, RTL beats DP-HLS
by a modest margin) may flip.
"""

from benchmarks.conftest import emit
from repro.experiments import sensitivity


def test_sensitivity(benchmark):
    rows = benchmark.pedantic(sensitivity.run_sensitivity, rounds=2, iterations=1)
    emit("sensitivity", sensitivity.render(rows))
    for row in rows:
        if row.output == "seqan_min_speedup":
            assert row.perturbed_value > 1.0
        if row.output == "gact_margin_pct":
            assert 0.0 < row.perturbed_value < 20.0
        assert abs(row.relative_change) < 0.30
