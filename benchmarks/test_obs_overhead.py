"""Overhead of the observability layer on the engine hot path.

The acceptance bar for :mod:`repro.obs` is that the *disabled* mode
(the default :class:`~repro.obs.NullRecorder`) costs under 5 % on the
engine hot loop.  Since the instrumented engine is the only engine, the
honest measurement is the cost of the recorder calls the engine now
makes, compared against the wall-clock of the alignment that makes
them: per chunk the engine takes one ``enabled`` check (no per-chunk
span is even constructed when disabled), and per alignment one null
span plus the final ``enabled`` check.
"""

import time

import pytest

from repro.kernels import get_kernel
from repro.obs import NULL_RECORDER, TraceRecorder, use_recorder
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna

LENGTH = 96


@pytest.fixture(scope="module")
def dna_pair():
    reference = random_dna(LENGTH, seed=1)
    query = mutated_copy(reference, seed=2)[:LENGTH]
    return query, reference


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_null_recorder_overhead_under_5_percent(dna_pair):
    """The disabled recorder's calls are <5 % of one alignment's time."""
    spec = get_kernel(1)
    query, reference = dna_pair

    align_s = _best_of(3, lambda: align(spec, query, reference, n_pe=16))

    # The per-alignment disabled-mode footprint: the engine wrapper takes
    # one enabled check and skips straight into the implementation; inside,
    # each chunk takes one `tracing` check, the traceback takes one null
    # span, and the counter block takes one final enabled check.  Model it
    # generously: one null span plus one enabled check per *wavefront*
    # (hundreds of times more call sites than the engine actually has).
    n_wavefronts = (len(query) + len(reference)) * 2

    def recorder_calls():
        recorder = NULL_RECORDER
        for _ in range(n_wavefronts):
            if recorder.enabled:
                raise AssertionError("null recorder must be disabled")
            with recorder.span("engine.chunk"):
                pass

    calls_s = _best_of(5, recorder_calls)
    overhead = calls_s / align_s
    assert overhead < 0.05, (
        f"null-recorder overhead {overhead:.2%} of one alignment "
        f"({calls_s * 1e6:.1f}us vs {align_s * 1e3:.2f}ms)"
    )


def test_tracing_cost_is_bounded(dna_pair):
    """Full tracing stays within a small constant factor of disabled mode.

    Not a hard product requirement (tracing is opt-in), but a guard
    against accidentally quadratic capture costs.
    """
    spec = get_kernel(1)
    query, reference = dna_pair

    plain_s = _best_of(3, lambda: align(spec, query, reference, n_pe=16))

    def traced():
        with use_recorder(TraceRecorder()):
            align(spec, query, reference, n_pe=16)

    traced_s = _best_of(3, traced)
    assert traced_s < plain_s * 3.0, (
        f"tracing cost {traced_s / plain_s:.1f}x the disabled-mode run"
    )


def test_engine_benchmark_unchanged_under_null_recorder(benchmark, dna_pair):
    """The stock engine benchmark, for regression tracking over time."""
    spec = get_kernel(1)
    query, reference = dna_pair
    result = benchmark(align, spec, query, reference, n_pe=16)
    assert result.score is not None
