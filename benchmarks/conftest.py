"""Benchmark-suite helpers: every benchmark also emits its table/series.

Rendered outputs land in ``benchmarks/output/`` so the regenerated
tables/figures can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    """Print a rendered experiment and persist it as an artifact."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
