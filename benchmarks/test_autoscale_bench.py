"""Closed-loop autoscaling benchmark: SLO violation -> automatic recovery.

Runs the full :func:`repro.autoscale.run_autoscale_demo` loop — paced
replicas, step load profile, watch/plan/actuate controller — and writes
the committed ``BENCH_autoscale.json`` artifact at the repo root.  CI
regenerates the artifact and diffs it against the committed copy with
``benchmarks/bench_diff.py`` (machine-dependent counters on the skip
list), so the headline claim — *the single replica saturates, the
controller scales up, the recovery-phase p99 returns under the SLO* —
is re-proven on every run, not just asserted once.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.autoscale import run_autoscale_demo

from benchmarks.conftest import emit

BENCH_AUTOSCALE_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_autoscale.json"
)

#: Keys whose values are machine- or run-dependent (timing-driven
#: counters and the replica trajectory).  ``bench_diff`` still enforces
#: their presence; CI passes these via ``--skip``.
VARIABLE_KEYS = (
    "cpus",
    "sent",
    "ok",
    "rejected",
    "scale_up_decisions",
    "scale_down_decisions",
    "replicas_initial",
    "replicas_final",
)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_autoscale_demo_writes_bench_json():
    report = run_autoscale_demo(
        kernels=(1,),
        rate_rps=5.0,
        duration_s=24.0,
        interval_s=0.5,
        slo_ms=400.0,
        max_replicas=6,
        cooldown_s=1.5,
        per_replica_rps=30.0,
        seed=7,
        keep_decisions=False,
    )

    # The honesty gates: the overload really happened, the controller
    # really acted, and the post-recovery tail really came back.
    assert report["errors"] == 0
    assert report["slo_violated"] is True
    assert report["scale_up_decisions"] >= 1
    assert report["recovered"] is True
    assert report["recovered_p99_ms"] is not None
    assert report["recovered_p99_ms"] <= report["slo_target_ms"]
    assert report["violation_p99_ms"] > report["slo_target_ms"]

    doc = {
        "schema": "bench-autoscale/v1",
        "cpus": _available_cpus(),
        **{k: v for k, v in report.items() if k != "schema"},
    }
    BENCH_AUTOSCALE_PATH.write_text(json.dumps(doc, indent=2,
                                               sort_keys=True) + "\n")

    lines = [
        "autoscale closed loop (step x8 at t=6s, slo "
        f"{report['slo_target_ms']:.0f}ms)",
        f"  baseline  p99 {report['baseline_p99_ms']:8.1f} ms",
        f"  violation p99 {report['violation_p99_ms']:8.1f} ms"
        f"  (violated={report['slo_violated']})",
        f"  recovered p99 {report['recovered_p99_ms']:8.1f} ms"
        f"  (recovered={report['recovered']})",
        f"  scale-ups {report['scale_up_decisions']}, replicas "
        f"{report['replicas_initial']} -> {report['replicas_final']}",
    ]
    emit("autoscale_demo", "\n".join(lines))
