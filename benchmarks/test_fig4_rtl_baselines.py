"""Benchmark: regenerate Fig. 4 (DP-HLS vs GACT / BSW / SquiggleFilter).

Throughput margins must land near the published 7.7 % / 16.8 % / 8.16 %
and LUT/FF usage must stay comparable.
"""

from benchmarks.conftest import emit
from repro.experiments import fig4


def test_fig4(benchmark):
    comparisons = benchmark(fig4.build_fig4)
    emit("fig4", fig4.render(comparisons))
    for c in comparisons:
        assert c.rtl_aln_per_sec >= c.dp_hls_aln_per_sec
        assert abs(c.margin_pct - c.paper_margin_pct) < 3.0
        assert 0.8 < c.rtl_lut / c.dp_hls_lut <= 1.0
