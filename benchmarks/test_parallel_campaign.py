"""Microbench: serial vs parallel verification-campaign wall-clock.

Runs the standard broad-tier campaign workload (kernels #1-#3, 16 pairs
each at length 48) through ``run_full_campaign`` at several worker
counts and emits the wall-clock table.  On a multi-core box the 4-worker
run must be at least 2x faster than serial; on boxes with fewer usable
cores the speedup is physically capped, so the test instead bounds the
pool's overhead and still emits the measured numbers.
"""

import os
import time

from benchmarks.conftest import emit
from repro.campaign import run_full_campaign

KERNELS = (1, 2, 3)
N_PAIRS = 16
MAX_LENGTH = 48
WORKER_COUNTS = (1, 2, 4)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _run(workers: int):
    started = time.perf_counter()
    report = run_full_campaign(
        kernels=KERNELS, n_pairs=N_PAIRS, engine_sample=1,
        max_length=MAX_LENGTH, seed=0, workers=workers,
    )
    return report, time.perf_counter() - started


def test_parallel_campaign_speedup():
    """Serial and parallel campaigns agree; parallelism buys wall-clock."""
    cores = _usable_cores()
    rows = []
    summaries = {}
    timings = {}
    for workers in WORKER_COUNTS:
        report, elapsed = _run(workers)
        assert report.passed, report.summary()
        summaries[workers] = report.summary()
        timings[workers] = elapsed
    for workers in WORKER_COUNTS:
        rows.append(
            f"{workers:>8} {timings[workers]:>10.2f} "
            f"{timings[1] / timings[workers]:>8.2f}x"
        )
    speedup4 = timings[1] / timings[4]
    text = "\n".join(
        [
            "parallel campaign microbench "
            f"(kernels {KERNELS}, {N_PAIRS} pairs x len {MAX_LENGTH}, "
            f"{cores} usable cores)",
            f"{'workers':>8} {'seconds':>10} {'speedup':>9}",
            *rows,
        ]
    )
    emit("parallel_campaign", text)

    # Worker count must never change the verdict.
    assert summaries[2] == summaries[1]
    assert summaries[4] == summaries[1]

    if cores >= 4:
        # The acceptance bar: >= 2x at 4 workers on a multi-core host.
        assert speedup4 >= 2.0, text
    else:
        # Single/dual-core box: parallel speedup is physically capped, so
        # bound the pool's overhead instead of asserting the impossible.
        assert timings[4] <= timings[1] * 1.6, text
