"""Microbench: service latency and throughput vs offered load.

Drives the in-proc alignment service open-loop at several offered-load
points (fractions of a measured single-runtime capacity estimate) and
records achieved throughput plus exact p50/p95/p99 latency per point.
The classic serving curve must emerge: latency grows with offered load,
and achieved throughput tracks the offer while the service is
uncongested.  The summary table lands in ``benchmarks/output/`` as text
and the raw points as JSON.
"""

import json
import time

import numpy as np

from benchmarks.conftest import OUTPUT_DIR, emit
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service import (
    BatcherConfig,
    DevicePool,
    InProcClient,
    LoadGenerator,
    ServiceCore,
)
from repro.synth import LaunchConfig

KERNEL_IDS = (1, 3)
PAIR_LENGTH = 16
PAIRS_PER_KERNEL = 8
REQUESTS_PER_POINT = 80
#: Offered load as a fraction of the measured serial alignment capacity.
LOAD_FRACTIONS = (0.25, 0.5, 1.0)


def _random_pair(length: int, seed: int):
    rng = np.random.RandomState(seed)
    return (
        tuple(int(b) for b in rng.randint(0, 4, size=length)),
        tuple(int(b) for b in rng.randint(0, 4, size=length)),
    )


def _workload():
    workload = []
    for k, kernel_id in enumerate(KERNEL_IDS):
        for index in range(PAIRS_PER_KERNEL):
            query, reference = _random_pair(
                PAIR_LENGTH, seed=1000 * k + index
            )
            workload.append((kernel_id, query, reference))
    return workload


def _calibrate_capacity(pool: DevicePool, workload) -> float:
    """Alignments/second of one runtime on this box (serial estimate)."""
    member = pool.members[0]
    kernel_id = member.kernel_id
    pairs = [(q, r) for kid, q, r in workload if kid == kernel_id][:4]
    started = time.perf_counter()
    for query, reference in pairs:
        member.runtime.run([(query, reference)])
    per_alignment = (time.perf_counter() - started) / len(pairs)
    return 1.0 / per_alignment


def test_service_latency_vs_offered_load():
    """Measure the latency/throughput curve at three offered loads."""
    config = LaunchConfig(
        n_pe=8, n_b=4, n_k=1, max_query_len=64, max_ref_len=64
    )
    pool = DevicePool([
        DeviceRuntime(get_kernel(kernel_id), config)
        for kernel_id in KERNEL_IDS
    ])
    workload = _workload()
    capacity = _calibrate_capacity(pool, workload)
    core = ServiceCore(pool, BatcherConfig(
        max_batch=4, max_delay_ms=10.0, max_queue_depth=4096
    )).start()
    client = InProcClient(core)
    generator = LoadGenerator(client, workload, seed=7)
    points = []
    try:
        for fraction in LOAD_FRACTIONS:
            rate = max(20.0, capacity * fraction)
            report = generator.run(rate, REQUESTS_PER_POINT)
            assert report.errors == 0, report.summary()
            assert report.ok + report.rejected == report.sent
            assert report.ok > 0
            points.append((fraction, report))
    finally:
        core.stop()

    # Throughput must track the offer while uncongested: the lightest
    # point is far below capacity, so nearly everything completes.
    lightest = points[0][1]
    assert lightest.rejected == 0
    assert lightest.achieved_rps > 0.5 * lightest.offered_rps

    rows = [
        "service latency vs offered load "
        f"(kernels {KERNEL_IDS}, len {PAIR_LENGTH}, "
        f"{REQUESTS_PER_POINT} req/point, "
        f"~{capacity:.0f} aln/s serial capacity)",
        f"{'load':>6} {'offered':>9} {'achieved':>9} {'ok':>4} {'rej':>4} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}",
    ]
    for fraction, report in points:
        rows.append(
            f"{fraction:>5.2f}x {report.offered_rps:>9.1f} "
            f"{report.achieved_rps:>9.1f} {report.ok:>4} "
            f"{report.rejected:>4} "
            f"{report.percentile_ms(0.50):>8.2f} "
            f"{report.percentile_ms(0.95):>8.2f} "
            f"{report.percentile_ms(0.99):>8.2f}"
        )
    emit("service_latency", "\n".join(rows))
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "service_latency.json").write_text(json.dumps(
        {
            "kernels": list(KERNEL_IDS),
            "pair_length": PAIR_LENGTH,
            "requests_per_point": REQUESTS_PER_POINT,
            "serial_capacity_rps": capacity,
            "points": [
                {"load_fraction": fraction, **report.to_dict()}
                for fraction, report in points
            ],
        },
        indent=2,
        sort_keys=True,
    ) + "\n")
