"""Microbench: service latency/throughput, single-process and sharded.

Two experiments share this module:

* the classic serving curve — the in-proc service driven open-loop at
  several offered-load points (fractions of a measured single-runtime
  capacity), recording achieved throughput and exact p50/p95/p99;
* shard scaling — the same closed-loop all-miss (engine-bound)
  workload pushed through a 1-shard and a 2-shard
  :class:`~repro.shard.ShardServer`, plus a warm pass for per-shard
  cache hit rates.  The committed ``BENCH_service.json`` records both
  configurations and the cold-path speedup.

The summary tables land in ``benchmarks/output/`` as text and the raw
points as JSON.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import OUTPUT_DIR, emit
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.service import (
    AlignmentClient,
    BatcherConfig,
    DevicePool,
    InProcClient,
    LoadGenerator,
    ServiceCore,
    Status,
)
from repro.service.client import exact_percentile
from repro.shard import Deployment, ShardServer
from repro.synth import LaunchConfig

BENCH_SERVICE_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_service.json"
)

KERNEL_IDS = (1, 3)
PAIR_LENGTH = 16
PAIRS_PER_KERNEL = 8
REQUESTS_PER_POINT = 80
#: Offered load as a fraction of the measured serial alignment capacity.
LOAD_FRACTIONS = (0.25, 0.5, 1.0)


def _random_pair(length: int, seed: int):
    rng = np.random.RandomState(seed)
    return (
        tuple(int(b) for b in rng.randint(0, 4, size=length)),
        tuple(int(b) for b in rng.randint(0, 4, size=length)),
    )


def _workload():
    workload = []
    for k, kernel_id in enumerate(KERNEL_IDS):
        for index in range(PAIRS_PER_KERNEL):
            query, reference = _random_pair(
                PAIR_LENGTH, seed=1000 * k + index
            )
            workload.append((kernel_id, query, reference))
    return workload


def _calibrate_capacity(pool: DevicePool, workload) -> float:
    """Alignments/second of one runtime on this box (serial estimate)."""
    member = pool.members[0]
    kernel_id = member.kernel_id
    pairs = [(q, r) for kid, q, r in workload if kid == kernel_id][:4]
    started = time.perf_counter()
    for query, reference in pairs:
        member.runtime.run([(query, reference)])
    per_alignment = (time.perf_counter() - started) / len(pairs)
    return 1.0 / per_alignment


def test_service_latency_vs_offered_load():
    """Measure the latency/throughput curve at three offered loads."""
    config = LaunchConfig(
        n_pe=8, n_b=4, n_k=1, max_query_len=64, max_ref_len=64
    )
    pool = DevicePool([
        DeviceRuntime(get_kernel(kernel_id), config)
        for kernel_id in KERNEL_IDS
    ])
    workload = _workload()
    capacity = _calibrate_capacity(pool, workload)
    core = ServiceCore(pool, BatcherConfig(
        max_batch=4, max_delay_ms=10.0, max_queue_depth=4096
    )).start()
    client = InProcClient(core)
    generator = LoadGenerator(client, workload, seed=7)
    points = []
    try:
        for fraction in LOAD_FRACTIONS:
            rate = max(20.0, capacity * fraction)
            report = generator.run(rate, REQUESTS_PER_POINT)
            assert report.errors == 0, report.summary()
            assert report.ok + report.rejected == report.sent
            assert report.ok > 0
            points.append((fraction, report))
    finally:
        core.stop()

    # Throughput must track the offer while uncongested: the lightest
    # point is far below capacity, so nearly everything completes.
    lightest = points[0][1]
    assert lightest.rejected == 0
    assert lightest.achieved_rps > 0.5 * lightest.offered_rps

    rows = [
        "service latency vs offered load "
        f"(kernels {KERNEL_IDS}, len {PAIR_LENGTH}, "
        f"{REQUESTS_PER_POINT} req/point, "
        f"~{capacity:.0f} aln/s serial capacity)",
        f"{'load':>6} {'offered':>9} {'achieved':>9} {'ok':>4} {'rej':>4} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}",
    ]
    for fraction, report in points:
        rows.append(
            f"{fraction:>5.2f}x {report.offered_rps:>9.1f} "
            f"{report.achieved_rps:>9.1f} {report.ok:>4} "
            f"{report.rejected:>4} "
            f"{report.percentile_ms(0.50):>8.2f} "
            f"{report.percentile_ms(0.95):>8.2f} "
            f"{report.percentile_ms(0.99):>8.2f}"
        )
    emit("service_latency", "\n".join(rows))
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "service_latency.json").write_text(json.dumps(
        {
            "kernels": list(KERNEL_IDS),
            "pair_length": PAIR_LENGTH,
            "requests_per_point": REQUESTS_PER_POINT,
            "serial_capacity_rps": capacity,
            "points": [
                {"load_fraction": fraction, **report.to_dict()}
                for fraction, report in points
            ],
        },
        indent=2,
        sort_keys=True,
    ) + "\n")


def test_service_latency_under_step_profile():
    """Phase-wise latency under a shifting (step) load profile.

    The open-loop generator multiplies its arrival rate 4x mid-run; the
    report's completion-stamped samples let each phase be scored with
    its own windowed percentiles — the same measurement the autoscaler
    acts on (see ``docs/autoscale.md``), here against a *fixed* pool so
    the table shows what congestion looks like when nobody intervenes.
    """
    from repro.service import LoadProfile

    config = LaunchConfig(
        n_pe=8, n_b=4, n_k=1, max_query_len=64, max_ref_len=64
    )
    pool = DevicePool([
        DeviceRuntime(get_kernel(kernel_id), config)
        for kernel_id in KERNEL_IDS
    ])
    workload = _workload()
    capacity = _calibrate_capacity(pool, workload)
    core = ServiceCore(pool, BatcherConfig(
        max_batch=4, max_delay_ms=10.0, max_queue_depth=4096
    )).start()
    duration_s = 3.0
    step_at = duration_s / 2.0
    profile = LoadProfile(kind="step", t0_s=step_at, multiplier=4.0)
    base_rate = max(20.0, capacity * 0.25)
    try:
        generator = LoadGenerator(InProcClient(core), workload, seed=13)
        report = generator.run(
            base_rate, duration_s=duration_s, profile=profile,
            result_timeout=120.0,
        )
    finally:
        core.stop()

    assert report.errors == 0, report.summary()
    assert report.ok > 0
    before = report.window_latencies_ms(0.0, step_at)
    after = report.window_latencies_ms(step_at, float("inf"))
    # The step multiplies arrivals; the completion record must show it.
    assert len(after) + report.rejected > len(before)

    def _p(window, q):
        value = report.window_percentile_ms(window[0], window[1], q)
        return f"{value:8.2f}" if value is not None else f"{'-':>8}"

    phases = [
        ("baseline", (0.0, step_at)),
        ("stepped", (step_at, float("inf"))),
    ]
    rows = [
        "service latency under step profile "
        f"({profile.describe()}, base {base_rate:.1f} rps, "
        f"fixed pool, {report.ok} ok / {report.rejected} rejected)",
        f"{'phase':>9} {'compl':>6} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'p99 ms':>8}",
    ]
    for name, window in phases:
        count = len(report.window_latencies_ms(*window))
        rows.append(
            f"{name:>9} {count:>6} {_p(window, 0.50)} "
            f"{_p(window, 0.95)} {_p(window, 0.99)}"
        )
    emit("service_step_profile", "\n".join(rows))
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "service_step_profile.json").write_text(json.dumps(
        {
            "profile": profile.describe(),
            "base_rate_rps": base_rate,
            "duration_s": duration_s,
            "phases": {
                name: {
                    "completions": len(report.window_latencies_ms(*w)),
                    "p99_ms": report.window_percentile_ms(*w, 0.99),
                }
                for name, w in phases
            },
            **report.to_dict(),
        },
        indent=2,
        sort_keys=True,
    ) + "\n")


# -- shard scaling -----------------------------------------------------

SHARD_KERNEL = 1
SHARD_PAIRS = 64
SHARD_LENGTH = 48
#: Workload seed offset; chosen so the 2-shard fingerprint split is
#: reasonably even (hash luck varies the split a few keys either way).
SHARD_SEED = 5000


def _shard_workload():
    """Distinct engine-bound pairs (every fingerprint unique)."""
    workload = []
    for index in range(SHARD_PAIRS):
        query, reference = _random_pair(
            SHARD_LENGTH, seed=SHARD_SEED + index
        )
        workload.append((SHARD_KERNEL, query, reference))
    return workload


def _closed_loop_pass(client, workload):
    """Fire the whole workload at once; wait for every answer.

    Closed-loop on purpose: the question is sustained capacity, not
    queueing under a Poisson offer, so the measurement is simply
    ``n / wall`` with everything in flight.
    """
    started = time.perf_counter()
    slots = [
        client.submit(kernel_id, query, reference)
        for kernel_id, query, reference in workload
    ]
    responses = [slot.result(timeout=600.0) for slot in slots]
    elapsed = time.perf_counter() - started
    assert all(r.status is Status.OK for r in responses)
    latencies = [
        r.latency_ms for r in responses if r.latency_ms is not None
    ]
    return {
        "elapsed_s": elapsed,
        "throughput_rps": len(workload) / elapsed,
        "p50_ms": exact_percentile(latencies, 0.50),
        "p95_ms": exact_percentile(latencies, 0.95),
        "p99_ms": exact_percentile(latencies, 0.99),
    }


def _bench_shard_config(n_shards, cache_dir):
    """Cold + warm closed-loop passes against one sharded deployment."""
    deployment = Deployment(
        kernel_ids=(SHARD_KERNEL,), n_pe=8, max_len=64,
        max_delay_ms=5.0, cache_dir=str(cache_dir),
    )
    server = ShardServer(
        ("127.0.0.1", 0), deployment, n_shards=n_shards
    ).start()
    try:
        client = AlignmentClient(*server.address, read_timeout=600.0)
        workload = _shard_workload()
        cold = _closed_loop_pass(client, workload)
        warm = _closed_loop_pass(client, workload)
        snapshot = client.metrics()
        client.close()
    finally:
        codes = server.close()
    assert all(code == 0 for code in codes.values()), codes
    per_shard = {}
    for name, shard in sorted(snapshot["shards"].items()):
        counters = shard.get("counters", {})
        hits = counters.get("cache_hits_total", 0)
        misses = counters.get("cache_misses_total", 0)
        per_shard[name] = {
            "aligned_total": counters.get("aligned_total", 0),
            "cache_hits_total": hits,
            "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    # Hits can only come from the warm pass (every cold key is new),
    # so the warm hit rate is total hits over the warm request count.
    total_hits = sum(s["cache_hits_total"] for s in per_shard.values())
    return {
        "shards": n_shards,
        "cold": cold,
        "warm": {**warm, "cache_hit_rate": total_hits / SHARD_PAIRS},
        "per_shard": per_shard,
    }


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_shard_scaling_writes_bench_json(tmp_path):
    """1-shard vs 2-shard capacity; writes the committed artifact.

    The 1-shard run also goes through the front door, so the
    comparison isolates worker parallelism from routing overhead.
    Worker processes escape the GIL but not physics: the engine-bound
    speedup needs real cores, so the artifact records the CPU count it
    was measured with and the scaling bar only applies from 2 CPUs up
    (on a 1-CPU box the run instead bounds the sharding overhead).
    """
    cpus = _available_cpus()
    results = {
        f"shards_{n}": _bench_shard_config(n, tmp_path / f"cache-{n}")
        for n in (1, 2)
    }
    speedup = (
        results["shards_2"]["cold"]["throughput_rps"]
        / results["shards_1"]["cold"]["throughput_rps"]
    )
    doc = {
        "schema": "bench-service/v1",
        "kernel": get_kernel(SHARD_KERNEL).name,
        "pair_length": SHARD_LENGTH,
        "n_requests": SHARD_PAIRS,
        "n_pe": 8,
        "cpus": cpus,
        # Honesty flag: a 2-vs-1 shard speedup only measures *scaling*
        # when the host can actually run two engine-bound workers at
        # once.  On one CPU the number is a sharding-overhead bound, not
        # a capacity claim, and consumers (the CI schema check, the
        # ROADMAP trajectory) must not read it as one.
        "valid_for_scaling": cpus >= 2,
        "configs": results,
        "cold_speedup_2_vs_1": speedup,
    }
    BENCH_SERVICE_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"sharded serving — {doc['kernel']}, {SHARD_PAIRS} distinct "
        f"pairs of length {SHARD_LENGTH}, closed loop",
    ]
    for key in ("shards_1", "shards_2"):
        config = results[key]
        cold, warm = config["cold"], config["warm"]
        lines.append(
            f"  {config['shards']} shard(s): cold "
            f"{cold['throughput_rps']:7.1f} rps "
            f"(p50 {cold['p50_ms']:.1f} ms, p99 {cold['p99_ms']:.1f} ms) "
            f"| warm {warm['throughput_rps']:7.1f} rps, "
            f"hit rate {warm['cache_hit_rate']:.2f}"
        )
    lines.append(
        f"  cold speedup (2 vs 1): {speedup:.2f}x on {cpus} cpu(s)"
    )
    emit("service_sharding", "\n".join(lines))

    # every warm request must be served from a shard's own cache tier
    for config in results.values():
        assert config["warm"]["cache_hit_rate"] >= 0.99
    if cpus >= 2:
        # the acceptance bar is 1.5x on the engine-bound path; assert
        # conservatively so a loaded CI machine does not flake the build
        assert speedup >= 1.2, speedup
    else:
        # one core cannot overlap two engine-bound workers; pin only
        # that the extra routing/IPC hop costs little
        assert speedup >= 0.8, speedup
