"""Hit-path latency of the content-addressed cache (repro.cache).

The cache earns its place when a warm batch is dramatically cheaper
than an engine batch.  This measures the same batch through a
:class:`~repro.cache.CachedRuntime` cold (engine + store) and warm
(memory tier), plus the disk tier after dropping the memory tier, and
asserts the ISSUE 5 bar: the memory hit path is ≥10× faster than the
engine path.
"""

import time

from benchmarks.conftest import emit
from repro.cache import CacheConfig, CacheStack, CachedRuntime
from repro.host import DeviceRuntime
from repro.kernels import get_kernel
from repro.synth import LaunchConfig
from tests.conftest import mutated_copy, random_dna

PAIRS = 32
LENGTH = 48


def _batch():
    out = []
    for k in range(PAIRS):
        ref = random_dna(LENGTH, seed=3000 + k)
        out.append((mutated_copy(ref, 4000 + k)[:LENGTH], ref))
    return out


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_memory_hit_path_10x_faster_than_engine(tmp_path):
    """Cold vs warm vs disk timings for one 32-pair batch."""
    stack = CacheStack(CacheConfig(directory=str(tmp_path)))
    runtime = CachedRuntime(
        DeviceRuntime(
            get_kernel(1),
            LaunchConfig(n_pe=16, n_b=4, n_k=1,
                         max_query_len=64, max_ref_len=64),
        ),
        stack,
    )
    batch = _batch()

    cold_started = time.perf_counter()
    cold = runtime.run(batch)
    cold_s = time.perf_counter() - cold_started
    assert cold.errors == [] and cold.hits == 0

    warm_s = _best_of(3, lambda: runtime.run(batch))
    warm = runtime.run(batch)
    assert warm.hit_rate == 1.0

    # Disk tier: drop the memory tier so every lookup replays from the
    # shard files (and re-promotes, so clear again between repeats).
    def disk_pass():
        stack.memory.clear()
        outcome = runtime.run(batch)
        assert outcome.hit_rate == 1.0

    disk_s = _best_of(3, disk_pass)
    stack.close()

    speedup = cold_s / warm_s
    disk_speedup = cold_s / disk_s
    per_pair = 1e6 / PAIRS
    rows = [
        ("engine (cold, miss+store)", cold_s, 1.0),
        ("disk hit (replay+promote)", disk_s, disk_speedup),
        ("memory hit (LRU)", warm_s, speedup),
    ]
    lines = [
        f"Cache hit-path latency — kernel #1, {PAIRS} pairs × L={LENGTH}",
        "",
        f"{'path':<28} {'batch ms':>10} {'us/pair':>9} {'speedup':>9}",
    ]
    for name, seconds, ratio in rows:
        lines.append(
            f"{name:<28} {seconds * 1e3:>10.3f} "
            f"{seconds * per_pair:>9.2f} {ratio:>8.1f}x"
        )
    emit("cache_hitpath", "\n".join(lines))

    assert speedup >= 10.0, (
        f"memory hit path only {speedup:.1f}x faster than the engine"
    )
