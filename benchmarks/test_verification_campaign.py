"""Benchmark: the functional-verification campaign (Section 6.1/6.2).

The paper's "functionally verified" claim for all 15 kernels rests on
bulk simulated workloads.  This benchmark runs a two-tier campaign
(textbook-vs-oracle on every pair, full engine on a sample) across every
kernel and asserts a clean pass.
"""

from benchmarks.conftest import emit
from repro.campaign import run_campaign
from repro.experiments.report import format_table
from repro.kernels import KERNELS


def run_all():
    reports = []
    for kid in sorted(KERNELS):
        reports.append(
            run_campaign(kid, n_pairs=6, engine_sample=1, max_length=32,
                         seed=kid)
        )
    return reports


def test_verification_campaign(benchmark):
    reports = benchmark.pedantic(run_all, rounds=2, iterations=1)
    emit(
        "verification_campaign",
        format_table(
            headers=["#", "kernel", "pairs", "engine sample", "verdict"],
            rows=[
                (r.kernel_id, r.kernel_name, r.pairs, r.engine_sample,
                 "PASS" if r.passed else "FAIL")
                for r in reports
            ],
            title="Functional verification campaign (all 15 kernels)",
        ),
    )
    assert all(r.passed for r in reports)
