"""Benchmark: regenerate Fig. 3 (N_PE / N_B scaling of kernels #1 and #9).

Emits both sweeps per kernel (throughput + LUT/FF/BRAM/DSP) and checks the
published shapes: near-linear then saturating N_PE scaling, perfectly
linear N_B scaling, flat vs scaling DSP, and the BRAM -> LUTRAM dip at
N_PE = 64.  Also reports the DSP-imposed N_B cap for DTW (paper: 24).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig3


@pytest.mark.parametrize("kernel_id", (1, 9))
def test_fig3(benchmark, kernel_id):
    def run():
        return fig3.sweep_npe(kernel_id), fig3.sweep_nb(kernel_id)

    npe_points, nb_points = benchmark(run)
    from repro.experiments.plots import plot_fig3_throughput

    emit(
        f"fig3_kernel{kernel_id}",
        fig3.render(kernel_id)
        + f"\nDTW N_B cap (DSP-limited): {fig3.dtw_nb_cap()} (paper: 24)\n\n"
        + plot_fig3_throughput(kernel_id),
    )
    thr_npe = [p.alignments_per_sec for p in npe_points]
    assert thr_npe == sorted(thr_npe)
    assert thr_npe[-1] / thr_npe[-2] < thr_npe[1] / thr_npe[0]  # saturation
    thr_nb = [p.alignments_per_sec for p in nb_points]
    for point, thr in zip(nb_points, thr_nb):
        assert thr == pytest.approx(thr_nb[0] * point.n_b, rel=1e-6)
