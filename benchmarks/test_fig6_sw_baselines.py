"""Benchmark: regenerate Fig. 6 (iso-cost CPU and GPU comparison).

Checks the paper's headline speedups: SeqAn3 within its 1.5-2.7x band,
Minimap2 ~12x, EMBOSS ~32x, GASAL2 spanning ~5.8-17.7x, CUDASW++ ~1.41x.
"""

from benchmarks.conftest import emit
from repro.experiments import fig6
from repro.experiments.paper_values import (
    FIG6_CUDASW_SPEEDUP,
    FIG6_EMBOSS_SPEEDUP,
    FIG6_GASAL2_BAND,
    FIG6_MINIMAP2_SPEEDUP,
    FIG6_SEQAN_BAND,
)


def test_fig6(benchmark):
    def run():
        return fig6.build_cpu_panel(), fig6.build_gpu_panel()

    cpu, gpu = benchmark(run)
    from repro.experiments.plots import plot_fig6

    emit("fig6", fig6.render() + "\n\n" + plot_fig6())

    seqan = [r.speedup for r in cpu if r.baseline == "SeqAn3"]
    assert FIG6_SEQAN_BAND[0] * 0.9 <= min(seqan)
    assert max(seqan) <= FIG6_SEQAN_BAND[1] * 1.1

    mm2 = next(r for r in cpu if r.baseline == "Minimap2").speedup
    assert abs(mm2 - FIG6_MINIMAP2_SPEEDUP) / FIG6_MINIMAP2_SPEEDUP < 0.25

    emboss = next(r for r in cpu if r.baseline == "EMBOSS Water").speedup
    assert abs(emboss - FIG6_EMBOSS_SPEEDUP) / FIG6_EMBOSS_SPEEDUP < 0.25

    gasal = [r.speedup for r in gpu if r.baseline == "GASAL2"]
    assert abs(min(gasal) - FIG6_GASAL2_BAND[0]) / FIG6_GASAL2_BAND[0] < 0.2
    assert abs(max(gasal) - FIG6_GASAL2_BAND[1]) / FIG6_GASAL2_BAND[1] < 0.2

    cudasw = next(r for r in gpu if r.baseline == "CUDASW++4.0").speedup
    assert abs(cudasw - FIG6_CUDASW_SPEEDUP) / FIG6_CUDASW_SPEEDUP < 0.15
