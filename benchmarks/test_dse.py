"""Benchmark: design-space exploration rediscovers Table 2-grade configs.

For a sample of kernels, sweeping (N_PE, N_B, N_K) with the model must
find a feasible configuration at least as fast as the paper's published
optimum evaluated under the same model — i.e. the published configs are
(near-)optimal points of our modelled design space too.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.kernels import get_kernel
from repro.synth import LaunchConfig, synthesize
from repro.synth.calibration import OPTIMAL_CONFIG
from repro.synth.dse import explore

KERNEL_SAMPLE = (1, 2, 9, 12, 15)


def run_dse():
    rows = []
    for kid in KERNEL_SAMPLE:
        spec = get_kernel(kid)
        w = WORKLOADS[kid]
        result = explore(
            spec, max_query_len=w.max_query_len, max_ref_len=w.max_ref_len
        )
        best = result.best
        n_pe, n_b, n_k = OPTIMAL_CONFIG[kid]
        published = synthesize(
            spec,
            LaunchConfig(
                n_pe=n_pe, n_b=n_b, n_k=n_k,
                max_query_len=w.max_query_len, max_ref_len=w.max_ref_len,
            ),
        )
        rows.append(
            (
                kid, spec.name,
                f"({best.config.n_pe},{best.config.n_b},{best.config.n_k})",
                best.alignments_per_sec,
                f"({n_pe},{n_b},{n_k})",
                published.alignments_per_sec,
                best.alignments_per_sec / published.alignments_per_sec,
            )
        )
    return rows


def test_dse_rediscovers_optimal_configs(benchmark):
    rows = benchmark.pedantic(run_dse, rounds=2, iterations=1)
    emit(
        "dse",
        format_table(
            headers=["#", "kernel", "DSE config", "DSE aln/s",
                     "paper config", "paper-config aln/s", "ratio"],
            rows=rows,
            title="Design-space exploration vs the published configurations",
        ),
    )
    for row in rows:
        # DSE must match or beat the published point (it searches a superset)
        assert row[6] >= 0.999, row
        # The model sometimes prefers many small-N_PE blocks over the
        # paper's fewer large ones (up to ~2.7x for DTW): real designs hit
        # routing congestion and host-channel limits at high block counts,
        # which the resource model does not charge for.  Bound the gap so
        # a silently broken model still fails.
        assert row[6] < 3.0, row
