"""Benchmark: regenerate the Section 7.3 tiling demonstration.

Long PBSIM-like reads aligned through kernel #2 with GACT tiling; the
observed tile count must match the closed form (the paper notes DP-HLS
and GACT use the same number of tiles, keeping their relative throughput
constant for long alignments).
"""

from benchmarks.conftest import emit
from repro.experiments import tiling_exp


def test_tiling(benchmark):
    results = benchmark.pedantic(
        tiling_exp.run_tiling,
        kwargs=dict(n_reads=1, read_length=1000, tile_size=256, overlap=64),
        rounds=2, iterations=1,
    )
    emit("tiling", tiling_exp.render(results))
    for r in results:
        assert abs(r.n_tiles - r.expected_n_tiles) <= 2
        assert r.stitched_score > 0
