"""Ablation: tile size and overlap vs alignment optimality and cycles.

The GACT heuristic's two knobs: bigger tiles and bigger overlaps both
improve path optimality at the cost of device cycles.  This sweep
regenerates the trade-off curve a deployer would use to size the on-chip
traceback memory.
"""

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.kernels import get_kernel
from repro.reference.rescore import rescore_affine
from repro.systolic import align
from repro.tiling import tiled_align
from tests.conftest import mutated_copy, random_dna

READ_LEN = 600
CONFIGS = ((64, 16), (128, 16), (128, 48), (256, 32), (256, 96))


def sweep_tiling():
    spec = get_kernel(2)
    params = spec.default_params
    ref = random_dna(READ_LEN, seed=15)
    qry = mutated_copy(ref, seed=16, error_rate=0.12)
    optimal = align(
        spec, qry, ref, n_pe=32, max_query_len=len(qry), max_ref_len=len(ref)
    ).score
    rows = []
    for tile, overlap in CONFIGS:
        tiled = tiled_align(spec, qry, ref, tile_size=tile, overlap=overlap, n_pe=32)
        score = rescore_affine(
            tiled.alignment, qry, ref, params.match, params.mismatch,
            params.gap_open, params.gap_extend,
        )
        rows.append(
            (f"{tile}/{overlap}", tiled.n_tiles, tiled.total_cycles,
             score, 100.0 * score / optimal)
        )
    return rows, optimal


def test_ablation_tiling(benchmark):
    rows, optimal = benchmark.pedantic(sweep_tiling, rounds=2, iterations=1)
    emit(
        "ablation_tiling",
        format_table(
            headers=["tile/overlap", "tiles", "cycles", "score", "% of optimal"],
            rows=rows,
            title=f"Ablation — GACT tile size & overlap ({READ_LEN} bp read, "
                  f"optimal score {optimal})",
        ),
    )
    by_cfg = {r[0]: r for r in rows}
    # larger overlap at fixed tile size never hurts optimality
    assert by_cfg["128/48"][3] >= by_cfg["128/16"][3]
    assert by_cfg["256/96"][3] >= by_cfg["256/32"][3]
    # every configuration recovers most of the optimum
    assert all(r[4] > 85.0 for r in rows)
