"""Micro-benchmarks of the simulator itself (not a paper figure).

Measures the functional systolic engine's and the compiled wavefront
backend's cell-update rates — useful when sizing functional verification
campaigns (the paper's C-simulation step) and the evidence behind
serving on the compiled backend.  Besides the rendered table this writes
``BENCH_engine.json`` at the repo root (schema ``bench-engine/v2``):
machine-readable cells/sec per backend, the speedup ratio, p50/p95
per-pair latency, and — since v2 — the batched lockstep sweep's
throughput at service-sized pairs (``batched.cells_per_sec``,
``batch_size``, ``batched_speedup_vs_single``; every v1 field is
unchanged so history stays comparable).  Validated by the
``smoke-compiled`` CI job.
"""

import json
import time
from pathlib import Path

import pytest

from repro.backend import compiled_align, compiled_align_batch
from repro.kernels import get_kernel
from repro.reference import oracle_align
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna

from .conftest import emit

LENGTH = 96
BENCH_LENGTH = 256
#: The batched section measures the serving shape: short pairs, whole
#: batcher flushes (BENCH_service.json uses length-48 pairs too).
BATCH_PAIR_LENGTH = 48
BATCH_SIZE = 64
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


@pytest.fixture(scope="module")
def dna_pair():
    reference = random_dna(LENGTH, seed=1)
    query = mutated_copy(reference, seed=2)[:LENGTH]
    return query, reference


@pytest.mark.parametrize("kid", (1, 2, 5))
def test_systolic_engine_speed(benchmark, dna_pair, kid):
    spec = get_kernel(kid)
    query, reference = dna_pair
    result = benchmark(align, spec, query, reference, n_pe=16)
    assert result.score is not None


@pytest.mark.parametrize("kid", (1, 2, 5))
def test_compiled_backend_speed(benchmark, dna_pair, kid):
    spec = get_kernel(kid)
    query, reference = dna_pair
    result = benchmark(compiled_align, spec, query, reference, n_pe=16)
    assert result.score is not None


def test_oracle_speed(benchmark, dna_pair):
    spec = get_kernel(1)
    query, reference = dna_pair
    result = benchmark(oracle_align, spec, query, reference)
    assert result.score is not None


def test_synthesis_flow_speed(benchmark):
    """One full trace -> resources -> timing -> throughput pass."""
    from repro.synth import LaunchConfig, synthesize

    report = benchmark(
        synthesize, get_kernel(2), LaunchConfig(n_pe=32, n_b=16, n_k=4)
    )
    assert report.feasible


def _time_backend(fn, spec, query, reference, reps):
    """Per-pair wall-clock samples (seconds) for one backend."""
    fn(spec, query, reference, n_pe=16)  # warm-up (compile, allocations)
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn(spec, query, reference, n_pe=16)
        samples.append(time.perf_counter() - t0)
        assert result.score is not None
    return sorted(samples)


def _percentile(sorted_samples, q):
    index = min(len(sorted_samples) - 1,
                round(q / 100 * (len(sorted_samples) - 1)))
    return sorted_samples[index]


def test_backend_speedup_writes_bench_json():
    """Head-to-head cells/sec and the committed BENCH_engine.json."""
    spec = get_kernel(1)
    reference = random_dna(BENCH_LENGTH, seed=11)
    query = mutated_copy(reference, seed=12)[:BENCH_LENGTH]
    cells = len(query) * len(reference)

    systolic = _time_backend(align, spec, query, reference, reps=3)
    compiled = _time_backend(compiled_align, spec, query, reference, reps=20)

    def stats(samples):
        p50 = _percentile(samples, 50)
        return {
            "reps": len(samples),
            "cells_per_sec": cells / p50,
            "p50_ms": p50 * 1e3,
            "p95_ms": _percentile(samples, 95) * 1e3,
        }

    doc = {
        "schema": "bench-engine/v2",
        "kernel": spec.name,
        "query_len": len(query),
        "ref_len": len(reference),
        "cells_per_pair": cells,
        "n_pe": 16,
        "backends": {
            "systolic": stats(systolic),
            "compiled": stats(compiled),
        },
        "batched": _bench_batched(spec),
    }
    doc["speedup"] = (
        doc["backends"]["compiled"]["cells_per_sec"]
        / doc["backends"]["systolic"]["cells_per_sec"]
    )
    BENCH_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    lines = [f"engine microbench — {spec.name}, "
             f"{len(query)}x{len(reference)} cells, n_pe=16"]
    for name in ("systolic", "compiled"):
        s = doc["backends"][name]
        lines.append(
            f"  {name:>8}: {s['cells_per_sec']:,.0f} cells/s  "
            f"p50 {s['p50_ms']:.2f} ms  p95 {s['p95_ms']:.2f} ms"
        )
    lines.append(f"  speedup: {doc['speedup']:.1f}x")
    batched = doc["batched"]
    lines.append(
        f"  batched ({batched['batch_size']}x len "
        f"{batched['pair_length']}): {batched['cells_per_sec']:,.0f} "
        f"cells/s, {batched['batched_speedup_vs_single']:.1f}x over "
        f"single-pair compiled"
    )
    emit("engine_microbench", "\n".join(lines))

    # the acceptance bar is 10x; assert conservatively so a loaded CI
    # machine does not flake the build
    assert doc["speedup"] >= 5.0
    # committed-artifact bar is 3x (asserted by CI); conservative here
    assert batched["batched_speedup_vs_single"] >= 2.0


def _bench_batched(spec):
    """Batched lockstep sweep vs per-pair compiled at the serving shape.

    Service-sized pairs (length :data:`BATCH_PAIR_LENGTH` <= 64) in one
    :data:`BATCH_SIZE`-pair flush (>= 32), as the batcher would hand the
    pool — the regime where per-diagonal dispatch overhead dominates a
    single-pair sweep.
    """
    pairs = []
    for index in range(BATCH_SIZE):
        reference = random_dna(BATCH_PAIR_LENGTH, seed=100 + index)
        query = mutated_copy(
            reference, seed=200 + index
        )[:BATCH_PAIR_LENGTH]
        pairs.append((query, reference))
    cells = sum(len(q) * len(r) for q, r in pairs)

    # warm-up both paths (compile cache, allocations)
    compiled_align(spec, *pairs[0], n_pe=16)
    compiled_align_batch(spec, pairs[:4], n_pe=16)

    t0 = time.perf_counter()
    for query, reference in pairs:
        compiled_align(spec, query, reference, n_pe=16)
    single_s = time.perf_counter() - t0

    reps = 5
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        results = compiled_align_batch(spec, pairs, n_pe=16)
        samples.append(time.perf_counter() - t0)
        assert len(results) == BATCH_SIZE
    samples.sort()
    batched_s = _percentile(samples, 50)

    return {
        "pair_length": BATCH_PAIR_LENGTH,
        "batch_size": BATCH_SIZE,
        "reps": reps,
        "cells_per_sec": cells / batched_s,
        "single_cells_per_sec": cells / single_s,
        "p50_batch_ms": batched_s * 1e3,
        "batched_speedup_vs_single": single_s / batched_s,
    }
