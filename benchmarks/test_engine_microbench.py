"""Micro-benchmarks of the simulator itself (not a paper figure).

Measures the functional systolic engine's cell-update rate and the
row-major oracle for comparison — useful when sizing functional
verification campaigns (the paper's C-simulation step).
"""

import pytest

from repro.kernels import get_kernel
from repro.reference import oracle_align
from repro.systolic import align
from tests.conftest import mutated_copy, random_dna

LENGTH = 96


@pytest.fixture(scope="module")
def dna_pair():
    reference = random_dna(LENGTH, seed=1)
    query = mutated_copy(reference, seed=2)[:LENGTH]
    return query, reference


@pytest.mark.parametrize("kid", (1, 2, 5))
def test_systolic_engine_speed(benchmark, dna_pair, kid):
    spec = get_kernel(kid)
    query, reference = dna_pair
    result = benchmark(align, spec, query, reference, n_pe=16)
    assert result.score is not None


def test_oracle_speed(benchmark, dna_pair):
    spec = get_kernel(1)
    query, reference = dna_pair
    result = benchmark(oracle_align, spec, query, reference)
    assert result.score is not None


def test_synthesis_flow_speed(benchmark):
    """One full trace -> resources -> timing -> throughput pass."""
    from repro.synth import LaunchConfig, synthesize

    report = benchmark(
        synthesize, get_kernel(2), LaunchConfig(n_pe=32, n_b=16, n_k=4)
    )
    assert report.feasible
