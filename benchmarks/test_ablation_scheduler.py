"""Ablation: host-side scheduling (Section 4, step 6).

"Effective scheduling is important to optimize device utilization" — the
host must batch inputs and use multi-threading across the N_K channels.
This ablation sweeps batch size and channel count to show when dispatch
overhead starts starving the blocks.
"""

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.host import AlignmentBatch, HostScheduler
from repro.kernels import get_kernel
from repro.synth.throughput import cycles_per_alignment

N_B = 16
BATCHES = (16, 64, 256, 1024)
CHANNELS = (1, 2, 4)


def sweep_scheduling():
    cycles = cycles_per_alignment(get_kernel(2), 32, 256, 256)
    rows = []
    for n_k in CHANNELS:
        for batch_size in BATCHES:
            batch = AlignmentBatch()
            for _ in range(batch_size):
                batch.add(cycles)
            result = HostScheduler(n_k=n_k, n_b=N_B).run(batch)
            rows.append(
                (n_k, batch_size, result.makespan_cycles,
                 100.0 * result.utilization,
                 result.throughput(250.0))
            )
    return rows


def test_ablation_scheduling(benchmark):
    rows = benchmark(sweep_scheduling)
    emit(
        "ablation_scheduler",
        format_table(
            headers=["N_K", "batch", "makespan", "utilization %", "aln/s"],
            rows=rows,
            title=f"Ablation — host batching across channels (kernel #2, "
                  f"N_B={N_B} per channel)",
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # bigger batches amortise dispatch: utilization grows with batch size
    for n_k in CHANNELS:
        utils = [by_key[(n_k, b)][3] for b in BATCHES]
        assert utils == sorted(utils)
    # at a fixed large batch, more channels give more throughput
    throughputs = [by_key[(n_k, 1024)][4] for n_k in CHANNELS]
    assert throughputs == sorted(throughputs)
    # well-batched devices approach full utilization
    assert by_key[(4, 1024)][3] > 90.0
