"""Benchmark: device portability of the kernel generator.

Retargets a kernel sample to a mid-range (Alveo U50) and an embedded
(ZU7EV) part via design-space exploration; every kernel must remain
deployable everywhere, with throughput ordered by fabric size.
"""

from benchmarks.conftest import emit
from repro.experiments import portability


def test_portability(benchmark):
    rows = benchmark.pedantic(
        portability.build_portability, rounds=2, iterations=1
    )
    emit("portability", portability.render(rows))
    table = portability.throughput_by_device(rows)
    f1 = table["xcvu9p-flgb2104-2-i"]
    u50 = table["xcu50-fsvh2104-2-e"]
    embedded = table["xczu7ev-ffvc1156-2-e"]
    for kid in f1:
        assert f1[kid] >= u50[kid] >= embedded[kid] > 0
