"""Tolerance-band diff of committed bench artifacts vs a fresh run.

The committed ``BENCH_engine.json`` / ``BENCH_service.json`` are
evidence, and evidence rots: a schema change or a perf regression can
leave the repo carrying numbers the code no longer produces.  CI
re-runs the bench and diffs the fresh artifact against the committed
one with this tool:

* **structure is strict** — both documents must have exactly the same
  keys (recursively) and the same container shapes; a missing or extra
  field fails regardless of tolerance;
* **ints, strings and bools are exact** — they encode configuration
  (lengths, reps, schema tags) or deterministic counts, except keys on
  the skip list (machine-dependent facts like ``cpus`` and the derived
  ``valid_for_scaling``), whose *presence* is still required;
* **floats compare within a multiplicative band** — timings move
  between machines and runs, so a fresh value passes while
  ``committed / band <= fresh <= committed * band``.  The band is
  deliberately wide (default 25x): the check catches stale artifacts
  and order-of-magnitude drift, not run-to-run jitter.

Usage::

    python benchmarks/bench_diff.py committed.json fresh.json \
        [--band 25] [--skip cpus --skip valid_for_scaling] \
        [--append-history benchmarks/output/BENCH_history.jsonl]

Exit status 0 when the artifacts agree, 1 with one line per problem
otherwise.

``--append-history`` additionally appends one JSONL record per
invocation — run id, git sha, artifact name, diff verdict, and the
fresh artifact's headline metrics (its top-level scalars) — building a
longitudinal history CI uploads as an artifact, so perf drift *within*
the tolerance band is still visible across runs.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Keys whose *values* are machine- or environment-dependent.  Their
#: presence (and container shape) is still enforced.
DEFAULT_SKIP_KEYS = ("cpus", "valid_for_scaling")

DEFAULT_BAND = 25.0


def diff_docs(
    committed: Any,
    fresh: Any,
    band: float = DEFAULT_BAND,
    skip_keys: Sequence[str] = DEFAULT_SKIP_KEYS,
) -> List[str]:
    """Every disagreement between the two documents, one line each."""
    if band < 1.0:
        raise ValueError(f"band must be >= 1.0, got {band}")
    problems: List[str] = []
    _diff("$", committed, fresh, band, frozenset(skip_keys), problems)
    return problems


def _diff(path, committed, fresh, band, skip, problems) -> None:
    if isinstance(committed, dict) or isinstance(fresh, dict):
        if not (isinstance(committed, dict) and isinstance(fresh, dict)):
            problems.append(f"{path}: container mismatch "
                            f"({_kind(committed)} vs {_kind(fresh)})")
            return
        for key in sorted(set(committed) - set(fresh)):
            problems.append(f"{path}.{key}: missing from fresh run")
        for key in sorted(set(fresh) - set(committed)):
            problems.append(f"{path}.{key}: not in committed artifact")
        for key in sorted(set(committed) & set(fresh)):
            if key in skip:
                continue
            _diff(f"{path}.{key}", committed[key], fresh[key], band, skip,
                  problems)
        return
    if isinstance(committed, list) or isinstance(fresh, list):
        if not (isinstance(committed, list) and isinstance(fresh, list)):
            problems.append(f"{path}: container mismatch "
                            f"({_kind(committed)} vs {_kind(fresh)})")
            return
        if len(committed) != len(fresh):
            problems.append(f"{path}: length {len(committed)} vs {len(fresh)}")
            return
        for index, (a, b) in enumerate(zip(committed, fresh)):
            _diff(f"{path}[{index}]", a, b, band, skip, problems)
        return
    # bool is an int subclass — classify it first so flags stay exact
    if isinstance(committed, bool) or isinstance(fresh, bool):
        if committed is not fresh:
            problems.append(f"{path}: {committed!r} != {fresh!r}")
        return
    if isinstance(committed, float) or isinstance(fresh, float):
        if not _numeric(committed) or not _numeric(fresh):
            problems.append(f"{path}: type mismatch "
                            f"({_kind(committed)} vs {_kind(fresh)})")
            return
        if not _within_band(float(committed), float(fresh), band):
            problems.append(
                f"{path}: {fresh:.6g} outside {band:g}x band of "
                f"committed {committed:.6g}"
            )
        return
    if committed != fresh:
        problems.append(f"{path}: {committed!r} != {fresh!r}")


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _within_band(committed: float, fresh: float, band: float) -> bool:
    if committed == fresh:
        return True
    if committed == 0.0 or fresh == 0.0 or (committed > 0) != (fresh > 0):
        return False  # sign flips and exact-zero drift are never jitter
    ratio = fresh / committed
    return 1.0 / band <= ratio <= band


def _kind(value: Any) -> str:
    return type(value).__name__


def headline_metrics(doc: Any) -> Dict[str, Any]:
    """The artifact's top-level scalars — its one-line summary.

    Nested containers (per-point sweeps, raw samples) are history
    noise; the top-level ints/floats/bools/strings are the numbers a
    human would quote, so that is what a history record carries.
    """
    if not isinstance(doc, dict):
        return {}
    return {
        key: value for key, value in doc.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }


def _git_sha() -> str:
    for env in ("GITHUB_SHA", "CI_COMMIT_SHA"):
        sha = os.environ.get(env)
        if sha:
            return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def history_record(
    fresh_path: str,
    fresh: Any,
    problems: Sequence[str],
    band: float,
) -> Dict[str, Any]:
    """One JSONL history line for this diff invocation."""
    return {
        "schema": "bench-history/v1",
        "run_id": os.environ.get("GITHUB_RUN_ID", "local"),
        "git_sha": _git_sha(),
        "artifact": Path(fresh_path).name,
        "band": band,
        "ok": not problems,
        "problems": len(problems),
        "headline": headline_metrics(fresh),
    }


def append_history(
    history_path: str,
    fresh_path: str,
    fresh: Any,
    problems: Sequence[str],
    band: float,
) -> None:
    """Append this invocation's record to the JSONL history file."""
    record = history_record(fresh_path, fresh, problems, band)
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="tolerance-band diff of two bench JSON artifacts"
    )
    parser.add_argument("committed", help="committed artifact (baseline)")
    parser.add_argument("fresh", help="freshly regenerated artifact")
    parser.add_argument(
        "--band", type=float, default=DEFAULT_BAND,
        help=f"max float ratio either way (default {DEFAULT_BAND:g}x)",
    )
    parser.add_argument(
        "--skip", action="append", default=None, metavar="KEY",
        help="value-exempt key (repeatable; default: "
             f"{', '.join(DEFAULT_SKIP_KEYS)})",
    )
    parser.add_argument(
        "--append-history", default=None, metavar="JSONL",
        help="append a run record (run id, git sha, headline metrics, "
             "verdict) to this JSONL history file",
    )
    options = parser.parse_args(argv)
    skip = DEFAULT_SKIP_KEYS if options.skip is None else options.skip
    with open(options.committed) as fh:
        committed = json.load(fh)
    with open(options.fresh) as fh:
        fresh = json.load(fh)
    problems = diff_docs(committed, fresh, band=options.band, skip_keys=skip)
    if options.append_history:
        append_history(
            options.append_history, options.fresh, fresh, problems,
            options.band,
        )
    for problem in problems:
        print(problem)
    if problems:
        print(f"bench diff: FAIL — {len(problems)} disagreement(s) "
              f"({options.committed} vs {options.fresh})")
        return 1
    print(f"bench diff: OK — {options.committed} and {options.fresh} "
          f"agree within {options.band:g}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
