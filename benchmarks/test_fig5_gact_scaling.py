"""Benchmark: regenerate Fig. 5 (kernel #2 vs GACT over N_PE, N_B = 1).

The two throughput curves must stay parallel (constant relative gap) and
the LUT/FF difference must stay a constant fraction — the signature of
two implementations of the same linear systolic array.
"""

from benchmarks.conftest import emit
from repro.experiments import fig5


def test_fig5(benchmark):
    points = benchmark(fig5.build_fig5)
    from repro.experiments.plots import plot_fig5

    emit("fig5", fig5.render(points) + "\n\n" + plot_fig5())
    ratios = [p.dp_hls_aln_per_sec / p.gact_aln_per_sec for p in points]
    assert max(ratios) - min(ratios) < 0.12
    lut_gap = [p.dp_hls_lut / p.gact_lut for p in points]
    assert max(lut_gap) - min(lut_gap) < 0.05
