"""Ablation: banked vs shared traceback memory (Section 5.2).

The back-end gives each PE a dedicated pointer bank so all N_PE pointers
of a wavefront commit in one cycle.  Without banking, a shared memory
with one write port serialises those writes, inflating the effective
initiation interval to ~N_PE.  This ablation quantifies how much of the
design's throughput that single optimization carries.
"""

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.kernels import get_kernel
from repro.synth.throughput import cycles_per_alignment, throughput_alignments_per_sec

N_PES = (4, 8, 16, 32, 64)


def sweep_banking():
    spec = get_kernel(2)
    rows = []
    for n_pe in N_PES:
        banked = cycles_per_alignment(spec, n_pe, 256, 256, ii=1)
        # one shared write port: II limited by n_pe pointer writes/wavefront
        shared = cycles_per_alignment(spec, n_pe, 256, 256, ii=n_pe)
        rows.append(
            (
                n_pe,
                throughput_alignments_per_sec(banked, 250.0, 1),
                throughput_alignments_per_sec(shared, 250.0, 1),
                banked and shared / banked,
            )
        )
    return rows


def test_ablation_tb_banking(benchmark):
    rows = benchmark(sweep_banking)
    emit(
        "ablation_tb_banking",
        format_table(
            headers=["N_PE", "banked aln/s", "shared-port aln/s", "cycle ratio"],
            rows=rows,
            title="Ablation — banked vs single-port traceback memory (kernel #2)",
        ),
    )
    # banking always wins, and its advantage grows with N_PE
    ratios = [r[3] for r in rows]
    assert all(r > 1.0 for r in ratios)
    assert ratios == sorted(ratios)
    # at 32 PEs banking carries the large majority of the throughput
    assert dict(zip(N_PES, ratios))[32] > 3.0
