"""Benchmark: regenerate Table 2 (15-kernel performance summary).

Reports, per kernel: 32-PE block LUT/FF/BRAM/DSP utilization, the optimal
(N_PE, N_B, N_K), Fmax, II, and device throughput — alongside the paper's
published throughput.
"""

from benchmarks.conftest import emit
from repro.experiments import table2


def test_table2(benchmark):
    rows = benchmark(table2.build_table2)
    emit("table2", table2.render(rows))
    assert len(rows) == 15
    for row in rows:
        ratio = row.alignments_per_sec / row.paper_alignments_per_sec
        assert 0.5 < ratio < 2.0
