"""Ablation: overlapping init/query-load with compute (Section 7.3).

The paper explains DP-HLS's gap to hand RTL by the un-overlapped
initialization and query loading, and says overlapping them "significantly
complicates the front-end" for "minimal" benefit.  This ablation
quantifies that claim across kernels: the hypothetical speedup from full
overlap is small for traceback kernels (the overhead amortises) and
largest for short-pipeline score-only kernels — matching Fig. 4's margin
ordering.
"""

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.experiments.workloads import WORKLOADS
from repro.kernels import KERNELS
from repro.synth.throughput import cycles_per_alignment


def overlap_gains():
    rows = []
    for kid in sorted(KERNELS):
        spec = KERNELS[kid]
        w = WORKLOADS[kid]
        base = cycles_per_alignment(spec, 32, w.max_query_len, w.max_ref_len)
        overlapped_away = (w.max_ref_len + 1) + (w.max_query_len + 1) + w.max_query_len
        hypothetical = base - overlapped_away
        rows.append(
            (kid, spec.name, base, hypothetical,
             100.0 * (base - hypothetical) / base)
        )
    return rows


def test_ablation_init_overlap(benchmark):
    rows = benchmark(overlap_gains)
    emit(
        "ablation_overlap",
        format_table(
            headers=["#", "kernel", "cycles", "cycles (overlapped)", "gain %"],
            rows=rows,
            title="Ablation — hypothetical init/load overlap (Section 7.3)",
        ),
    )
    gains = {kid: gain for kid, _n, _b, _h, gain in rows}
    # every kernel gains something, none dramatically
    assert all(0 < g < 30 for g in gains.values())
    # score-only banded kernel #12 gains more than traceback kernel #2,
    # reproducing why BSW's Fig. 4 margin is the largest
    assert gains[12] > gains[2]
