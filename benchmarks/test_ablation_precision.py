"""Ablation: score bit-width vs resources and timing.

Section 4 step 1 sells arbitrary-precision data types as a core front-end
lever ("enabling users to optimize efficiency for their specific kernel
requirements"), and Section 7.4 credits part of the CPU speedup to them.
Sweeping kernel #2's score width shows what the lever buys: LUT/FF scale
near-linearly with width, while the structural Fmax estimate degrades for
very wide datapaths.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.experiments.report import format_table
from repro.hdl_types import ap_int
from repro.kernels import get_kernel
from repro.synth.resources import estimate_resources
from repro.synth.timing import estimate_fmax_mhz

WIDTHS = (8, 12, 16, 24, 32, 48)


def sweep_widths():
    base = get_kernel(2)
    rows = []
    for width in WIDTHS:
        spec = replace(
            base, name=f"global_affine_w{width}", score_type=ap_int(width)
        )
        res = estimate_resources(spec, 32)
        fmax = estimate_fmax_mhz(spec, use_calibration=False)
        rows.append((width, round(res.luts), round(res.ffs), fmax))
    return rows


def test_ablation_score_width(benchmark):
    rows = benchmark(sweep_widths)
    emit(
        "ablation_precision",
        format_table(
            headers=["score bits", "LUT / block", "FF / block", "Fmax MHz (structural)"],
            rows=rows,
            title="Ablation — score data-type width (kernel #2, 32 PEs)",
        ),
    )
    luts = [r[1] for r in rows]
    ffs = [r[2] for r in rows]
    fmaxes = [r[3] for r in rows]
    assert luts == sorted(luts)
    assert ffs == sorted(ffs)
    # wider datapaths never close timing faster
    assert fmaxes == sorted(fmaxes, reverse=True)
    # the 8 -> 48 bit swing is substantial (the lever is worth pulling)
    assert luts[-1] > 2 * luts[0]
