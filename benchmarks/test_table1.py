"""Benchmark: regenerate Table 1 / Fig. 1 (the kernel taxonomy).

Checks that the registry spans all four variation axes of Fig. 1 —
alphabets, scoring families, traceback strategies and pruning — i.e. the
paper's versatility claim is structural, not incidental.
"""

from benchmarks.conftest import emit
from repro.experiments import table1


def test_table1(benchmark):
    rows = benchmark(table1.build_table1)
    emit("table1", table1.render(rows))
    assert len(rows) == 15
    alphabets = {r.alphabet for r in rows}
    assert {"dna", "protein", "profile_dna", "complex_signal",
            "int_signal"} <= alphabets
    scorings = {r.scoring for r in rows}
    assert {"linear", "affine", "two-piece affine"} <= scorings
    tracebacks = {r.traceback for r in rows}
    assert {"global", "local", "semi-global", "overlap",
            "none (score only)"} <= tracebacks
    assert any("fixed band" in r.pruning for r in rows)
    objectives = {r.objective for r in rows}
    assert objectives == {"max", "min"}
