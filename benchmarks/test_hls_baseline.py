"""Benchmark: regenerate Section 7.5 (DP-HLS #3 vs Vitis Genomics SW).

The paper measures DP-HLS 32.6 % faster at matched configuration.
"""

from benchmarks.conftest import emit
from repro.experiments import hls_cmp


def test_hls_baseline(benchmark):
    comparison = benchmark(hls_cmp.build_hls_comparison)
    emit("hls_baseline", hls_cmp.render())
    assert comparison.gain_pct > 20.0
    assert abs(comparison.gain_pct - comparison.paper_gain_pct) < 8.0
