"""End-to-end read-mapping pipeline: FASTQ in, SAM out.

Chains the library's substrates the way a real deployment would: simulate
a FASTQ run against a reference genome, drop low-quality reads, map the
rest with the seed-chain-extend mapper (kernel #7 doing the verification
alignments), and emit a SAM file — then audit mapping accuracy against
the simulation's ground truth.

Run:  python examples/fastq_mapping_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.read_mapper import ReadMapper
from repro.core.alphabet import decode_dna, encode_dna
from repro.data.fastq import FastqRecord
from repro.data.genome import extract_region, random_genome
from repro.data.pbsim import simulate_read
from repro.data.sam import parse_sam_positions, write_sam

GENOME_LENGTH = 3000
N_READS = 12
READ_LENGTH = 80
MIN_MEAN_QUALITY = 4.0


def main() -> None:
    genome = random_genome(GENOME_LENGTH, seed=77, repeat_fraction=0.05)
    mapper = ReadMapper(genome, k=14)

    # Simulate reads against *this* genome (keeping ground-truth starts)
    # with quality strings the way simulate_fastq would emit them.
    rng = np.random.RandomState(5)
    records = []
    truth = {}
    for idx in range(N_READS):
        start = int(rng.randint(0, GENOME_LENGTH - READ_LENGTH))
        read = simulate_read(
            extract_region(genome, start, READ_LENGTH),
            error_rate=0.06, seed=int(rng.randint(2**31 - 1)),
        )
        name = f"read_{idx}"
        truth[name] = start
        phred = tuple(
            int(q) for q in np.clip(rng.normal(14, 4, len(read)), 2, 40)
        )
        records.append(FastqRecord(name, decode_dna(read), phred))

    kept = [r for r in records if r.mean_quality >= MIN_MEAN_QUALITY]
    print(f"{len(records)} reads simulated, {len(kept)} pass the "
          f"Q>={MIN_MEAN_QUALITY:.0f} filter")

    sam_rows = []
    correct = 0
    for record in kept:
        hit = mapper.map(encode_dna(record.sequence))
        sam_rows.append((record.name, record.sequence, hit))
        if hit is not None:
            delta = abs(mapper.mapped_start(hit) - truth[record.name])
            correct += delta <= 5

    with tempfile.TemporaryDirectory() as tmp:
        sam_path = Path(tmp) / "mapped.sam"
        write_sam(sam_path, sam_rows, mapper, reference_name="synthetic_chr")
        parsed = parse_sam_positions(sam_path)
        mapped = sum(1 for _n, _p, ok in parsed if ok)
        print(f"SAM written: {len(parsed)} records, {mapped} mapped")
        print(Path(sam_path).read_text().splitlines()[0])

    print(f"mapping accuracy: {correct}/{len(kept)} within 5 bp of truth")
    assert correct >= 0.8 * len(kept)


if __name__ == "__main__":
    main()
