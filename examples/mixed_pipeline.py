"""Heterogeneous multi-kernel device: the paper's "mix of global and local
aligners" (Section 4, step 5).

A realistic long-read pipeline wants several DP stages resident on one
FPGA at once: an sDTW channel filtering raw signals, a banded local-affine
channel for seed extension, and a global-affine channel for final
alignment.  DP-HLS links N_K heterogeneous kernels into one design —
"a process that would be quite cumbersome with HDL" — and this script
models exactly that link step, then drives the device with a mixed batch
through the host scheduler.

Run:  python examples/mixed_pipeline.py
"""

from repro import get_kernel
from repro.host import AlignmentBatch, HostScheduler
from repro.synth.linker import ChannelSpec, link
from repro.synth.throughput import cycles_per_alignment


def main() -> None:
    channels = [
        ChannelSpec(get_kernel("sdtw"), n_pe=32, n_b=8),
        ChannelSpec(get_kernel("banded_local_affine"), n_pe=16, n_b=8),
        ChannelSpec(get_kernel("global_affine"), n_pe=32, n_b=8),
    ]
    design = link(channels)
    print(design.summary())
    print()

    # Drive one channel's blocks with a batch through the host model.
    global_affine = channels[2]
    cycles = cycles_per_alignment(
        global_affine.kernel, global_affine.n_pe, 256, 256
    )
    batch = AlignmentBatch()
    for _ in range(256):
        batch.add(cycles)
    scheduler = HostScheduler(n_k=1, n_b=global_affine.n_b)
    result = scheduler.run(batch)
    print(
        f"global-affine channel: batch of {len(batch)} alignments over "
        f"{global_affine.n_b} blocks"
    )
    print(
        f"  makespan {result.makespan_cycles} cycles, block utilization "
        f"{100 * result.utilization:.1f}%, "
        f"{result.throughput(design.clock_mhz):.3e} aln/s"
    )


if __name__ == "__main__":
    main()
