"""Multiple sequence alignment of a gene family (kernel #8's application).

Table 1 motivates profile alignment with multiple sequence alignment
(CLUSTALW/MUSCLE).  This script evolves a small gene family from a common
ancestor, builds the UPGMA guide tree from kernel #1 distances, aligns
the family progressively with kernel #8, and prints the alignment plus
the tree — the full CLUSTALW recipe on DP-HLS kernels.

Run:  python examples/msa_phylogeny.py
"""

from repro.apps.msa import progressive_msa
from repro.data.genome import random_genome


def mutated_copy(sequence, seed, rate):
    import numpy as np

    rng = np.random.RandomState(seed)
    out = []
    for base in sequence:
        roll = rng.rand()
        if roll < rate / 3:
            continue
        if roll < 2 * rate / 3:
            out.append(int(rng.randint(0, 4)))
        if roll < rate:
            out.append(int((base + 1 + rng.randint(0, 3)) % 4))
        else:
            out.append(int(base))
    return tuple(out)


def main() -> None:
    ancestor = random_genome(48, seed=101, repeat_fraction=0.0)
    family = {
        "ancestor": ancestor,
        "close_a": mutated_copy(ancestor, 1, 0.05),
        "close_b": mutated_copy(ancestor, 2, 0.05),
        "distant": mutated_copy(ancestor, 3, 0.25),
    }
    names = list(family)
    msa = progressive_msa(list(family.values()))

    print(f"{len(family)} sequences, alignment of {msa.n_columns} columns, "
          f"mean pairwise identity {100 * msa.identity():.1f}%\n")
    rendered = msa.pretty().split("\n")
    for name, row in zip(names, rendered):
        print(f"{name:>10}  {row}")

    def show(node) -> str:
        if isinstance(node, int):
            return names[node]
        return f"({show(node[0])}, {show(node[1])})"

    print(f"\nguide tree: {show(msa.guide_tree)}")
    assert msa.identity() > 0.7


if __name__ == "__main__":
    main()
