"""Design-space exploration: find a kernel's optimal (N_PE, N_B, N_K).

Table 2's per-kernel "Optimal (N_PE, N_B, N_K)" columns come from exactly
this search: sweep the parallelism knobs, keep configurations that fit the
device, and pick the highest-throughput point.  The same trade-off the
paper describes appears here — more PEs help until wavefront parallelism
saturates, after which spending area on more independent blocks wins.

Run:  python examples/design_space_exploration.py [kernel_id]
"""

import sys

from repro import get_kernel
from repro.synth.dse import explore, pareto_frontier


def main() -> None:
    kernel_id = int(sys.argv[1]) if len(sys.argv) > 1 else 9  # DTW by default
    spec = get_kernel(kernel_id)
    result = explore(spec)
    best = result.best
    print(
        f"kernel #{kernel_id} ({spec.name}): {result.explored} configurations "
        f"explored, {len(result.feasible)} feasible\n"
    )

    top = sorted(result.feasible, key=lambda r: -r.alignments_per_sec)[:8]
    print(f"{'N_PE':>5} {'N_B':>4} {'N_K':>4} {'aln/s':>12} {'LUT%':>7} {'DSP%':>7} {'BRAM%':>7}")
    for r in top:
        c = r.config
        print(
            f"{c.n_pe:>5} {c.n_b:>4} {c.n_k:>4} {r.alignments_per_sec:>12.3e} "
            f"{r.utilization_pct('lut'):>7.2f} {r.utilization_pct('dsp'):>7.2f} "
            f"{r.utilization_pct('bram'):>7.2f}"
        )

    frontier = pareto_frontier(result)
    print(
        f"\nthroughput-vs-LUT Pareto frontier: {len(frontier)} points "
        f"(LUT {frontier[0].utilization_pct('lut'):.1f}% .. "
        f"{frontier[-1].utilization_pct('lut'):.1f}%)"
    )

    print("\nselected configuration:")
    print(best.summary())


if __name__ == "__main__":
    main()
