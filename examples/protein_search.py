"""Protein homology search with kernel #15 (the EMBOSS Water scenario).

A query protein is scanned against a small database: true homologs
(mutated copies of the query at varying identity) are planted among
unrelated Swiss-Prot-composition decoys, every database entry is aligned
locally under BLOSUM62, and hits are ranked by score.

Run:  python examples/protein_search.py
"""

from repro import align, get_kernel
from repro.data.protein import mutate_protein, random_protein

QUERY_LENGTH = 80
N_DECOYS = 8
HOMOLOG_IDENTITIES = (0.9, 0.7, 0.5)


def main() -> None:
    kernel = get_kernel("protein_local_linear")
    query = random_protein(QUERY_LENGTH, seed=100)

    database = []
    for i, identity in enumerate(HOMOLOG_IDENTITIES):
        hom = mutate_protein(query, identity=identity, seed=200 + i)
        database.append((f"homolog_{int(identity * 100)}pct", hom))
    for i in range(N_DECOYS):
        database.append((f"decoy_{i}", random_protein(QUERY_LENGTH, seed=300 + i)))

    hits = []
    for name, target in database:
        result = align(kernel, query, target, n_pe=16)
        hits.append((result.score, name, result.cigar))
    hits.sort(reverse=True)

    print(f"query: {QUERY_LENGTH} residues, database: {len(database)} entries\n")
    print(f"{'rank':>4} {'subject':>16} {'score':>6}  cigar")
    for rank, (score, name, cigar) in enumerate(hits, 1):
        print(f"{rank:>4} {name:>16} {score:>6.0f}  {cigar[:40]}")

    top_names = [name for _s, name, _c in hits[: len(HOMOLOG_IDENTITIES)]]
    assert all(n.startswith("homolog") for n in top_names), (
        "homologs must outrank decoys"
    )
    print("\nall planted homologs ranked above every decoy ✔")


if __name__ == "__main__":
    main()
