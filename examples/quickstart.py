"""Quickstart: align two DNA reads and synthesize the kernel.

Covers the full DP-HLS workflow of Fig. 2A in a few lines:
pick a kernel from the registry, run a functional (C-simulation-style)
alignment on the systolic engine, inspect the recovered alignment and the
cycle breakdown, then "synthesize" the kernel for a parallel FPGA
configuration and read the Vitis-style report.

Run:  python examples/quickstart.py
"""

from repro import LaunchConfig, align, get_kernel, synthesize
from repro.core.alphabet import decode_dna, encode_dna


def main() -> None:
    # Kernel #2 of Table 1: Global Affine Alignment (Gotoh).
    kernel = get_kernel("global_affine")

    query = encode_dna("ACGTAGGCTTACGATCGATCGGAT")
    reference = encode_dna("ACGTAGGCTACGATCCGATCGGAT")

    result = align(kernel, query, reference, n_pe=8)

    print(f"kernel     : #{kernel.kernel_id} {kernel.description}")
    print(f"query      : {decode_dna(query)}")
    print(f"reference  : {decode_dna(reference)}")
    print(f"score      : {result.score}")
    print(f"CIGAR      : {result.cigar}")
    print()
    print(result.alignment.pretty(query, reference))
    print()
    c = result.cycles
    print(
        f"cycles     : total={c.total} (init={c.init_cycles}, "
        f"load={c.load_cycles}, compute={c.compute_cycles}, "
        f"traceback={c.traceback_cycles}, interface={c.interface_cycles})"
    )
    print()

    # Now size a full FPGA deployment: 16 blocks x 4 channels of 32 PEs
    # (Table 2's optimal configuration for this kernel).
    report = synthesize(kernel, LaunchConfig(n_pe=32, n_b=16, n_k=4))
    print(report.summary())


if __name__ == "__main__":
    main()
