"""Portable virus detection with the sDTW kernel (the SquiggleFilter scenario).

Kernel #14's motivating application: raw nanopore current squiggles are
compared against a small viral reference *before basecalling*; reads whose
best sub-alignment distance is low are viral and kept, everything else is
ejected.  This script builds a synthetic viral reference squiggle, streams
a mix of viral and host reads through the kernel, and classifies them by
the normalised sDTW distance.

Run:  python examples/viral_detection_sdtw.py
"""

import numpy as np

from repro import align, get_kernel
from repro.data.genome import random_genome
from repro.data.signals import PoreModel, squiggle_from_sequence

VIRUS_BASES = 120
READ_BASES = 60
N_READS = 12
#: Normalised-distance decision threshold (per query sample).
THRESHOLD = 10.0


def main() -> None:
    kernel = get_kernel("sdtw")
    rng = np.random.RandomState(1234)

    pore = PoreModel(seed=7)
    virus = random_genome(VIRUS_BASES, seed=1)
    host = random_genome(4 * VIRUS_BASES, seed=2)
    reference = squiggle_from_sequence(virus, pore=pore, seed=3)
    print(f"viral reference squiggle: {len(reference)} samples")

    reads = []
    for k in range(N_READS):
        is_viral = k % 2 == 0
        genome = virus if is_viral else host
        start = int(rng.randint(0, len(genome) - READ_BASES))
        squiggle = squiggle_from_sequence(
            genome[start:start + READ_BASES], pore=pore,
            seed=int(rng.randint(2**31 - 1)),
        )
        reads.append((is_viral, squiggle))

    print(f"{'read':>4} {'samples':>8} {'distance/sample':>16} {'call':>8} {'truth':>8}")
    scores = {True: [], False: []}
    for idx, (is_viral, squiggle) in enumerate(reads):
        result = align(kernel, squiggle, reference, n_pe=16)
        per_sample = result.score / len(squiggle)
        scores[is_viral].append(per_sample)
        call = "VIRAL" if per_sample < THRESHOLD else "host"
        truth = "viral" if is_viral else "host"
        marker = "" if (call == "VIRAL") == is_viral else "  <-- miss"
        print(f"{idx:>4} {len(squiggle):>8} {per_sample:>16.2f} {call:>8} {truth:>8}{marker}")

    gap = min(scores[False]) / max(scores[True])
    print(
        f"\nviral reads score {np.mean(scores[True]):.1f}/sample on average, "
        f"host reads {np.mean(scores[False]):.1f}/sample "
        f"(separation factor {gap:.1f}x)"
    )
    assert gap > 1.0, "viral and host reads failed to separate"


if __name__ == "__main__":
    main()
