"""Define a brand-new DP kernel through the front-end (the paper's pitch).

DP-HLS's core claim is that a new 2-D DP kernel takes days, not months,
because the author only writes the front-end pieces: data types, scoring
parameters, initialization, the PE function, and the traceback FSM.  This
script builds a kernel that is *not* one of the 15 shipped ones — global
alignment under unit-cost **edit distance** (Levenshtein, a minimizing
objective with traceback) — verifies it against both the row-major oracle
and Python's obvious edit-distance DP, and synthesizes it.

Run:  python examples/custom_kernel.py
"""

from dataclasses import dataclass

import numpy as np

from repro import LaunchConfig, align, oracle_align, synthesize
from repro.core.alphabet import DNA, encode_dna
from repro.core.ops import eq, select
from repro.core.spec import (
    TB_DIAG,
    TB_LEFT,
    TB_UP,
    EndRule,
    KernelSpec,
    Objective,
    StartRule,
    TracebackSpec,
)
from repro.hdl_types import ap_uint
from repro.kernels.common import linear_tb, pick_best

# ---------------------------------------------------------------------------
# Front-end steps 1-4: types, params, init, PE function, traceback FSM
# ---------------------------------------------------------------------------

SCORE_T = ap_uint(16)


@dataclass(frozen=True)
class EditParams:
    """Unit costs (kept as runtime parameters so hosts can reweight)."""

    substitution: int = 1
    indel: int = 1


def edit_init(params: EditParams, length: int) -> np.ndarray:
    scores = np.zeros((length, 1))
    scores[:, 0] = params.indel * np.arange(length)
    return scores


def edit_pe(cell):
    p = cell.params
    sub_cost = select(eq(cell.qry, cell.ref), 0, p.substitution)
    diag = cell.diag[0] + sub_cost
    up = cell.up[0] + p.indel
    left = cell.left[0] + p.indel
    dist, ptr = pick_best(
        [(diag, TB_DIAG), (up, TB_UP), (left, TB_LEFT)], minimize=True
    )
    return (dist,), ptr


EDIT_DISTANCE = KernelSpec(
    name="edit_distance",
    kernel_id=16,  # beyond Table 1 — a user kernel
    alphabet=DNA,
    score_type=SCORE_T,
    n_layers=1,
    objective=Objective.MINIMIZE,
    pe_func=edit_pe,
    init_row=edit_init,
    init_col=edit_init,
    default_params=EditParams(),
    start_rule=StartRule.BOTTOM_RIGHT,
    traceback=TracebackSpec(end=EndRule.TOP_LEFT),
    tb_transition=linear_tb,
    tb_ptr_bits=2,
    tb_states=("MM",),
    description="Global unit-cost edit distance (Levenshtein)",
)


def plain_levenshtein(a, b) -> int:
    """The obvious textbook DP, for verification."""
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        curr = [i]
        for j, cb in enumerate(b, 1):
            curr.append(
                min(prev[j - 1] + (ca != cb), prev[j] + 1, curr[-1] + 1)
            )
        prev = curr
    return prev[-1]


def main() -> None:
    query = encode_dna("GATTACAGATTACAAGGTT")
    reference = encode_dna("GATTTACAGATACAAGCTT")

    result = align(EDIT_DISTANCE, query, reference, n_pe=4)
    oracle = oracle_align(EDIT_DISTANCE, query, reference)
    expected = plain_levenshtein(query, reference)

    print(f"edit distance (systolic engine) : {result.score:.0f}")
    print(f"edit distance (row-major oracle): {oracle.score:.0f}")
    print(f"edit distance (textbook DP)     : {expected}")
    assert result.score == oracle.score == expected
    print(f"edit script (CIGAR)             : {result.cigar}")
    print()
    print(result.alignment.pretty(query, reference))
    print()

    # The back-end needs no changes whatsoever: synthesize it directly.
    report = synthesize(EDIT_DISTANCE, LaunchConfig(n_pe=32, n_b=8, n_k=4))
    print(report.summary())


if __name__ == "__main__":
    main()
